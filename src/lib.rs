//! # lite-repro — reproduction of LITE (ICDE 2022)
//!
//! *Adaptive Code Learning for Spark Configuration Tuning* proposed LITE, a
//! lightweight knob recommender that learns a stage-level performance
//! estimator (NECS) from code and scheduler features, migrates knowledge
//! from small to large datasets, and adapts online via adversarial
//! fine-tuning.
//!
//! This umbrella crate re-exports the whole workspace so examples and
//! integration tests can use a single dependency:
//!
//! * [`sparksim`] — discrete-event Spark execution simulator (substrate).
//! * [`workloads`] — the spark-bench application suite and instrumentation.
//! * [`nn`] — tensors, reverse-mode autograd, layers and optimizers.
//! * [`forest`] — CART / random forest / GBDT tree ensembles.
//! * [`bayesopt`] — Gaussian-process Bayesian optimization baseline.
//! * [`ddpg`] — DDPG / DDPG-C reinforcement-learning baselines.
//! * [`metrics`] — HR@K, NDCG@K, ETR and statistical tests.
//! * [`lite`] — the paper's contribution: NECS, stage-based code
//!   organization, adaptive candidate generation, adaptive model update and
//!   the online recommender.
//! * [`serve`] — the tuner as a concurrent service: versioned model
//!   hot-swap, batched inference, bounded queue with load-shedding, and a
//!   framed-JSON TCP front-end.

pub use lite_bayesopt as bayesopt;
pub use lite_core as lite;
pub use lite_ddpg as ddpg;
pub use lite_forest as forest;
pub use lite_metrics as metrics;
pub use lite_nn as nn;
pub use lite_obs as obs;
pub use lite_serve as serve;
pub use lite_sparksim as sparksim;
pub use lite_workloads as workloads;

//! benchdiff: regression gate over `results/*.manifest.jsonl` snapshots.
//!
//! Compares two manifest files (baseline vs candidate). Each manifest is
//! JSONL with one object per line; the `"run"` key names the scenario and
//! the *last* line per scenario wins (manifests are append-only logs).
//! Top-level numeric metrics with a known direction rule are compared;
//! nested objects (phases, tables, notes) are skipped — they carry
//! attribution detail, not gate-worthy aggregates.
//!
//! A metric regresses when it moves in the bad direction by more than the
//! tolerance (default 10%). Exit codes: 0 clean, 1 regression(s), 2 usage
//! or parse error.
//!
//! ```text
//! benchdiff [--tolerance PCT] [--rule NAME=higher|lower[:PCT]] BASE CAND
//! ```

#![allow(clippy::print_stdout)]

use lite_obs::Json;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Default per-metric direction rules, matched by exact field name.
/// Metrics absent from both lists are reported as informational only.
const HIGHER_BETTER: &[&str] = &[
    "throughput_rps",
    "requests_ok",
    "cache_hit_rate",
    "batch30_speedup",
    "recall_at_10",
    "avg_rag_etr",
    "avg_full_budget_etr",
    "avg_seeded_etr",
    "top_exemplar_attribution_pct",
    "steady_throughput_rps",
];

const LOWER_BETTER: &[&str] = &[
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "e2e_p50_ms",
    "e2e_p99_ms",
    "query_p50_us",
    "query_p99_us",
    "overhead_ratio",
    "baseline_p99_ms",
    "chaos_p99_ms",
    "scrape_stats_p50_ms",
    "scrape_stats_p99_ms",
    "steady_p50_ms",
    "steady_p99_ms",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Higher,
    Lower,
}

#[derive(Debug, Clone)]
struct Rule {
    direction: Direction,
    /// Allowed relative move in the bad direction, as a fraction (0.10 = 10%).
    tolerance: f64,
}

#[derive(Debug, Default)]
struct Config {
    /// Per-metric overrides from `--rule`, consulted before the built-ins.
    overrides: BTreeMap<String, Rule>,
    /// Tolerance applied to built-in rules (fraction).
    tolerance: f64,
    baseline: String,
    candidate: String,
}

#[derive(Debug, PartialEq)]
enum Verdict {
    Ok,
    Improved,
    Regressed,
    Info,
}

#[derive(Debug)]
struct MetricDiff {
    run: String,
    metric: String,
    base: f64,
    cand: f64,
    /// Relative change (cand - base) / |base|; `None` when base == 0.
    delta: Option<f64>,
    verdict: Verdict,
}

fn usage() -> String {
    "usage: benchdiff [--tolerance PCT] [--rule NAME=higher|lower[:PCT]] BASELINE CANDIDATE"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config { tolerance: 0.10, ..Config::default() };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = it.next().ok_or_else(|| "--tolerance needs a value".to_string())?;
                let pct: f64 = v.parse().map_err(|_| format!("--tolerance: bad percent {v:?}"))?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(format!("--tolerance out of range: {pct}"));
                }
                cfg.tolerance = pct / 100.0;
            }
            "--rule" => {
                let v = it.next().ok_or_else(|| "--rule needs NAME=DIR[:PCT]".to_string())?;
                let (name, rule) = parse_rule(v)?;
                cfg.overrides.insert(name, rule);
            }
            "--help" | "-h" => return Err(usage()),
            _ if arg.starts_with("--") => return Err(format!("unknown flag {arg:?}")),
            _ => positional.push(arg.clone()),
        }
    }
    if positional.len() != 2 {
        return Err(usage());
    }
    cfg.baseline = positional[0].clone();
    cfg.candidate = positional[1].clone();
    Ok(cfg)
}

fn parse_rule(spec: &str) -> Result<(String, Rule), String> {
    let (name, rest) =
        spec.split_once('=').ok_or_else(|| format!("--rule {spec:?}: expected NAME=DIR"))?;
    let (dir, tol) = match rest.split_once(':') {
        Some((d, t)) => {
            let pct: f64 = t.parse().map_err(|_| format!("--rule {spec:?}: bad percent {t:?}"))?;
            (d, pct / 100.0)
        }
        None => (rest, 0.10),
    };
    let direction = match dir {
        "higher" => Direction::Higher,
        "lower" => Direction::Lower,
        _ => return Err(format!("--rule {spec:?}: direction must be higher|lower")),
    };
    if !(0.0..=1.0).contains(&tol) {
        return Err(format!("--rule {spec:?}: tolerance out of range"));
    }
    Ok((name.to_string(), Rule { direction, tolerance: tol }))
}

fn rule_for(cfg: &Config, metric: &str) -> Option<Rule> {
    if let Some(r) = cfg.overrides.get(metric) {
        return Some(r.clone());
    }
    if HIGHER_BETTER.contains(&metric) {
        return Some(Rule { direction: Direction::Higher, tolerance: cfg.tolerance });
    }
    if LOWER_BETTER.contains(&metric) {
        return Some(Rule { direction: Direction::Lower, tolerance: cfg.tolerance });
    }
    None
}

/// Parse a manifest: last object per `"run"` key, insertion-ordered by
/// first appearance so output is stable across runs.
fn load_manifest(text: &str, path: &str) -> Result<Vec<(String, Json)>, String> {
    let mut order = Vec::new();
    let mut latest: BTreeMap<String, Json> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let obj = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        let run = obj
            .get("run")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}:{}: missing \"run\" key", i + 1))?
            .to_string();
        if !latest.contains_key(&run) {
            order.push(run.clone());
        }
        latest.insert(run, obj);
    }
    Ok(order
        .into_iter()
        .map(|r| {
            let obj = latest.remove(&r).expect("ordered key present");
            (r, obj)
        })
        .collect())
}

/// Compare the snapshots and produce one diff row per shared numeric metric.
fn diff(cfg: &Config, base: &[(String, Json)], cand: &[(String, Json)]) -> Vec<MetricDiff> {
    let cand_map: BTreeMap<&str, &Json> = cand.iter().map(|(r, o)| (r.as_str(), o)).collect();
    let mut out = Vec::new();
    for (run, base_obj) in base {
        let Some(cand_obj) = cand_map.get(run.as_str()) else { continue };
        let Json::Obj(pairs) = base_obj else { continue };
        for (metric, base_val) in pairs {
            if metric == "run" {
                continue;
            }
            let Some(b) = base_val.as_f64() else { continue };
            let Some(c) = cand_obj.get(metric).and_then(Json::as_f64) else { continue };
            let delta = if b != 0.0 { Some((c - b) / b.abs()) } else { None };
            let verdict = match (rule_for(cfg, metric), delta) {
                (None, _) => Verdict::Info,
                (Some(_), None) => Verdict::Info,
                (Some(rule), Some(d)) => {
                    let bad = match rule.direction {
                        Direction::Higher => -d,
                        Direction::Lower => d,
                    };
                    if bad > rule.tolerance {
                        Verdict::Regressed
                    } else if bad < -rule.tolerance {
                        Verdict::Improved
                    } else {
                        Verdict::Ok
                    }
                }
            };
            out.push(MetricDiff {
                run: run.clone(),
                metric: metric.clone(),
                base: b,
                cand: c,
                delta,
                verdict,
            });
        }
    }
    out
}

fn render(diffs: &[MetricDiff]) -> String {
    let mut out = String::new();
    let mut current_run = "";
    for d in diffs {
        if d.run != current_run {
            current_run = &d.run;
            out.push_str(&format!("{current_run}\n"));
        }
        let delta = match d.delta {
            Some(v) => format!("{:+.2}%", v * 100.0),
            None => "n/a".to_string(),
        };
        let tag = match d.verdict {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Info => "info",
        };
        out.push_str(&format!(
            "  {:<32} {:>14.4} -> {:>14.4}  {:>9}  {}\n",
            d.metric, d.base, d.cand, delta, tag
        ));
    }
    out
}

fn run(cfg: &Config) -> Result<usize, String> {
    let base_text = std::fs::read_to_string(&cfg.baseline)
        .map_err(|e| format!("read {}: {e}", cfg.baseline))?;
    let cand_text = std::fs::read_to_string(&cfg.candidate)
        .map_err(|e| format!("read {}: {e}", cfg.candidate))?;
    let base = load_manifest(&base_text, &cfg.baseline)?;
    let cand = load_manifest(&cand_text, &cfg.candidate)?;
    let diffs = diff(cfg, &base, &cand);
    if diffs.is_empty() {
        return Err(format!(
            "no overlapping runs/metrics between {} and {}",
            cfg.baseline, cfg.candidate
        ));
    }
    print!("{}", render(&diffs));
    let regressions: Vec<&MetricDiff> =
        diffs.iter().filter(|d| d.verdict == Verdict::Regressed).collect();
    let compared = diffs.iter().filter(|d| d.verdict != Verdict::Info).count();
    println!(
        "benchdiff: {} metrics gated, {} informational, {} regression(s)",
        compared,
        diffs.len() - compared,
        regressions.len()
    );
    Ok(regressions.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&cfg) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("benchdiff: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config { tolerance: 0.10, ..Config::default() }
    }

    fn manifest(lines: &[&str]) -> Vec<(String, Json)> {
        load_manifest(&lines.join("\n"), "test").expect("manifest parses")
    }

    #[test]
    fn identical_snapshots_are_clean() {
        let m = manifest(&[r#"{"run":"serve_loadtest","throughput_rps":100.0,"p99_ms":5.0}"#]);
        let d = diff(&cfg(), &m, &m);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| x.verdict == Verdict::Ok));
    }

    #[test]
    fn detects_throughput_drop_and_latency_rise() {
        let base = manifest(&[r#"{"run":"serve_loadtest","throughput_rps":100.0,"p99_ms":5.0}"#]);
        let cand = manifest(&[r#"{"run":"serve_loadtest","throughput_rps":80.0,"p99_ms":7.0}"#]);
        let d = diff(&cfg(), &base, &cand);
        assert!(d.iter().all(|x| x.verdict == Verdict::Regressed), "{d:?}");
    }

    #[test]
    fn tolerance_absorbs_noise_and_flags_improvements() {
        let base = manifest(&[r#"{"run":"rag_bench","recall_at_10":0.90,"query_p99_us":100.0}"#]);
        let cand = manifest(&[r#"{"run":"rag_bench","recall_at_10":0.88,"query_p99_us":50.0}"#]);
        let d = diff(&cfg(), &base, &cand);
        assert_eq!(d[0].verdict, Verdict::Ok, "2% recall drop within 10% tolerance");
        assert_eq!(d[1].verdict, Verdict::Improved);
    }

    #[test]
    fn unknown_metrics_are_informational() {
        let base = manifest(&[r#"{"run":"x","wall_s":10.0}"#]);
        let cand = manifest(&[r#"{"run":"x","wall_s":99.0}"#]);
        let d = diff(&cfg(), &base, &cand);
        assert_eq!(d[0].verdict, Verdict::Info);
    }

    #[test]
    fn rule_override_beats_builtin() {
        let mut c = cfg();
        c.overrides
            .insert("wall_s".to_string(), Rule { direction: Direction::Lower, tolerance: 0.05 });
        let base = manifest(&[r#"{"run":"x","wall_s":10.0}"#]);
        let cand = manifest(&[r#"{"run":"x","wall_s":11.0}"#]);
        let d = diff(&c, &base, &cand);
        assert_eq!(d[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn last_line_per_run_wins() {
        let m = manifest(&[r#"{"run":"a","p99_ms":9.0}"#, r#"{"run":"a","p99_ms":5.0}"#]);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1.get("p99_ms").and_then(Json::as_f64), Some(5.0));
    }

    #[test]
    fn zero_baseline_is_informational_not_a_panic() {
        let base = manifest(&[r#"{"run":"x","p99_ms":0.0}"#]);
        let cand = manifest(&[r#"{"run":"x","p99_ms":3.0}"#]);
        let d = diff(&cfg(), &base, &cand);
        assert_eq!(d[0].verdict, Verdict::Info);
        assert!(d[0].delta.is_none());
    }

    #[test]
    fn nested_objects_and_missing_runs_are_skipped() {
        let base = manifest(&[
            r#"{"run":"a","p99_ms":5.0,"phases":{"x":1.0},"gone":1.0}"#,
            r#"{"run":"only_base","p99_ms":1.0}"#,
        ]);
        let cand = manifest(&[r#"{"run":"a","p99_ms":5.0,"phases":{"x":2.0}}"#]);
        let d = diff(&cfg(), &base, &cand);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].metric, "p99_ms");
    }

    #[test]
    fn parse_rule_accepts_direction_and_tolerance() {
        let (name, rule) = parse_rule("etr=higher:25").expect("parses");
        assert_eq!(name, "etr");
        assert_eq!(rule.direction, Direction::Higher);
        assert!((rule.tolerance - 0.25).abs() < 1e-12);
        assert!(parse_rule("etr=sideways").is_err());
        assert!(parse_rule("noequals").is_err());
    }

    #[test]
    fn parse_args_rejects_bad_input() {
        let a = |v: &[&str]| parse_args(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        assert!(a(&["one.jsonl"]).is_err());
        assert!(a(&["--tolerance", "woof", "a", "b"]).is_err());
        assert!(a(&["--bogus", "a", "b"]).is_err());
        let cfg = a(&["--tolerance", "5", "a", "b"]).expect("valid");
        assert!((cfg.tolerance - 0.05).abs() < 1e-12);
    }
}

//! Inert `Serialize`/`Deserialize` derives. Registering `serde` as a helper
//! attribute makes `#[serde(default, skip_serializing_if = "...")]` and
//! friends parse without expanding to any code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stub for the subset of `rand` 0.8 the workspace uses.
//!
//! A real, deterministic PRNG (SplitMix64 core) — but its stream is NOT the
//! upstream `StdRng` stream. Workspace code may depend on "same seed, same
//! sequence", never on matching upstream output.

/// Raw 64-bit generator. Supertrait of [`Rng`].
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut s = state;
        for chunk in bytes.chunks_mut(8) {
            // SplitMix64 expansion, as upstream does for small seeds.
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, v) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = v;
            }
        }
        Self::from_seed(seed)
    }
}

/// The standard RNG. SplitMix64: passes BigCrush's basic batteries, full
/// 2^64 period, and — crucially for the test suite — fully deterministic.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = 0u64;
        for chunk in seed.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state = state.rotate_left(13) ^ u64::from_le_bytes(word);
        }
        // Avoid the all-zero fixed point looking "stuck" for early draws.
        StdRng { state: state ^ 0xA076_1D64_78BD_642F }
    }
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire) with one rejection pass is
    // overkill for tests; modulo bias at span << 2^64 is negligible here,
    // but widening-multiply keeps it cheap AND unbiased enough.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = f64::sample(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty inclusive range");
                lo + (f64::sample(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

float_range!(f64, f32);

/// The user-facing RNG extension trait, blanket-implemented for every
/// [`RngCore`] exactly as upstream does.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    pub use crate::StdRng;
}

pub mod seq {
    use crate::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, matching upstream's visitation order contract
            // (uniform over permutations; stream-specific order differs).
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 0usize;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                lo += 1;
            }
        }
        assert!((4_500..5_500).contains(&lo), "heavily biased: {lo}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&w));
            let x = rng.gen_range(0usize..=4);
            assert!(x <= 4);
            let y = rng.gen_range(1u64 << 20..8u64 << 30);
            assert!((1u64 << 20..8u64 << 30).contains(&y));
        }
        // Every bucket of a small range is hit.
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50! shuffle left identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}

//! Offline stub for the subset of `proptest` 1.x the workspace uses.
//!
//! This is a real randomized property-test runner, not a compile-only shim:
//! `proptest!` runs the configured number of cases (default 256) with
//! deterministically seeded inputs, so properties genuinely explore their
//! input space on every `cargo test`. What it does NOT do is shrink — a
//! failing case panics immediately with its case index; rerunning is
//! deterministic, so the index is a stable repro handle.

pub mod test_runner {
    /// Runner configuration. Only `cases` matters to this stub.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic per-case RNG (SplitMix64). Seeded from the test's
    /// module path + name + case index so every test gets an independent,
    /// reproducible stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_id: &str, case: u32) -> Self {
            // FNV-1a over the id, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n > 0`.
        pub fn below(&mut self, n: usize) -> usize {
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }

        /// 53-bit uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Value generator. Object-safe: `generate` is the only required
    /// method, so `Box<dyn Strategy<Value = T>>` works (see `prop_oneof!`).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Helper for `prop_oneof!`: unifies heterogeneous arm types.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Constant strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between arms (real proptest weights arms; every
    /// workspace call site uses unweighted arms).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 * span) >> 64;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128 * span) >> 64;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// String strategies from a regex-ish pattern. Supported subset:
    /// `".*"` (arbitrary short strings over a stress alphabet) and
    /// `"[class]{m,n}"` with literal chars and `a-z` ranges in the class.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            pattern_string(self, rng)
        }
    }

    fn pattern_string(pattern: &str, rng: &mut TestRng) -> String {
        if pattern == ".*" {
            // Arbitrary strings, deliberately including the characters that
            // break naive scanners: quotes, escapes, newlines, multi-byte.
            const NASTY: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', '"', '\\', '/', '\'', '(',
                ')', '{', '}', '[', ']', '.', ',', '=', '>', '<', '-', '_', 'é', 'λ', '中', '🦀',
            ];
            let len = rng.below(33);
            return (0..len).map(|_| NASTY[rng.below(NASTY.len())]).collect();
        }
        let (class, rep) = pattern
            .strip_prefix('[')
            .and_then(|rest| rest.split_once(']'))
            .unwrap_or_else(|| panic!("stub proptest: unsupported string pattern {pattern:?}"));
        let alphabet = expand_class(class);
        let (lo, hi) = rep
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .and_then(|r| r.split_once(','))
            .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
            .unwrap_or_else(|| panic!("stub proptest: unsupported repetition in {pattern:?}"));
        let len = lo + rng.below(hi - lo + 1);
        (0..len).map(|_| alphabet[rng.below(alphabet.len())]).collect()
    }

    fn expand_class(class: &str) -> Vec<char> {
        let chars: Vec<char> = class.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            // `a-z` range when '-' sits between two chars; trailing or
            // leading '-' is a literal, per regex convention.
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                for c in chars[i]..=chars[i + 2] {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class");
        out
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: exact, `lo..hi`, or `lo..=hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(s)`: `None` about a quarter of the time (the
    /// real crate's default weighting), `Some(s)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mirror real proptest: the full f64 surface, specials
            // included, so exporters meet NaN and infinities in tests.
            match rng.next_u64() % 8 {
                0 => {
                    const SPECIAL: &[f64] = &[
                        f64::NAN,
                        f64::INFINITY,
                        f64::NEG_INFINITY,
                        0.0,
                        -0.0,
                        f64::MIN,
                        f64::MAX,
                        f64::EPSILON,
                        f64::MIN_POSITIVE,
                    ];
                    SPECIAL[rng.below(SPECIAL.len())]
                }
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }

    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy { _marker: std::marker::PhantomData }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `prop_assert!` — panics on failure (no shrinking, so plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice across strategy arms of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                // A failing body panics out of the loop; the deterministic
                // seeding makes `__case` a stable repro handle.
                $body
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// The `proptest!` block: optional inner `#![proptest_config(..)]`, then
/// one or more `#[test] fn name(pat in strategy, ...) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// `prop::collection::vec(...)` paths used by the test suite.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in -2.0f64..2.0, c in 0u64..=5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(c <= 5);
        }

        #[test]
        fn mapped_and_oneof_strategies_compose(
            v in prop::collection::vec((arb_even(), Just(7u8)), 0..5),
            s in "[a-z .-]{0,24}",
            t in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)],
        ) {
            prop_assert!(v.len() < 5);
            for (e, seven) in &v {
                prop_assert_eq!(e % 2, 0);
                prop_assert_eq!(*seven, 7u8);
            }
            prop_assert!(s.len() <= 24);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || " .-".contains(c)));
            prop_assert!(matches!(t, 1 | 2 | 5 | 6));
        }
    }

    #[test]
    fn cases_vary_and_reruns_are_deterministic() {
        let strat = (0u64..1_000_000, "[a-zA-Z0-9 _.-]{0,24}");
        let mut first: Vec<(u64, String)> = Vec::new();
        for case in 0..32 {
            let mut rng = crate::test_runner::TestRng::for_case("det", case);
            first.push(Strategy::generate(&strat, &mut rng));
        }
        let distinct: std::collections::BTreeSet<_> =
            first.iter().map(|(n, _)| *n).collect();
        assert!(distinct.len() > 20, "degenerate exploration: {distinct:?}");
        for case in 0..32 {
            let mut rng = crate::test_runner::TestRng::for_case("det", case);
            assert_eq!(Strategy::generate(&strat, &mut rng), first[case as usize]);
        }
    }

    #[test]
    fn exact_size_vec_matches() {
        let mut rng = crate::test_runner::TestRng::for_case("sz", 0);
        let v = Strategy::generate(&crate::collection::vec(0.0f64..1.0, 13usize), &mut rng);
        assert_eq!(v.len(), 13);
    }
}

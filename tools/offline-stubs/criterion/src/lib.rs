//! Offline stub for the subset of `criterion` 0.5 the workspace uses. Runs
//! each benchmark body a handful of timed iterations and prints a one-line
//! mean — enough to smoke the bench binaries offline; real statistics need
//! the real crate on a networked machine.

use std::time::Instant;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: self.sample_size as u64, total_ns: 0, runs: 0 };
        f(&mut b);
        let mean = if b.runs == 0 { 0.0 } else { b.total_ns as f64 / b.runs as f64 };
        // Stub report line; allowed stdout since bench bins own their output.
        #[allow(clippy::print_stdout)]
        {
            println!("bench {id}: mean {:.1} ns/iter over {} iters (offline stub)", mean, b.runs);
        }
        self
    }
}

pub struct Bencher {
    iters: u64,
    total_ns: u64,
    runs: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup, then timed iterations.
        std::hint::black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.total_ns += t0.elapsed().as_nanos() as u64;
        self.runs += self.iters;
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline stub for `serde`. The workspace only uses
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` field attributes —
//! never actual serialization — so the traits are inert markers and the
//! derives (re-exported from the stub `serde_derive`) expand to nothing.

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

//! Offline stub for the subset of `rand_distr` 0.4 the workspace uses:
//! `Distribution` and `Normal` (via Box–Muller — a real normal sampler).

use rand::{Rng, RngCore};

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NormalError {
    BadVariance,
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is not finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean out of range"),
        }
    }
}

impl std::error::Error for NormalError {}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: u1 in (0, 1] so ln(u1) is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(11);
        let normal = Normal::new(2.0, 3.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn rejects_bad_std_dev() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }
}

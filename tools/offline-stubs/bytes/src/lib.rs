//! Offline stub for the subset of `bytes` 1.x the workspace uses: `Bytes`
//! (cheaply cloneable shared view), `BytesMut`, and the little-endian
//! `Buf`/`BufMut` accessors the SLOG codec calls.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Shared immutable byte view: an `Arc<[u8]>` plus a window. Cloning and
/// `slice()` are O(1) and never copy.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from_static(b"")
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes { data: Arc::from(s), start: 0, end: s.len() }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view of the *remaining* bytes; panics when out of bounds, like
    /// upstream.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} of {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer; `freeze()` converts to `Bytes` without copying.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Consuming little-endian reads over a shrinking window.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn advance(&mut self, n: usize);

    fn chunk(&self) -> &[u8];

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice past end");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

impl Bytes {
    /// O(1): splits off the first `n` remaining bytes as a shared view.
    pub fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "copy_to_bytes past end");
        let out = self.slice(..n);
        self.start += n;
        out
    }
}

/// Little-endian writes.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f64_le(42.5);
        buf.put_slice(b"tail");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 2 + 4 + 8 + 8 + 4);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 513);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_f64_le(), 42.5);
        let tail = b.copy_to_bytes(4);
        assert_eq!(&tail[..], b"tail");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_windows_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(&s.slice(..2)[..], &[2, 3]);
        assert_eq!(&b[..4], &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "slice")]
    fn slice_past_end_panics() {
        Bytes::from(vec![1, 2]).slice(..3);
    }
}

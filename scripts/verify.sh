#!/usr/bin/env bash
# Full verification gate: formatting and lints first (cheap, catch the
# most churn), then the tier-1 build + test pass from ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
# --workspace matters: the root is itself a package, so a bare
# `cargo test` would only run the root package's suites.
cargo test -q --workspace

echo "verify: OK"

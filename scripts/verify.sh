#!/usr/bin/env bash
# Full verification gate: formatting and lints first (cheap, catch the
# most churn), then the tier-1 build + test pass from ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> scripts/lint.sh (workspace invariant gate + selftest)"
./scripts/lint.sh
./scripts/lint.sh --selftest

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
# --workspace matters: the root is itself a package, so a bare
# `cargo test` would only run the root package's suites.
cargo test -q --workspace

echo "==> chaos smoke (lost/Internal requests fail the gate)"
# A few seconds of the chaos load test: fault injection, retries, circuit
# breaking, degradation. The binary exits non-zero if any request is lost
# forever or any Internal error reaches a client.
LITE_BENCH_QUICK=1 cargo run --release -q -p lite-bench --bin chaos_loadtest -- --smoke

echo "==> tail-forensics smoke (attribution + overhead gates)"
# Quick traced load over TCP: asserts per-phase spans cover >=95% of the
# slowest request's end-to-end time and tracing costs <5% of throughput
# versus an untraced server.
LITE_BENCH_QUICK=1 cargo run --release -q -p lite-bench --bin tail_forensics

echo "==> profiler overhead gate (<5% vs disabled guards)"
# Paired-batch median timing of tag enter/exit under a live sampler
# thread versus disabled-profiler guards; release mode so the gate
# measures the shipped code, not debug-assert overhead.
cargo test --release -q -p lite-obs --test prof_overhead

echo "==> benchdiff gates (self-compare clean; seeded regression caught)"
# The diff tool itself is part of the contract: a manifest compared
# against itself must be clean, and a seeded throughput collapse must
# exit non-zero — otherwise regressions would sail through CI silently.
cargo build --release -q -p benchdiff
bd="${CARGO_TARGET_DIR:-target}/release/benchdiff"
manifest=results/serve_loadtest.manifest.jsonl
if [ -e "$manifest" ]; then
    "$bd" "$manifest" "$manifest" > /dev/null
    seeded=$(mktemp)
    sed -E 's/"throughput_rps":[0-9.eE+-]+/"throughput_rps":1.0/' "$manifest" > "$seeded"
    if "$bd" "$manifest" "$seeded" > /dev/null; then
        echo "benchdiff: FAILED to flag a seeded throughput regression"
        rm -f "$seeded"
        exit 1
    fi
    rm -f "$seeded"
else
    echo "note: $manifest missing — run 'make loadtest' to enable the benchdiff gate"
fi

echo "==> protocol v3 smoke + steady-p99 gate vs committed v2 baseline"
# Quick v3 loadtest (binary wire, pipelining, sharded dispatch, legacy
# v1/v2 sanity) into a throwaway results dir, then diff against the
# frozen pre-v3 baseline. The wide tolerance neutralizes throughput
# comparisons (quick mode serves a fraction of the full run); the strict
# per-metric rule is the gate: steady-state p99 must never exceed the
# v2 baseline's.
v3_results=$(mktemp -d)
LITE_BENCH_QUICK=1 LITE_BENCH_RESULTS="$v3_results" \
    cargo run --release -q -p lite-bench --bin serve_loadtest
"$bd" --tolerance 100 --rule steady_p99_ms=lower:0 \
    results/serve_loadtest_v2_baseline.manifest.jsonl \
    "$v3_results/serve_loadtest.manifest.jsonl"
rm -rf "$v3_results"

echo "==> lite-lsp scripted session smoke (stdio, real binary)"
# End-to-end editor session over stdio: a document seeded with all five
# lints publishes every rule, the fix-all code action leaves only the
# non-mechanically-fixable diagnostics, hover returns a NECS-predicted
# runtime, a broken edit degrades to a syntax-error diagnostic, and the
# server exits cleanly. LITE_LSP_QUICK keeps hover's scorer training small.
LITE_LSP_QUICK=1 cargo test --release -q -p lite-lsp --test session

echo "==> incremental re-analysis latency gate (p99 < 5 ms + benchdiff)"
# Quick editor-loop latency run into a throwaway results dir; the binary
# hard-asserts incremental p99 < 5 ms, then benchdiff guards drift against
# the committed manifest (wide tolerance neutralizes the cold-start
# timing fields; the strict rule is the incremental p99 budget).
if [ -e results/analyze_bench.manifest.jsonl ]; then
    an_results=$(mktemp -d)
    LITE_BENCH_QUICK=1 LITE_BENCH_RESULTS="$an_results" \
        cargo run --release -q -p lite-bench --bin analyze_bench > /dev/null
    "$bd" --tolerance 1000 --rule incremental_p99_ms=lower:400 \
        results/analyze_bench.manifest.jsonl \
        "$an_results/analyze_bench.manifest.jsonl"
    rm -rf "$an_results"
else
    echo "note: results/analyze_bench.manifest.jsonl missing — run 'make analyze' to enable the gate"
fi

echo "==> rag smoke (index recall/latency/serde gates)"
# Quick ANN index build: recall@10 >= 0.95 vs the brute-force oracle,
# single-query p99 < 1 ms, and byte-identical serialize/deserialize, plus
# a two-app cold-start smoke of the retrieval tuner.
LITE_BENCH_QUICK=1 cargo run --release -q -p lite-bench --bin rag_bench

# Non-fatal reminder: flag run manifests that predate the current commit,
# so stale benchmark evidence is not mistaken for fresh results.
head_ts=$(git log -1 --format=%ct 2>/dev/null || echo 0)
for manifest in results/*.manifest.jsonl; do
    [ -e "$manifest" ] || continue
    if [ "$(stat -c %Y "$manifest" 2>/dev/null || echo 0)" -lt "$head_ts" ]; then
        echo "note: $manifest is older than HEAD — rerun its scenario (make loadtest / make scrape) to refresh"
    fi
done

echo "verify: OK"

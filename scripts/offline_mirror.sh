#!/usr/bin/env bash
# Build/test the workspace in a container with no crates.io access.
#
# Copies the repo to a mirror directory, rewrites the root
# [workspace.dependencies] so external crates resolve to the stub crates in
# tools/offline-stubs/, drops Cargo.lock (it pins registry sources), and runs
# cargo fully offline. The mirror lives at a stable path with an external
# CARGO_TARGET_DIR so incremental builds survive re-syncs.
#
# Usage: scripts/offline_mirror.sh <cargo args...>
#   e.g. scripts/offline_mirror.sh test -q --workspace
#        scripts/offline_mirror.sh run --release -p lite-bench --bin tail_forensics
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MIRROR="${LITE_MIRROR_DIR:-/tmp/lite-mirror}"

mkdir -p "$MIRROR/repo" "$MIRROR/stubs" "$MIRROR/target"

# Sync sources (tar, not rsync: the container has no rsync). --delete
# semantics via a clean copy of tracked dirs only; target/ lives outside.
rm -rf "$MIRROR/repo"
mkdir -p "$MIRROR/repo"
tar -C "$ROOT" --exclude=.git --exclude=target --exclude=tools/offline-stubs \
    -cf - . | tar -C "$MIRROR/repo" -xf -
rm -rf "$MIRROR/stubs"
cp -a "$ROOT/tools/offline-stubs" "$MIRROR/stubs"

cd "$MIRROR/repo"
rm -f Cargo.lock

# Point external workspace deps at the stubs. Member manifests all use
# `dep.workspace = true`, so the root manifest is the only rewrite site.
sed -i \
  -e 's|^rand = .*$|rand = { path = "../stubs/rand" }|' \
  -e 's|^rand_distr = .*$|rand_distr = { path = "../stubs/rand_distr" }|' \
  -e 's|^proptest = .*$|proptest = { path = "../stubs/proptest" }|' \
  -e 's|^criterion = .*$|criterion = { path = "../stubs/criterion" }|' \
  -e 's|^bytes = .*$|bytes = { path = "../stubs/bytes" }|' \
  -e 's|^serde = .*$|serde = { path = "../stubs/serde", features = ["derive"] }|' \
  Cargo.toml

export CARGO_NET_OFFLINE=true
export CARGO_TARGET_DIR="$MIRROR/target"
exec cargo "$@"

#!/usr/bin/env bash
# Workspace invariant gate — cheap textual lints that `cargo clippy` does
# not cover (or that must hold even for code clippy never compiles, like
# cfg'd-out paths). Run standalone or via scripts/verify.sh.
#
# Enforced invariants:
#   1. No `.unwrap()` / `.expect(` on the serve request paths
#      (crates/serve/src/service.rs, crates/serve/src/net.rs outside their
#      `#[cfg(test)]` modules). A panicking worker must never take the
#      service down; poisoned locks are recovered, missing state degrades.
#      Startup/shutdown thread plumbing may panic, but only on lines
#      explicitly marked `// gate: allow(expect)`.
#   2. Every obs metric registration (`registry.counter/gauge/histogram`)
#      uses a name matching ^[a-z][a-z0-9_.]*$ — the Prometheus exporter
#      sanitizes dots, but anything else would silently mangle series.
#   3. No `dbg!(` / `todo!(` anywhere in workspace sources. These are also
#      clippy-denied (dbg_macro, todo), but clippy only sees compiled
#      cfgs; the textual gate holds everywhere.
#   4. Every request phase in crates/obs/src/trace.rs pairs with a
#      `serve.phase.<name>_ns` histogram literal in the same file. A phase
#      without a histogram (or the reverse) silently drops its latency
#      attribution from the tail-forensics breakdown.
#   5. The retrieval metric namespace is closed: every registered series
#      under `rag.` or `serve.retrieve.` must be one of the canonical
#      names listed below, and all canonical names must be registered
#      somewhere. A typo'd or ad-hoc series would silently fork the
#      dashboards that key on these families.
#   6. The profiling/SLO metric namespace is closed the same way: every
#      series under `obs.prof.` or `serve.slo.` must match the canonical
#      list, and every canonical name must be registered. Burn-rate
#      alerting keys on `serve.slo.alert`; a renamed gauge would mute
#      the alert without failing any test.
#   7. The sharded-serving metric namespace is closed the same way: every
#      series under `serve.shard.` must match the canonical list, and
#      every canonical name must be registered. The v3 loadtest gate and
#      the inline fast-path accounting key on these families.
#   8. The interactive-analysis metric namespace is closed the same way:
#      every series under `analyze.fix.` or `lsp.` must match the
#      canonical list, and every canonical name must be registered. The
#      editor surface is driven by external clients, so a renamed series
#      breaks dashboards without failing any Rust test.
#
# `scripts/lint.sh --selftest` negative-tests the namespace gate: it
# seeds a source file registering a bogus `lsp.*` series and asserts the
# gate flags it.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--selftest" ]; then
    seeded=crates/lsp/src/__lint_selftest.rs
    trap 'rm -f "$seeded"' EXIT
    printf '// lint.sh selftest seed — never committed\nfn _seed(r: &lite_obs::Registry) { r.counter("lsp.bogus_series").inc(); }\n' > "$seeded"
    if "$0" > /dev/null 2>&1; then
        echo "lint selftest: FAILED — seeded lsp.bogus_series was not flagged"
        exit 1
    fi
    rm -f "$seeded"
    echo "lint selftest: OK (seeded namespace violation flagged)"
    exit 0
fi

fail=0

# -- 1. request-path panic freedom -----------------------------------------
for f in crates/serve/src/service.rs crates/serve/src/net.rs; do
    hits=$(awk '/^#\[cfg\(test\)\]/{exit} /\.unwrap\(\)|\.expect\(/ {print FILENAME ":" FNR ": " $0}' "$f" \
        | grep -v 'gate: allow(expect)' || true)
    if [ -n "$hits" ]; then
        echo "lint: panic on a serve request path (recover or mark '// gate: allow(expect)'):"
        echo "$hits"
        fail=1
    fi
done

# -- 2. metric-name hygiene -------------------------------------------------
bad_metrics=$(grep -rnoE '\.(counter|gauge|histogram)\("[^"]*"' crates --include='*.rs' \
    | grep -vE '\.(counter|gauge|histogram)\("[a-z][a-z0-9_.]*"' || true)
if [ -n "$bad_metrics" ]; then
    echo "lint: metric name must match ^[a-z][a-z0-9_.]*\$:"
    echo "$bad_metrics"
    fail=1
fi

# -- 3. no debug/stub macros anywhere --------------------------------------
debris=$(grep -rnE '(^|[^a-zA-Z0-9_!."])(dbg!|todo!)\(' crates src --include='*.rs' || true)
if [ -n "$debris" ]; then
    echo "lint: dbg!/todo! must not ship:"
    echo "$debris"
    fail=1
fi

# -- 4. phase ↔ histogram pairing -------------------------------------------
trace_rs=crates/obs/src/trace.rs
phase_names=$(grep -oE 'Phase::[A-Za-z]+ => "[a-z_]+"' "$trace_rs" \
    | sed -E 's/.*"([a-z_]+)".*/\1/' | sort)
metric_names=$(grep -oE 'Phase::[A-Za-z]+ => "serve\.phase\.[a-z_]+_ns"' "$trace_rs" \
    | sed -E 's/.*serve\.phase\.([a-z_]+)_ns.*/\1/' | sort)
if [ -z "$phase_names" ] || [ "$phase_names" != "$metric_names" ]; then
    echo "lint: Phase::name() and Phase::metric_name() out of sync in $trace_rs"
    echo "      (every phase needs a serve.phase.<name>_ns histogram literal):"
    diff <(echo "$phase_names") <(echo "$metric_names") | sed 's/^/  /' || true
    fail=1
fi

# -- 5. retrieval metric namespace is closed --------------------------------
canonical_retrieval='rag.index_size
rag.inserts
rag.search_ns
rag.searches
serve.retrieve.errors
serve.retrieve.latency_ns
serve.retrieve.neighbors
serve.retrieve.requests'
registered_retrieval=$(grep -rhoE '\.(counter|gauge|histogram)\("(rag\.|serve\.retrieve\.)[^"]*"' \
    crates --include='*.rs' | sed -E 's/.*"([^"]+)"/\1/' | sort -u)
if [ "$registered_retrieval" != "$canonical_retrieval" ]; then
    echo "lint: retrieval metric series diverge from the canonical list"
    echo "      (update scripts/lint.sh rule 5 together with any rag.*/serve.retrieve.* rename):"
    diff <(echo "$canonical_retrieval") <(echo "$registered_retrieval") | sed 's/^/  /' || true
    fail=1
fi

# -- 6. profiling/SLO metric namespace is closed ----------------------------
canonical_slo='obs.prof.alloc_bytes
obs.prof.allocs
obs.prof.samples
obs.prof.stacks
obs.prof.threads
obs.prof.torn
obs.prof.truncated
serve.slo.alert
serve.slo.alert_ticks
serve.slo.burn_fast
serve.slo.burn_slow
serve.slo.good_fraction
serve.slo.ticks
serve.slo.window_p50_ns
serve.slo.window_p999_ns
serve.slo.window_p99_ns
serve.slo.window_rate'
registered_slo=$(grep -rhoE '\.(counter|gauge|histogram)\("(obs\.prof\.|serve\.slo\.)[^"]*"' \
    crates --include='*.rs' | sed -E 's/.*"([^"]+)"/\1/' | sort -u)
if [ "$registered_slo" != "$canonical_slo" ]; then
    echo "lint: profiling/SLO metric series diverge from the canonical list"
    echo "      (update scripts/lint.sh rule 6 together with any obs.prof.*/serve.slo.* rename):"
    diff <(echo "$canonical_slo") <(echo "$registered_slo") | sed 's/^/  /' || true
    fail=1
fi

# -- 7. sharded-serving metric namespace is closed --------------------------
canonical_shard='serve.shard.count
serve.shard.inline
serve.shard.requests
serve.shard.resp_hits
serve.shard.resp_misses'
registered_shard=$(grep -rhoE '\.(counter|gauge|histogram)\("serve\.shard\.[^"]*"' \
    crates --include='*.rs' | sed -E 's/.*"([^"]+)"/\1/' | sort -u)
if [ "$registered_shard" != "$canonical_shard" ]; then
    echo "lint: sharded-serving metric series diverge from the canonical list"
    echo "      (update scripts/lint.sh rule 7 together with any serve.shard.* rename):"
    diff <(echo "$canonical_shard") <(echo "$registered_shard") | sed 's/^/  /' || true
    fail=1
fi

# -- 8. interactive-analysis metric namespace is closed ---------------------
canonical_interactive='analyze.fix.applied
analyze.fix.passes
analyze.fix.planned
analyze.fix.rejected
lsp.code_actions
lsp.diagnostics_published
lsp.hover
lsp.requests
lsp.update_us'
registered_interactive=$(grep -rhoE '\.(counter|gauge|histogram)\("(analyze\.fix\.|lsp\.)[^"]*"' \
    crates --include='*.rs' | sed -E 's/.*"([^"]+)"/\1/' | sort -u)
if [ "$registered_interactive" != "$canonical_interactive" ]; then
    echo "lint: interactive-analysis metric series diverge from the canonical list"
    echo "      (update scripts/lint.sh rule 8 together with any analyze.fix.*/lsp.* rename):"
    diff <(echo "$canonical_interactive") <(echo "$registered_interactive") | sed 's/^/  /' || true
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "lint: FAILED"
    exit 1
fi
echo "lint: OK"

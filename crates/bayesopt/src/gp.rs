//! Gaussian-process regression with a squared-exponential ARD kernel.

/// GP hyper-parameters.
#[derive(Debug, Clone)]
pub struct GpConfig {
    /// Signal variance `σ_f²`.
    pub signal_variance: f64,
    /// Per-dimension length scales (ARD). Scalar broadcast when length 1.
    pub length_scales: Vec<f64>,
    /// Observation noise variance `σ_n²` added to the kernel diagonal.
    pub noise_variance: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig { signal_variance: 1.0, length_scales: vec![0.3], noise_variance: 1e-3 }
    }
}

impl GpConfig {
    fn length_scale(&self, dim: usize) -> f64 {
        if self.length_scales.len() == 1 {
            self.length_scales[0]
        } else {
            self.length_scales[dim]
        }
    }

    /// SE-ARD kernel value.
    pub fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut s = 0.0;
        for (d, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            let l = self.length_scale(d);
            let diff = (x - y) / l;
            s += diff * diff;
        }
        self.signal_variance * (-0.5 * s).exp()
    }
}

/// A fitted Gaussian process (zero prior mean over centred targets).
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    config: GpConfig,
    x: Vec<Vec<f64>>,
    /// Cholesky factor L of K + σ²I (lower triangular, row-major packed).
    chol: Vec<f64>,
    /// α = (K + σ²I)⁻¹ (y - mean).
    alpha: Vec<f64>,
    y_mean: f64,
}

impl GaussianProcess {
    /// Fit on observations. Jitter is escalated automatically if the
    /// Cholesky factorization fails.
    pub fn fit(x: Vec<Vec<f64>>, y: &[f64], config: GpConfig) -> GaussianProcess {
        assert!(!x.is_empty(), "GP needs at least one observation");
        assert_eq!(x.len(), y.len());
        let n = x.len();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let centred: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = config.kernel(&x[i], &x[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }
        let mut jitter = config.noise_variance.max(1e-10);
        let chol = loop {
            let mut kj = k.clone();
            for i in 0..n {
                kj[i * n + i] += jitter;
            }
            if let Some(l) = cholesky(&kj, n) {
                break l;
            }
            jitter *= 10.0;
            assert!(jitter < 1e3, "kernel matrix irreparably non-PSD");
        };
        let alpha = chol_solve(&chol, n, &centred);
        GaussianProcess { config, x, chol, alpha, y_mean }
    }

    /// Posterior mean and variance at a point.
    pub fn predict(&self, p: &[f64]) -> (f64, f64) {
        let n = self.x.len();
        let kstar: Vec<f64> = self.x.iter().map(|xi| self.config.kernel(xi, p)).collect();
        let mean =
            self.y_mean + kstar.iter().zip(self.alpha.iter()).map(|(a, b)| a * b).sum::<f64>();
        // v = L⁻¹ k*; var = k(p,p) - vᵀv.
        let v = forward_sub(&self.chol, n, &kstar);
        let var = self.config.kernel(p, p) - v.iter().map(|x| x * x).sum::<f64>();
        (mean, var.max(1e-12))
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether no observations exist (never true for a fitted GP).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Expected Improvement for *minimization* below `best` at `p`, with
    /// exploration jitter `xi`.
    pub fn expected_improvement(&self, p: &[f64], best: f64, xi: f64) -> f64 {
        let (mu, var) = self.predict(p);
        let sigma = var.sqrt();
        if sigma < 1e-12 {
            return 0.0;
        }
        let improvement = best - mu - xi;
        let z = improvement / sigma;
        improvement * phi_cdf(z) + sigma * phi_pdf(z)
    }
}

/// Dense Cholesky `A = L Lᵀ`; returns `None` if A is not positive definite.
fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solve `L z = b` (forward substitution).
fn forward_sub(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let mut z = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * z[k];
        }
        z[i] = sum / l[i * n + i];
    }
    z
}

/// Solve `(L Lᵀ) x = b`.
fn chol_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let z = forward_sub(l, n, b);
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

fn phi_pdf(z: f64) -> f64 {
    (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

fn phi_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_interpolates_observations() {
        let x = vec![vec![0.0], vec![0.5], vec![1.0]];
        let y = vec![1.0, 2.0, 0.5];
        let gp = GaussianProcess::fit(x.clone(), &y, GpConfig::default());
        for (xi, yi) in x.iter().zip(y.iter()) {
            let (mu, var) = gp.predict(xi);
            assert!((mu - yi).abs() < 0.1, "mean {mu} vs obs {yi}");
            assert!(var < 0.05, "variance at observation: {var}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let x = vec![vec![0.0], vec![0.1]];
        let y = vec![0.0, 0.1];
        let gp = GaussianProcess::fit(x, &y, GpConfig::default());
        let (_, v_near) = gp.predict(&[0.05]);
        let (_, v_far) = gp.predict(&[3.0]);
        assert!(v_far > 10.0 * v_near, "near {v_near} far {v_far}");
    }

    #[test]
    fn far_predictions_revert_to_mean() {
        let x = vec![vec![0.0], vec![0.2], vec![0.4]];
        let y = vec![5.0, 7.0, 6.0];
        let gp = GaussianProcess::fit(x, &y, GpConfig::default());
        let (mu, _) = gp.predict(&[100.0]);
        assert!((mu - 6.0).abs() < 1e-6, "{mu}");
    }

    #[test]
    fn ei_prefers_promising_regions() {
        // Observations descending toward x=1; EI at the frontier should
        // beat EI in the well-explored bad region.
        let x = vec![vec![0.0], vec![0.3], vec![0.6]];
        let y = vec![3.0, 2.0, 1.0];
        let gp = GaussianProcess::fit(x, &y, GpConfig::default());
        let ei_frontier = gp.expected_improvement(&[0.9], 1.0, 0.0);
        let ei_bad = gp.expected_improvement(&[0.0], 1.0, 0.0);
        assert!(ei_frontier > ei_bad, "frontier {ei_frontier} vs bad {ei_bad}");
        assert!(ei_frontier > 0.0);
    }

    #[test]
    fn ei_is_nonnegative() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 1.0];
        let gp = GaussianProcess::fit(x, &y, GpConfig::default());
        for p in [-1.0, 0.0, 0.25, 0.5, 0.75, 1.0, 2.0] {
            assert!(gp.expected_improvement(&[p], 0.0, 0.0) >= 0.0);
        }
    }

    #[test]
    fn duplicate_points_do_not_break_factorization() {
        let x = vec![vec![0.5], vec![0.5], vec![0.5]];
        let y = vec![1.0, 1.1, 0.9];
        let gp = GaussianProcess::fit(x, &y, GpConfig::default());
        let (mu, _) = gp.predict(&[0.5]);
        assert!((mu - 1.0).abs() < 0.1);
    }

    #[test]
    fn ard_length_scales_weight_dimensions() {
        let cfg =
            GpConfig { signal_variance: 1.0, length_scales: vec![0.1, 10.0], noise_variance: 1e-6 };
        // Moving along the short-scale dim decorrelates fast.
        let k_dim0 = cfg.kernel(&[0.0, 0.0], &[0.3, 0.0]);
        let k_dim1 = cfg.kernel(&[0.0, 0.0], &[0.0, 0.3]);
        assert!(k_dim0 < 0.05);
        assert!(k_dim1 > 0.99);
    }
}

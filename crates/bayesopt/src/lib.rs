//! # lite-bayesopt — Gaussian-process Bayesian optimization baseline
//!
//! The paper's `BO(2h)` competitor: Gaussian-process regression with a
//! squared-exponential ARD kernel as surrogate, Expected Improvement as
//! acquisition, and (following OtterTune) a warm start from the most
//! similar training instances. The tuner charges each evaluation's
//! *simulated* execution time to its budget, so the 2-hour tuning budgets
//! of Table VI and the overhead curves of Figure 8 are reproducible.

pub mod gp;
pub mod tuner;

pub use gp::{GaussianProcess, GpConfig};
pub use tuner::{BoObservation, BoServeTuner, BoTuner, TuneTrace};

//! The budgeted Bayesian-optimization tuning loop.
//!
//! Mirrors the paper's `BO(2h)` competitor: warm-started from similar
//! training instances (OtterTune style), then iterating
//! fit-surrogate → maximize-EI → execute, until the tuning budget —
//! measured in *executed application seconds*, exactly how the paper
//! charges BO's overhead — is exhausted.

use crate::gp::{GaussianProcess, GpConfig};
use lite_obs::Tracer;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One observation available before tuning starts (warm start).
#[derive(Debug, Clone)]
pub struct BoObservation {
    /// Point in the normalized `[0,1]^D` configuration encoding.
    pub point: Vec<f64>,
    /// Observed execution time in seconds.
    pub time_s: f64,
}

/// One step of a tuning trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneTrace {
    /// Cumulative tuning overhead (seconds of executed application time)
    /// when this evaluation finished.
    pub overhead_s: f64,
    /// Execution time of the evaluated configuration.
    pub time_s: f64,
    /// Best execution time seen so far (including this step).
    pub best_s: f64,
}

/// Bayesian-optimization tuner over the normalized configuration cube.
#[derive(Debug, Clone)]
pub struct BoTuner {
    /// Problem dimensionality.
    pub dim: usize,
    /// Candidate pool size per acquisition maximization.
    pub acquisition_pool: usize,
    /// EI exploration jitter.
    pub xi: f64,
    /// GP hyper-parameters.
    pub gp: GpConfig,
    /// Span tracer: one `bo.iter` span per evaluated configuration
    /// (disabled by default).
    pub tracer: Tracer,
    seed: u64,
}

impl BoTuner {
    /// A tuner for `dim`-dimensional problems.
    pub fn new(dim: usize, seed: u64) -> BoTuner {
        BoTuner {
            dim,
            acquisition_pool: 512,
            xi: 0.01,
            gp: GpConfig { length_scales: vec![0.25], ..Default::default() },
            tracer: Tracer::disabled(),
            seed,
        }
    }

    /// Run tuning until `budget_s` seconds of executed application time
    /// have been spent. `objective` maps a normalized point to an
    /// execution time (capped by the caller for failures). Returns the
    /// trajectory and the best point found.
    pub fn run(
        &self,
        warm: &[BoObservation],
        mut objective: impl FnMut(&[f64]) -> f64,
        budget_s: f64,
    ) -> (Vec<TuneTrace>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut xs: Vec<Vec<f64>> = warm.iter().map(|o| o.point.clone()).collect();
        // Surrogate regresses log-time: multiplicative structure and
        // failure caps otherwise wreck the GP.
        let mut ys: Vec<f64> = warm.iter().map(|o| (1.0 + o.time_s).ln()).collect();
        let mut raw: Vec<f64> = warm.iter().map(|o| o.time_s).collect();

        let mut trace = Vec::new();
        let mut overhead = 0.0;
        let mut best = raw.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut best_point = warm
            .iter()
            .min_by(|a, b| a.time_s.total_cmp(&b.time_s))
            .map(|o| o.point.clone())
            .unwrap_or_else(|| vec![0.5; self.dim]);

        // Always spend at least one evaluation, even on tiny budgets (the
        // paper's BO baseline runs "at least 2 hours").
        let mut run_span = self.tracer.span("bo.run");
        if run_span.is_recording() {
            run_span.attr_u64("warm_observations", warm.len() as u64);
            run_span.attr_f64("budget_s", budget_s);
        }
        let mut iteration = 0u64;
        loop {
            let mut iter_span = self.tracer.span("bo.iter");
            let point = if xs.is_empty() {
                uniform_point(self.dim, &mut rng)
            } else {
                let gp = GaussianProcess::fit(xs.clone(), &ys, self.gp.clone());
                let best_log = ys.iter().cloned().fold(f64::INFINITY, f64::min);
                let mut cand_best = uniform_point(self.dim, &mut rng);
                let mut cand_ei = f64::NEG_INFINITY;
                for _ in 0..self.acquisition_pool {
                    let p = uniform_point(self.dim, &mut rng);
                    let ei = gp.expected_improvement(&p, best_log, self.xi);
                    if ei > cand_ei {
                        cand_ei = ei;
                        cand_best = p;
                    }
                }
                cand_best
            };

            let t = objective(&point);
            overhead += t;
            if t < best {
                best = t;
                best_point = point.clone();
            }
            trace.push(TuneTrace { overhead_s: overhead, time_s: t, best_s: best });
            if iter_span.is_recording() {
                iter_span.attr_u64("iteration", iteration);
                iter_span.attr_str("candidate", &format!("{point:.3?}"));
                iter_span.attr_f64("actual_s", t);
                iter_span.attr_f64("best_s", best);
                iter_span.attr_f64("overhead_s", overhead);
            }
            iteration += 1;
            xs.push(point);
            ys.push((1.0 + t).ln());
            raw.push(t);

            if overhead >= budget_s {
                break;
            }
        }
        if run_span.is_recording() {
            run_span.attr_u64("evaluations", iteration);
            run_span.attr_f64("best_s", best);
        }
        (trace, best_point)
    }
}

fn uniform_point(dim: usize, rng: &mut StdRng) -> Vec<f64> {
    use rand::Rng;
    (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect()
}

/// [`BoTuner`] behind the unified [`Tuner`] trait: an *online* BO loop
/// driven from the outside. Each `recommend` fits the GP surrogate on the
/// observations accumulated for that (app, data, cluster) target and ranks
/// an EI-maximizing candidate pool; each `observe` appends to the target's
/// history. Before `min_fit` observations it explores with seeded uniform
/// samples — a GP fit on one point is noise.
pub struct BoServeTuner {
    /// The configuration space proposals decode into.
    pub space: lite_sparksim::conf::ConfSpace,
    /// GP / acquisition settings (the seed inside is unused here; every
    /// `recommend` derives randomness from the request seed instead).
    pub bo: BoTuner,
    /// Observations before the surrogate is trusted.
    pub min_fit: usize,
    /// Failure/time cap applied to observed runtimes.
    pub cap_s: f64,
    history: std::collections::HashMap<TargetKey, Vec<BoObservation>>,
}

/// One tuning target: observations never leak across applications, data
/// scales or clusters (their response surfaces differ).
type TargetKey = (lite_workloads::apps::AppId, u64, String);

impl BoServeTuner {
    /// An online BO tuner over `space`.
    pub fn new(space: lite_sparksim::conf::ConfSpace, seed: u64) -> BoServeTuner {
        let bo = BoTuner::new(lite_sparksim::conf::NUM_KNOBS, seed);
        BoServeTuner { space, bo, min_fit: 3, cap_s: 7200.0, history: Default::default() }
    }

    /// Observations accumulated for a target.
    pub fn history_len(&self, req: &lite_core::tuner::TuneRequest) -> usize {
        self.history.get(&Self::key(&req.app, &req.data, &req.cluster)).map_or(0, Vec::len)
    }

    fn key(
        app: &lite_workloads::apps::AppId,
        data: &lite_workloads::data::DataSpec,
        cluster: &lite_sparksim::cluster::ClusterSpec,
    ) -> TargetKey {
        (*app, data.bytes, cluster.name.clone())
    }
}

impl lite_core::tuner::Tuner for BoServeTuner {
    fn name(&self) -> &'static str {
        "bo"
    }

    fn recommend(
        &self,
        req: &lite_core::tuner::TuneRequest,
    ) -> Result<lite_core::tuner::TuneResult, lite_core::tuner::TuneError> {
        use lite_core::recommend::RankedCandidate;
        let mut rng = StdRng::seed_from_u64(req.seed ^ 0xB0);
        let k = req.k.max(1);
        let obs = self.history.get(&Self::key(&req.app, &req.data, &req.cluster));
        let ranked: Vec<RankedCandidate> = match obs {
            Some(obs) if obs.len() >= self.min_fit => {
                let xs: Vec<Vec<f64>> = obs.iter().map(|o| o.point.clone()).collect();
                let ys: Vec<f64> = obs.iter().map(|o| (1.0 + o.time_s).ln()).collect();
                let gp = GaussianProcess::fit(xs, &ys, self.bo.gp.clone());
                let best_log = ys.iter().cloned().fold(f64::INFINITY, f64::min);
                let mut pool: Vec<(f64, Vec<f64>)> = (0..self.bo.acquisition_pool)
                    .map(|_| {
                        let p = uniform_point(self.bo.dim, &mut rng);
                        (gp.expected_improvement(&p, best_log, self.bo.xi), p)
                    })
                    .collect();
                pool.sort_by(|a, b| b.0.total_cmp(&a.0));
                pool.into_iter()
                    .take(k)
                    .map(|(_, p)| {
                        let (mu, _) = gp.predict(&p);
                        let mut u = [0.0; lite_sparksim::conf::NUM_KNOBS];
                        u.copy_from_slice(&p);
                        RankedCandidate { conf: self.space.decode(&u), predicted_s: mu.exp() - 1.0 }
                    })
                    .collect()
            }
            _ => (0..k)
                .map(|_| RankedCandidate { conf: self.space.sample(&mut rng), predicted_s: 0.0 })
                .collect(),
        };
        Ok(lite_core::tuner::TuneResult { ranked, degraded: false })
    }

    fn observe(&mut self, fb: lite_core::tuner::Feedback) {
        let key = Self::key(&fb.app, &fb.data, &fb.cluster);
        self.history.entry(key).or_default().push(BoObservation {
            point: fb.conf.normalized(&self.space).to_vec(),
            time_s: fb.result.capped_time(self.cap_s),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth 2-D bowl: minimum 10 s at (0.7, 0.3).
    fn bowl(p: &[f64]) -> f64 {
        10.0 + 200.0 * ((p[0] - 0.7).powi(2) + (p[1] - 0.3).powi(2))
    }

    #[test]
    fn bo_improves_over_random_warm_start() {
        let tuner = BoTuner::new(2, 5);
        let warm = vec![
            BoObservation { point: vec![0.1, 0.9], time_s: bowl(&[0.1, 0.9]) },
            BoObservation { point: vec![0.9, 0.9], time_s: bowl(&[0.9, 0.9]) },
        ];
        let warm_best = warm.iter().map(|o| o.time_s).fold(f64::INFINITY, f64::min);
        let (trace, best_point) = tuner.run(&warm, bowl, 3000.0);
        let best = trace.last().unwrap().best_s;
        assert!(best < 0.6 * warm_best, "best {best} vs warm {warm_best}");
        assert!((best_point[0] - 0.7).abs() < 0.25, "{best_point:?}");
    }

    #[test]
    fn trace_best_is_monotone_and_overhead_cumulative() {
        let tuner = BoTuner::new(2, 6);
        let (trace, _) = tuner.run(&[], bowl, 1500.0);
        for w in trace.windows(2) {
            assert!(w[1].best_s <= w[0].best_s);
            assert!(w[1].overhead_s > w[0].overhead_s);
        }
        assert!(trace.last().unwrap().overhead_s >= 1500.0);
    }

    #[test]
    fn budget_limits_evaluations() {
        let tuner = BoTuner::new(2, 7);
        // Every evaluation costs ~100+ s, budget 500 s => at most ~6 evals.
        let (trace, _) = tuner.run(&[], |p| 100.0 + bowl(p), 500.0);
        assert!(trace.len() <= 6, "{} evals", trace.len());
        assert!(!trace.is_empty());
    }

    #[test]
    fn iteration_spans_match_the_trace() {
        let mut tuner = BoTuner::new(2, 11);
        tuner.tracer = Tracer::new();
        let (trace, _) = tuner.run(&[], bowl, 1000.0);
        let spans = tuner.tracer.finished();
        let run = spans.iter().find(|s| s.name == "bo.run").expect("run span");
        let iters: Vec<_> = spans.iter().filter(|s| s.name == "bo.iter").collect();
        assert_eq!(iters.len(), trace.len());
        assert!(iters.iter().all(|s| s.parent == Some(run.id)));
        for (step, span) in trace.iter().zip(iters.iter()) {
            match span.attr("actual_s") {
                Some(lite_obs::AttrValue::F64(v)) => assert_eq!(*v, step.time_s),
                other => panic!("missing actual_s: {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t1 = BoTuner::new(2, 9);
        let t2 = BoTuner::new(2, 9);
        let (a, _) = t1.run(&[], bowl, 800.0);
        let (b, _) = t2.run(&[], bowl, 800.0);
        assert_eq!(a, b);
    }

    #[test]
    fn serve_tuner_learns_through_the_unified_trait() {
        use lite_core::tuner::{Feedback, TuneRequest, Tuner};
        use lite_sparksim::cluster::ClusterSpec;
        use lite_sparksim::conf::ConfSpace;
        use lite_sparksim::exec::simulate;
        use lite_workloads::apps::{build_job, AppId};
        use lite_workloads::data::SizeTier;

        let space = ConfSpace::table_iv();
        let mut tuner = BoServeTuner::new(space.clone(), 21);
        let cluster = ClusterSpec::cluster_a();
        let data = AppId::Sort.dataset(SizeTier::Valid);
        let plan = build_job(AppId::Sort, &data);
        let req = |seed: u64| TuneRequest {
            app: AppId::Sort,
            data,
            cluster: cluster.clone(),
            k: 2,
            seed,
        };

        // Before min_fit observations: seeded exploration, deterministic.
        let a = tuner.recommend(&req(5)).unwrap();
        let b = tuner.recommend(&req(5)).unwrap();
        assert_eq!(a.ranked.len(), 2);
        assert_eq!(a.ranked[0].conf, b.ranked[0].conf);

        // Feed a few runs; the GP path must then answer with valid confs.
        for seed in 0..4u64 {
            let r = tuner.recommend(&req(seed)).unwrap();
            let conf = r.ranked[0].conf.clone();
            let result = simulate(&cluster, &conf, &plan, 900 + seed);
            tuner.observe(Feedback {
                app: AppId::Sort,
                data,
                cluster: cluster.clone(),
                conf,
                result,
            });
        }
        assert_eq!(tuner.history_len(&req(0)), 4);
        let r = tuner.recommend(&req(77)).unwrap();
        assert_eq!(r.ranked.len(), 2);
        for c in &r.ranked {
            assert!(space.is_valid(&c.conf));
            assert!(c.predicted_s.is_finite());
        }
    }
}

//! Adaptive Model Update (paper Section IV-B).
//!
//! Fine-tunes NECS on newly collected production feedback (`DT`, the
//! target domain) while keeping the small-data training set (`DS`, the
//! source domain). A discriminator tries to tell source from target given
//! the MLP's concatenated hidden states `h_i = f¹(x)‖…‖f^L`; a
//! gradient-reversal layer between `h_i` and the discriminator turns the
//! minimax of Eq. 8 into a single backward pass: the discriminator
//! *minimizes* its binary cross-entropy while the encoder receives the
//! *negated* gradient and learns domain-invariant representations. The
//! prediction (MSE) loss runs on both domains.

use crate::features::StageInstance;
use crate::features::TemplateRegistry;
use crate::necs::Necs;
use lite_nn::init::rng;
use lite_nn::layers::Dense;
use lite_nn::optim::{clip_grad_norm, Adam};
use lite_nn::tape::Tape;
use lite_nn::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// AMU hyper-parameters.
#[derive(Debug, Clone)]
pub struct AmuConfig {
    /// Fine-tuning epochs over the mixed batches.
    pub epochs: usize,
    /// Instances drawn from each domain per batch.
    pub half_batch: usize,
    /// Adam learning rate for the fine-tune.
    pub lr: f32,
    /// Gradient-reversal strength λ (how hard the encoder fights the
    /// discriminator).
    pub lambda: f32,
    /// Discriminator hidden width.
    pub disc_hidden: usize,
    /// Shuffle/init seed.
    pub seed: u64,
}

impl Default for AmuConfig {
    fn default() -> Self {
        AmuConfig { epochs: 6, half_batch: 256, lr: 5e-4, lambda: 0.3, disc_hidden: 32, seed: 7 }
    }
}

/// Per-epoch diagnostics of one update.
#[derive(Debug, Clone, Copy)]
pub struct AmuEpoch {
    /// Mean prediction loss over the epoch's batches.
    pub prediction_loss: f32,
    /// Mean discriminator loss.
    pub discriminator_loss: f32,
}

/// Run Adaptive Model Update: fine-tune `model` in place on
/// `source ∪ target` with the adversarial domain objective.
pub fn adaptive_model_update(
    model: &mut Necs,
    registry: &TemplateRegistry,
    source: &[&StageInstance],
    target: &[&StageInstance],
    config: &AmuConfig,
) -> Vec<AmuEpoch> {
    assert!(!source.is_empty(), "AMU needs source instances");
    assert!(!target.is_empty(), "AMU needs target feedback");

    // Discriminator: h -> hidden -> 1 logit. Its parameters extend the
    // model's store so one optimizer steps everything; the GRL sign split
    // realizes the minimax.
    let mut r = rng(config.seed);
    let hidden_w = model.hidden_width();
    let (d1, d2) = {
        let params = model.params_mut();
        (
            Dense::new(params, "amu.disc1", hidden_w, config.disc_hidden, &mut r),
            Dense::new(params, "amu.disc2", config.disc_hidden, 1, &mut r),
        )
    };

    let mut opt = Adam::new(config.lr);
    let mut shuffle = rand::rngs::StdRng::seed_from_u64(config.seed ^ 0xa3);
    let mut src_idx: Vec<usize> = (0..source.len()).collect();
    let mut tgt_idx: Vec<usize> = (0..target.len()).collect();
    let mut history = Vec::with_capacity(config.epochs);

    for _ in 0..config.epochs {
        src_idx.shuffle(&mut shuffle);
        tgt_idx.shuffle(&mut shuffle);
        let batches = (source.len().div_ceil(config.half_batch)).max(1);
        let mut lp_sum = 0.0f32;
        let mut ld_sum = 0.0f32;
        for b in 0..batches {
            // Equal halves: all of DT is small, so it resamples each batch.
            let src_half: Vec<&StageInstance> = src_idx
                .iter()
                .cycle()
                .skip(b * config.half_batch)
                .take(config.half_batch)
                .map(|&i| source[i])
                .collect();
            let tgt_half: Vec<&StageInstance> = tgt_idx
                .iter()
                .cycle()
                .skip((b * config.half_batch) % target.len())
                .take(config.half_batch.min(target.len()))
                .map(|&i| target[i])
                .collect();
            let mut batch: Vec<&StageInstance> = src_half;
            let n_src = batch.len();
            batch.extend(tgt_half);
            let n_all = batch.len();

            let mut targets = Tensor::zeros(n_all, 1);
            let mut labels = Tensor::zeros(n_all, 1);
            for (i, inst) in batch.iter().enumerate() {
                targets.set(i, 0, model.norm_target(inst));
                labels.set(i, 0, if i < n_src { 1.0 } else { 0.0 });
            }

            let mut tape = Tape::new();
            let (pred, hidden) = model.forward_with_hidden(&mut tape, registry, &batch);
            let lp = tape.mse_loss(pred, &targets);
            let rev = tape.grad_reverse(hidden, config.lambda);
            let h1 = d1.forward(&mut tape, model.params(), rev);
            let h1 = tape.relu(h1);
            let logits = d2.forward(&mut tape, model.params(), h1);
            let ld = tape.bce_logits_loss(logits, &labels);
            let loss = tape.add(lp, ld);

            lp_sum += tape.value(lp).get(0, 0);
            ld_sum += tape.value(ld).get(0, 0);
            tape.backward(loss, model.params_mut());
            clip_grad_norm(model.params_mut(), 5.0);
            opt.step(model.params_mut());
        }
        history.push(AmuEpoch {
            prediction_loss: lp_sum / batches as f32,
            discriminator_loss: ld_sum / batches as f32,
        });
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{extract_stage_instances, DatasetBuilder};
    use crate::necs::NecsConfig;
    use lite_sparksim::cluster::ClusterSpec;
    use lite_sparksim::exec::simulate;
    use lite_workloads::apps::{build_job, AppId};
    use lite_workloads::data::SizeTier;

    #[test]
    fn amu_improves_target_domain_fit() {
        // Source: small Sort + PageRank runs on cluster A. Target: larger
        // validation-size runs on cluster C (different datasize AND
        // environment — the paper's domain gap).
        let ds = DatasetBuilder {
            apps: vec![AppId::Sort, AppId::PageRank],
            clusters: vec![ClusterSpec::cluster_a()],
            tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
            confs_per_cell: 4,
            seed: 11,
        }
        .build();
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let mut model = Necs::train(
            &ds.registry,
            &ds.space,
            &refs,
            NecsConfig { epochs: 5, batch_size: 256, ..Default::default() },
        );

        // Build target feedback on cluster C with mid-size data.
        let cluster_c = ClusterSpec::cluster_c();
        let mut target = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for app in [AppId::Sort, AppId::PageRank] {
            let data = app.dataset(SizeTier::Valid);
            for k in 0..6 {
                let conf = ds.space.sample(&mut rng);
                let result = simulate(&cluster_c, &conf, &build_job(app, &data), 900 + k);
                extract_stage_instances(
                    &ds.registry,
                    app,
                    &conf,
                    &data,
                    &cluster_c,
                    &result,
                    usize::MAX - 1,
                    &mut target,
                );
            }
        }
        assert!(!target.is_empty());
        // Hold out some target instances for evaluation.
        let (fit_t, eval_t) = target.split_at(target.len() / 2);
        let fit_refs: Vec<&StageInstance> = fit_t.iter().collect();

        let mse_on = |m: &Necs, insts: &[StageInstance]| -> f64 {
            let items: Vec<_> =
                insts.iter().map(|i| (i.template, &i.conf, &i.data, &i.env)).collect();
            let preds = m.predict_stages(&ds.registry, &items);
            insts
                .iter()
                .zip(preds.iter())
                .map(|(i, p)| ((1.0 + i.y).ln() - (1.0 + p).ln()).powi(2))
                .sum::<f64>()
                / insts.len() as f64
        };
        let before = mse_on(&model, eval_t);
        let hist = adaptive_model_update(
            &mut model,
            &ds.registry,
            &refs,
            &fit_refs,
            &AmuConfig { epochs: 4, ..Default::default() },
        );
        let after = mse_on(&model, eval_t);
        assert_eq!(hist.len(), 4);
        assert!(after < before * 1.05, "AMU degraded target fit: {before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "target feedback")]
    fn amu_requires_target_instances() {
        let ds = DatasetBuilder {
            apps: vec![AppId::Sort],
            clusters: vec![ClusterSpec::cluster_a()],
            tiers: vec![SizeTier::Train(0)],
            confs_per_cell: 1,
            seed: 1,
        }
        .build();
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let mut model = Necs::train(
            &ds.registry,
            &ds.space,
            &refs,
            NecsConfig { epochs: 1, batch_size: 64, ..Default::default() },
        );
        adaptive_model_update(&mut model, &ds.registry, &refs, &[], &AmuConfig::default());
    }
}

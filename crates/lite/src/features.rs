//! Stage-based Code Organization and feature assembly (paper Section III).
//!
//! The training unit is the **stage instance** `⟨o, C, G, d, e, y⟩`:
//! configuration, code features, scheduler features, data features,
//! environment features, stage execution time. Stage *templates* (the code
//! and DAG of one stage kind of one application) are interned in a
//! [`TemplateRegistry`] so that
//!
//! * one application run yields many stage instances (the augmentation of
//!   paper Figure 9), and
//! * models encode each template once per minibatch and share the encoding
//!   across all of its instances.

use lite_nn::layers::normalized_adjacency;
use lite_nn::tensor::Tensor;
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::{ConfSpace, SparkConf, NUM_KNOBS};
use lite_sparksim::plan::OpKind;
use lite_workloads::apps::AppId;
use lite_workloads::data::DataSpec;
use lite_workloads::instrument::{instrument_app, static_stage_codes, StageCode};
use lite_workloads::tokenize::{tokenize, Vocab, OOV_TOKEN_ID};
use std::collections::HashMap;

/// Maximum tokens per stage (`N` in the paper: 1000, zero-padded).
pub const TOKEN_CAP: usize = 1000;

/// Index of a stage template within a [`TemplateRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemplateKey(pub usize);

/// One interned stage template: encoded code plus DAG.
#[derive(Debug, Clone)]
pub struct TemplateEntry {
    /// Owning application.
    pub app: AppId,
    /// Stage template name (e.g. `"pr-contrib"`).
    pub name: String,
    /// Token ids (vocab-encoded, truncated at [`TOKEN_CAP`], *not* padded —
    /// encoders pad or window as they need).
    pub token_ids: Vec<usize>,
    /// DAG node labels as op-vocab indices (0 = oov).
    pub dag_ops: Vec<usize>,
    /// Normalized adjacency `Â` of the DAG.
    pub a_hat: Tensor,
}

/// Interned templates + vocabularies shared by every model.
#[derive(Debug, Clone)]
pub struct TemplateRegistry {
    entries: Vec<TemplateEntry>,
    by_key: HashMap<(AppId, String), TemplateKey>,
    /// Token vocabulary built from the training applications' stage codes.
    pub vocab: Vocab,
    /// Operation vocabulary: maps `OpKind` id → one-hot index (1-based;
    /// index 0 is the oov operation). `S` = number of training-time ops.
    op_index: HashMap<usize, usize>,
}

impl TemplateRegistry {
    /// Build a registry by instrumenting `apps` (the training
    /// applications). Vocabularies are derived from these apps only, so
    /// cold-start applications added later exercise the `<oov>` paths
    /// exactly as in the paper.
    pub fn build(apps: &[AppId]) -> TemplateRegistry {
        Self::build_from(apps.iter().map(|&a| (a, instrument_app(a))).collect())
    }

    /// Build a registry from *static* stage-code extraction — zero
    /// simulator runs. Since [`static_stage_codes`] is asserted equivalent
    /// to [`instrument_app`] on every workload, this produces the same
    /// registry as [`TemplateRegistry::build`] without paying for the
    /// cold-start instrumentation run.
    pub fn build_static(apps: &[AppId]) -> TemplateRegistry {
        Self::build_from(apps.iter().map(|&a| (a, static_stage_codes(a))).collect())
    }

    /// Shared registry construction over already-extracted stage codes.
    fn build_from(instrumented: Vec<(AppId, Vec<StageCode>)>) -> TemplateRegistry {
        // Token vocabulary over all training stage codes.
        let token_streams: Vec<Vec<String>> = instrumented
            .iter()
            .flat_map(|(_, stages)| stages.iter().map(|s| tokenize(&s.source)))
            .collect();
        let refs: Vec<&[String]> = token_streams.iter().map(|s| s.as_slice()).collect();
        // min_count = 1: each template contributes exactly one stream to
        // this corpus, so any higher threshold would silently collapse all
        // template-unique distinctive tokens (the paper's C1 motivation)
        // into <oov>.
        let vocab = Vocab::build(refs.iter().copied(), 1);

        // Operation vocabulary (one-hot index space, 0 reserved for oov).
        let mut op_index = HashMap::new();
        for (_, stages) in &instrumented {
            for s in stages {
                for op in &s.dag.nodes {
                    let next = op_index.len() + 1;
                    op_index.entry(op.id()).or_insert(next);
                }
            }
        }

        let mut reg =
            TemplateRegistry { entries: Vec::new(), by_key: HashMap::new(), vocab, op_index };
        for (app, stages) in instrumented {
            for s in stages {
                reg.intern(app, &s);
            }
        }
        reg
    }

    /// Intern one instrumented stage (idempotent per `(app, name)`).
    /// Unknown tokens map to `<oov>`; unknown operations map to the oov
    /// one-hot index.
    pub fn intern(&mut self, app: AppId, stage: &StageCode) -> TemplateKey {
        if let Some(&k) = self.by_key.get(&(app, stage.template.clone())) {
            return k;
        }
        let tokens = tokenize(&stage.source);
        let token_ids: Vec<usize> =
            tokens.iter().take(TOKEN_CAP).map(|t| self.vocab.id(t)).collect();
        let dag_ops: Vec<usize> = stage
            .dag
            .nodes
            .iter()
            .map(|op| self.op_index.get(&op.id()).copied().unwrap_or(0))
            .collect();
        let a_hat = normalized_adjacency(stage.dag.nodes.len(), &stage.dag.edges);
        let key = TemplateKey(self.entries.len());
        self.entries.push(TemplateEntry {
            app,
            name: stage.template.clone(),
            token_ids,
            dag_ops,
            a_hat,
        });
        self.by_key.insert((app, stage.template.clone()), key);
        key
    }

    /// Look up a template.
    pub fn get(&self, key: TemplateKey) -> &TemplateEntry {
        &self.entries[key.0]
    }

    /// Key for `(app, template name)`, if interned.
    pub fn key_of(&self, app: AppId, name: &str) -> Option<TemplateKey> {
        self.by_key.get(&(app, name.to_string())).copied()
    }

    /// Number of interned templates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// One-hot width for DAG nodes: `S + 1` (paper Section III-B, step 3).
    pub fn op_onehot_width(&self) -> usize {
        self.op_index.len() + 1
    }

    /// Node one-hot feature matrix `V_i ∈ R^{|V| × (S+1)}` for a template.
    pub fn node_onehots(&self, key: TemplateKey) -> Tensor {
        let e = self.get(key);
        let w = self.op_onehot_width();
        let mut m = Tensor::zeros(e.dag_ops.len(), w);
        for (r, &idx) in e.dag_ops.iter().enumerate() {
            m.set(r, idx, 1.0);
        }
        m
    }

    /// Node one-hots as if every operation were unseen (the paper's
    /// Cold-UNK ablation *without* the oov token maps unseen ops to zero
    /// vectors instead).
    pub fn node_onehots_no_oov(&self, key: TemplateKey) -> Tensor {
        let e = self.get(key);
        let w = self.op_onehot_width();
        let mut m = Tensor::zeros(e.dag_ops.len(), w);
        for (r, &idx) in e.dag_ops.iter().enumerate() {
            if idx != 0 {
                m.set(r, idx, 1.0);
            }
        }
        m
    }

    /// Fraction of a template's tokens that are out-of-vocabulary.
    pub fn oov_fraction(&self, key: TemplateKey) -> f64 {
        let e = self.get(key);
        if e.token_ids.is_empty() {
            return 0.0;
        }
        e.token_ids.iter().filter(|&&t| t == OOV_TOKEN_ID).count() as f64 / e.token_ids.len() as f64
    }
}

/// One stage-level training instance (paper Section III-C).
#[derive(Debug, Clone)]
pub struct StageInstance {
    /// Owning application.
    pub app: AppId,
    /// Interned template (code features `C_i` + scheduler features `G_i`).
    pub template: TemplateKey,
    /// Knob values `o_i`.
    pub conf: SparkConf,
    /// Data features `d_i`.
    pub data: DataSpec,
    /// Environment features `e_i` (Table II).
    pub env: [f64; 6],
    /// Stage execution time `y_i` in seconds.
    pub y: f64,
    /// Application-instance id `w(x_i)`: instances from the same run share
    /// `o`, `d`, `e`.
    pub app_instance: usize,
}

/// Width of the tabular part of the model input:
/// `d (4) + e (6) + o (16)`.
pub const TABULAR_WIDTH: usize = 4 + 6 + NUM_KNOBS;

/// Normalization statistics for tabular features and targets, estimated on
/// the training set and reused verbatim at test time (the small→large
/// migration must not peek at test statistics).
#[derive(Debug, Clone)]
pub struct FeatNorm {
    mean: Vec<f64>,
    std: Vec<f64>,
    /// Mean of `ln(1+y)`.
    pub y_mean: f64,
    /// Std of `ln(1+y)`.
    pub y_std: f64,
}

impl FeatNorm {
    /// Estimate from training instances.
    pub fn fit(space: &ConfSpace, instances: &[StageInstance]) -> FeatNorm {
        assert!(!instances.is_empty(), "cannot normalize an empty training set");
        let rows: Vec<Vec<f64>> = instances.iter().map(|i| raw_tabular(space, i)).collect();
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut mean = vec![0.0; dim];
        for r in &rows {
            for (m, v) in mean.iter_mut().zip(r.iter()) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0; dim];
        for r in &rows {
            for ((s, v), m) in std.iter_mut().zip(r.iter()).zip(mean.iter()) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut std {
            // Features constant in training (e.g. a single cluster) keep
            // unit scale: a tiny floor would explode any test-time
            // deviation into astronomical z-scores.
            *s = if *s < 1e-8 { 1.0 } else { s.sqrt() };
        }
        let ys: Vec<f64> = instances.iter().map(|i| (1.0 + i.y).ln()).collect();
        let y_mean = ys.iter().sum::<f64>() / n;
        let y_std =
            (ys.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n).sqrt().max(1e-6);
        FeatNorm { mean, std, y_mean, y_std }
    }

    /// Normalized tabular feature vector for an instance.
    pub fn tabular(&self, space: &ConfSpace, inst: &StageInstance) -> Vec<f64> {
        self.tabular_parts(space, &inst.conf, &inst.data, &inst.env)
    }

    /// Normalized tabular features from raw parts (used at recommendation
    /// time where no `StageInstance` exists yet).
    pub fn tabular_parts(
        &self,
        space: &ConfSpace,
        conf: &SparkConf,
        data: &DataSpec,
        env: &[f64; 6],
    ) -> Vec<f64> {
        let raw = raw_tabular_parts(space, conf, data, env);
        raw.iter()
            .zip(self.mean.iter().zip(self.std.iter()))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Normalize a target time.
    pub fn norm_y(&self, y: f64) -> f64 {
        ((1.0 + y).ln() - self.y_mean) / self.y_std
    }

    /// Invert [`FeatNorm::norm_y`]. The normalized input is clamped to
    /// ±20σ so wild extrapolations stay finite.
    pub fn denorm_y(&self, z: f64) -> f64 {
        (z.clamp(-20.0, 20.0) * self.y_std + self.y_mean).exp() - 1.0
    }
}

fn raw_tabular(space: &ConfSpace, inst: &StageInstance) -> Vec<f64> {
    raw_tabular_parts(space, &inst.conf, &inst.data, &inst.env)
}

fn raw_tabular_parts(
    space: &ConfSpace,
    conf: &SparkConf,
    data: &DataSpec,
    env: &[f64; 6],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(TABULAR_WIDTH);
    out.extend_from_slice(&data.log_features());
    // Pre-scale raw environment units into comparable ranges (memory speed
    // is in thousands of MT/s) before z-scoring.
    out.extend_from_slice(&[env[0], env[1], env[2], env[3] / 8.0, env[4] / 1000.0, env[5]]);
    out.extend_from_slice(&conf.normalized(space));
    out
}

/// Environment feature helper.
pub fn env_features(cluster: &ClusterSpec) -> [f64; 6] {
    cluster.env_features()
}

/// Whether an operation id is in the op vocabulary of a registry (test
/// support for the oov ablation).
pub fn op_known(reg: &TemplateRegistry, op: OpKind) -> bool {
    reg.op_index.contains_key(&op.id())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lite_workloads::data::SizeTier;

    #[test]
    fn registry_interns_all_training_templates() {
        let reg = TemplateRegistry::build(&[AppId::Terasort, AppId::PageRank]);
        assert!(reg.len() >= 4 + 4, "{} templates", reg.len());
        assert!(reg.key_of(AppId::Terasort, "sort-partitions").is_some());
        assert!(reg.key_of(AppId::PageRank, "pr-contrib").is_some());
        assert!(reg.key_of(AppId::KMeans, "km-assign").is_none());
    }

    #[test]
    fn static_build_matches_instrumented_build() {
        // The static cold-start provider must be a drop-in replacement:
        // identical vocabulary, op index, and per-template features.
        let apps = AppId::all();
        let dynamic = TemplateRegistry::build(&apps);
        let statik = TemplateRegistry::build_static(&apps);
        assert_eq!(statik.len(), dynamic.len());
        assert_eq!(statik.vocab.len(), dynamic.vocab.len());
        assert_eq!(statik.op_onehot_width(), dynamic.op_onehot_width());
        for id in 0..dynamic.vocab.len() {
            assert_eq!(statik.vocab.token(id), dynamic.vocab.token(id), "vocab id {id}");
        }
        for i in 0..dynamic.len() {
            let (s, d) = (statik.get(TemplateKey(i)), dynamic.get(TemplateKey(i)));
            assert_eq!(s.app, d.app);
            assert_eq!(s.name, d.name);
            assert_eq!(s.token_ids, d.token_ids, "{}/{}", d.app, d.name);
            assert_eq!(s.dag_ops, d.dag_ops, "{}/{}", d.app, d.name);
            assert_eq!(s.a_hat.rows(), d.a_hat.rows());
            for r in 0..d.a_hat.rows() {
                assert_eq!(s.a_hat.row(r), d.a_hat.row(r), "{}/{} row {r}", d.app, d.name);
            }
        }
    }

    #[test]
    fn token_cap_is_respected() {
        let reg = TemplateRegistry::build(&[AppId::StronglyConnectedComponent]);
        for i in 0..reg.len() {
            assert!(reg.get(TemplateKey(i)).token_ids.len() <= TOKEN_CAP);
        }
    }

    #[test]
    fn unseen_app_tokens_hit_oov() {
        // Vocabulary from Terasort only; KMeans stage codes share operator
        // impls but the closures contain unseen tokens.
        let mut reg = TemplateRegistry::build(&[AppId::Terasort]);
        let km = instrument_app(AppId::KMeans);
        let key = reg.intern(AppId::KMeans, &km[1]); // km-assign
        assert!(reg.oov_fraction(key) > 0.0);
        // But shared RDD-impl tokens keep oov well below 100%.
        assert!(reg.oov_fraction(key) < 0.8, "{}", reg.oov_fraction(key));
    }

    #[test]
    fn node_onehots_are_one_hot_with_oov_column() {
        let mut reg = TemplateRegistry::build(&[AppId::Sort]);
        let w = reg.op_onehot_width();
        // SCC uses Pregel ops never seen in Sort.
        let scc = instrument_app(AppId::StronglyConnectedComponent);
        let fwd = scc.iter().find(|s| s.template == "scc-forward-reach").unwrap();
        let key = reg.intern(AppId::StronglyConnectedComponent, fwd);
        let m = reg.node_onehots(key);
        assert_eq!(m.cols(), w);
        // Every row sums to exactly 1, and some rows hit the oov column 0.
        let mut oov_rows = 0;
        for r in 0..m.rows() {
            let s: f32 = m.row(r).iter().sum();
            assert_eq!(s, 1.0);
            if m.get(r, 0) == 1.0 {
                oov_rows += 1;
            }
        }
        assert!(oov_rows > 0, "expected oov ops in SCC under Sort vocab");
        // The no-oov variant zeroes those rows instead.
        let m2 = reg.node_onehots_no_oov(key);
        let zero_rows = (0..m2.rows()).filter(|&r| m2.row(r).iter().all(|&v| v == 0.0)).count();
        assert_eq!(zero_rows, oov_rows);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut reg = TemplateRegistry::build(&[AppId::Sort]);
        let n = reg.len();
        let sort = instrument_app(AppId::Sort);
        let k1 = reg.intern(AppId::Sort, &sort[0]);
        assert_eq!(reg.len(), n);
        assert_eq!(Some(k1), reg.key_of(AppId::Sort, &sort[0].template));
    }

    fn dummy_instance(y: f64) -> StageInstance {
        StageInstance {
            app: AppId::Sort,
            template: TemplateKey(0),
            conf: ConfSpace::table_iv().default_conf(),
            data: AppId::Sort.dataset(SizeTier::Train(0)),
            env: ClusterSpec::cluster_a().env_features(),
            y,
            app_instance: 0,
        }
    }

    #[test]
    fn featnorm_roundtrips_targets() {
        let space = ConfSpace::table_iv();
        let insts: Vec<StageInstance> =
            [1.0, 5.0, 20.0, 100.0].iter().map(|&y| dummy_instance(y)).collect();
        let norm = FeatNorm::fit(&space, &insts);
        for y in [0.5, 3.0, 50.0, 700.0] {
            let z = norm.norm_y(y);
            assert!((norm.denorm_y(z) - y).abs() < 1e-6 * (1.0 + y));
        }
    }

    #[test]
    fn featnorm_standardizes_training_features() {
        let space = ConfSpace::table_iv();
        let mut insts = Vec::new();
        for (i, y) in [1.0, 2.0, 4.0, 8.0].iter().enumerate() {
            let mut inst = dummy_instance(*y);
            inst.data = AppId::Sort.dataset(SizeTier::Train(i as u8));
            insts.push(inst);
        }
        let norm = FeatNorm::fit(&space, &insts);
        // The datasize feature varies across instances -> mean ~0 across
        // the training set after normalization.
        let mut sum = 0.0;
        for inst in &insts {
            sum += norm.tabular(&space, inst)[0];
        }
        assert!(sum.abs() < 1e-9, "{sum}");
        assert_eq!(norm.tabular(&space, &insts[0]).len(), TABULAR_WIDTH);
    }
}

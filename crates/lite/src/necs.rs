//! NECS: Neural Estimator via Code and Scheduler representation
//! (paper Section III).
//!
//! Architecture, following Eq. 1–3:
//!
//! * token embeddings → multi-width **CNN** with global max pooling → ReLU
//!   projection `h_code` (Eq. 1),
//! * one-hot DAG nodes → two **GCN** layers over `Â` → column-wise max
//!   pooling `h_DAG` (Eq. 2),
//! * `concat(d, e, o, h_code, h_DAG)` → **tower MLP** → predicted stage
//!   time (Eq. 3), trained with MSE (Eq. 4) on log-scaled targets.
//!
//! Stage templates are encoded **once per minibatch** and shared by all
//! instances of that template via a gather — mathematically identical to
//! per-sample encoding (the gather's backward accumulates), but orders of
//! magnitude cheaper on stage-augmented data where thousands of instances
//! reuse a few dozen templates.

use crate::features::{FeatNorm, StageInstance, TemplateKey, TemplateRegistry, TABULAR_WIDTH};
use lite_nn::init::rng;
use lite_nn::layers::{Conv1dBank, Dense, GcnLayer, TowerMlp};
use lite_nn::optim::{clip_grad_norm, Adam};
use lite_nn::tape::{ParamId, Params, Tape, Var};
use lite_nn::tensor::Tensor;
use lite_obs::Tracer;
use lite_sparksim::conf::{ConfSpace, SparkConf};
use lite_workloads::data::DataSpec;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// NECS hyper-parameters. Defaults are scaled for single-core training in
/// seconds-to-minutes; the architecture matches the paper.
#[derive(Debug, Clone)]
pub struct NecsConfig {
    /// Token embedding size `D`.
    pub embed_dim: usize,
    /// CNN window widths.
    pub conv_widths: Vec<usize>,
    /// Kernels per window width (`I` in Eq. 1 is `widths × this`).
    pub kernels_per_width: usize,
    /// Width of `h_code` after the ReLU projection (Eq. 1).
    pub code_hidden: usize,
    /// GCN layer width (`h_DAG` dimension).
    pub gcn_hidden: usize,
    /// Tower-MLP hidden depth (`L`).
    pub mlp_depth: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Init/shuffle seed.
    pub seed: u64,
    /// Whether unseen DAG operations use the oov one-hot (paper's default;
    /// `false` reproduces the Cold-UNK ablation of Table XI).
    pub use_oov_node: bool,
}

impl Default for NecsConfig {
    fn default() -> Self {
        NecsConfig {
            embed_dim: 12,
            conv_widths: vec![3, 5],
            kernels_per_width: 16,
            code_hidden: 24,
            gcn_hidden: 16,
            mlp_depth: 3,
            epochs: 30,
            batch_size: 512,
            lr: 2e-3,
            seed: 42,
            use_oov_node: true,
        }
    }
}

/// The NECS model.
#[derive(Clone)]
pub struct Necs {
    /// Hyper-parameters.
    pub config: NecsConfig,
    /// Normalization statistics fitted on the training set.
    pub norm: FeatNorm,
    space: ConfSpace,
    params: Params,
    token_table: ParamId,
    conv: Conv1dBank,
    code_proj: Dense,
    gcn1: GcnLayer,
    gcn2: GcnLayer,
    mlp: TowerMlp,
    /// Training-loss trajectory (one entry per epoch) for diagnostics.
    pub loss_history: Vec<f32>,
}

impl Necs {
    /// Create an untrained model sized to a registry's vocabularies.
    pub fn new(
        registry: &TemplateRegistry,
        space: ConfSpace,
        norm: FeatNorm,
        config: NecsConfig,
    ) -> Necs {
        let mut r = rng(config.seed);
        let mut params = Params::new();
        let vocab_size = registry.vocab.len();
        let token_table = params
            .add("necs.embed", lite_nn::init::normal(vocab_size, config.embed_dim, 0.1, &mut r));
        let conv = Conv1dBank::new(
            &mut params,
            "necs.conv",
            config.embed_dim,
            &config.conv_widths,
            config.kernels_per_width,
            &mut r,
        );
        let code_proj = Dense::new(
            &mut params,
            "necs.codeproj",
            conv.output_width(),
            config.code_hidden,
            &mut r,
        );
        let onehot = registry.op_onehot_width();
        let gcn1 = GcnLayer::new(&mut params, "necs.gcn1", onehot, config.gcn_hidden, &mut r);
        let gcn2 =
            GcnLayer::new(&mut params, "necs.gcn2", config.gcn_hidden, config.gcn_hidden, &mut r);
        let mlp_input = TABULAR_WIDTH + config.code_hidden + config.gcn_hidden;
        let mlp = TowerMlp::new(&mut params, "necs.mlp", mlp_input, config.mlp_depth, 1, &mut r);
        Necs {
            config,
            norm,
            space,
            params,
            token_table,
            conv,
            code_proj,
            gcn1,
            gcn2,
            mlp,
            loss_history: Vec::new(),
        }
    }

    /// Convenience: fit normalization + train on a slice of instances.
    pub fn train(
        registry: &TemplateRegistry,
        space: &ConfSpace,
        instances: &[&StageInstance],
        config: NecsConfig,
    ) -> Necs {
        let owned: Vec<StageInstance> = instances.iter().map(|i| (*i).clone()).collect();
        let norm = FeatNorm::fit(space, &owned);
        let mut model = Necs::new(registry, space.clone(), norm, config);
        model.fit(registry, instances);
        model
    }

    /// Encode one template: `[1, code_hidden + gcn_hidden]` (Eq. 1 ‖ Eq. 2).
    fn encode_template(
        &self,
        tape: &mut Tape,
        registry: &TemplateRegistry,
        key: TemplateKey,
    ) -> Var {
        let entry = registry.get(key);
        // --- code branch (Eq. 1) ---
        let ids: &[usize] = if entry.token_ids.is_empty() { &[0] } else { &entry.token_ids };
        let emb = tape.embedding_gather(&self.params, self.token_table, ids); // [N, D]
        let q = self.conv.forward(tape, &self.params, emb); // [1, widths*K]
        let proj = self.code_proj.forward(tape, &self.params, q);
        let h_code = tape.relu(proj); // [1, code_hidden]
                                      // --- scheduler branch (Eq. 2) ---
        let onehots = if self.config.use_oov_node {
            registry.node_onehots(key)
        } else {
            registry.node_onehots_no_oov(key)
        };
        let a = tape.leaf(entry.a_hat.clone());
        let h0 = tape.leaf(onehots);
        let h1 = self.gcn1.forward(tape, &self.params, a, h0);
        let h2 = self.gcn2.forward(tape, &self.params, a, h1);
        let h_dag = tape.col_max(h2); // [1, gcn_hidden]
        tape.concat_cols(&[h_code, h_dag])
    }

    /// Forward a batch of `(template, normalized tabular)` pairs; returns
    /// `(prediction [B,1], mlp hidden concat [B,H])`.
    fn forward_batch(
        &self,
        tape: &mut Tape,
        registry: &TemplateRegistry,
        templates: &[TemplateKey],
        tabular: &Tensor,
    ) -> (Var, Var) {
        debug_assert_eq!(templates.len(), tabular.rows());
        // Unique templates, encoded once.
        let mut uniq: Vec<TemplateKey> = Vec::new();
        let mut pos: HashMap<TemplateKey, usize> = HashMap::new();
        let idx: Vec<usize> = templates
            .iter()
            .map(|&t| {
                *pos.entry(t).or_insert_with(|| {
                    uniq.push(t);
                    uniq.len() - 1
                })
            })
            .collect();
        let encoded: Vec<Var> =
            uniq.iter().map(|&t| self.encode_template(tape, registry, t)).collect();
        let table = tape.vstack(&encoded); // [T, H_t]
        let gathered = tape.gather_rows(table, &idx); // [B, H_t]
        let tab = tape.leaf(tabular.clone()); // [B, TAB]
        let x = tape.concat_cols(&[tab, gathered]);
        self.mlp.forward_with_hidden(tape, &self.params, x)
    }

    /// Assemble the normalized tabular matrix for instances.
    fn tabular_matrix(&self, instances: &[&StageInstance]) -> Tensor {
        let rows: Vec<Vec<f64>> =
            instances.iter().map(|inst| self.norm.tabular(&self.space, inst)).collect();
        Tensor::from_rows_f64(TABULAR_WIDTH, &rows)
    }

    /// Train with Adam on MSE over normalized log targets (Eq. 4).
    pub fn fit(&mut self, registry: &TemplateRegistry, instances: &[&StageInstance]) {
        self.fit_with(registry, instances, &Tracer::disabled());
    }

    /// [`fit`](Necs::fit) with observability: one `necs.epoch` span per
    /// epoch carrying the mean minibatch loss and the mean pre-clip
    /// gradient norm. A disabled tracer makes this identical to `fit`.
    pub fn fit_with(
        &mut self,
        registry: &TemplateRegistry,
        instances: &[&StageInstance],
        tracer: &Tracer,
    ) {
        assert!(!instances.is_empty(), "cannot fit on an empty training set");
        let mut fit_span = tracer.span("necs.fit");
        if fit_span.is_recording() {
            fit_span.attr_u64("instances", instances.len() as u64);
            fit_span.attr_u64("epochs", self.config.epochs as u64);
        }
        let mut order: Vec<usize> = (0..instances.len()).collect();
        let mut shuffle_rng = rand::rngs::StdRng::seed_from_u64(self.config.seed ^ 0x5f);
        let mut opt = Adam::new(self.config.lr);
        for epoch in 0..self.config.epochs {
            let mut epoch_span = tracer.span("necs.epoch");
            order.shuffle(&mut shuffle_rng);
            let mut epoch_loss = 0.0f32;
            let mut grad_norm_sum = 0.0f32;
            let mut batches = 0;
            for chunk in order.chunks(self.config.batch_size) {
                let batch: Vec<&StageInstance> = chunk.iter().map(|&i| instances[i]).collect();
                let templates: Vec<TemplateKey> = batch.iter().map(|i| i.template).collect();
                let tab = self.tabular_matrix(&batch);
                let mut target = Tensor::zeros(batch.len(), 1);
                for (r, inst) in batch.iter().enumerate() {
                    target.set(r, 0, self.norm.norm_y(inst.y) as f32);
                }
                let mut tape = Tape::new();
                let (pred, _) = self.forward_batch(&mut tape, registry, &templates, &tab);
                let loss = tape.mse_loss(pred, &target);
                epoch_loss += tape.value(loss).get(0, 0);
                batches += 1;
                tape.backward(loss, &mut self.params);
                grad_norm_sum += clip_grad_norm(&mut self.params, 5.0);
                opt.step(&mut self.params);
            }
            let mean_loss = epoch_loss / batches.max(1) as f32;
            self.loss_history.push(mean_loss);
            if epoch_span.is_recording() {
                epoch_span.attr_u64("epoch", epoch as u64);
                epoch_span.attr_u64("batches", batches as u64);
                epoch_span.attr_f64("loss", f64::from(mean_loss));
                epoch_span.attr_f64("grad_norm", f64::from(grad_norm_sum / batches.max(1) as f32));
            }
        }
    }

    /// Predict stage execution times (seconds) for a batch of
    /// `(template, conf, data, env)` tuples.
    pub fn predict_stages(
        &self,
        registry: &TemplateRegistry,
        items: &[(TemplateKey, &SparkConf, &DataSpec, &[f64; 6])],
    ) -> Vec<f64> {
        if items.is_empty() {
            return Vec::new();
        }
        let rows: Vec<Vec<f64>> = items
            .iter()
            .map(|(_, conf, data, env)| self.norm.tabular_parts(&self.space, conf, data, env))
            .collect();
        let tab = Tensor::from_rows_f64(TABULAR_WIDTH, &rows);
        let templates: Vec<TemplateKey> = items.iter().map(|it| it.0).collect();
        let mut tape = Tape::new();
        let (pred, _) = self.forward_batch(&mut tape, registry, &templates, &tab);
        (0..items.len())
            .map(|r| self.norm.denorm_y(tape.value(pred).get(r, 0) as f64).max(0.0))
            .collect()
    }

    /// Predict the total execution time of an application instance under a
    /// configuration by summing per-stage predictions (paper Eq. 5's inner
    /// sum). Stage multiplicity (iterations) is respected by the context.
    pub fn predict_app(
        &self,
        registry: &TemplateRegistry,
        ctx: &crate::experiment::PredictionContext,
        conf: &SparkConf,
    ) -> f64 {
        self.predict_app_batch(registry, ctx, std::slice::from_ref(conf))[0]
    }

    /// Predict application execution times for *many* candidate
    /// configurations of one instance in a single batched forward pass —
    /// the serving-path variant of [`Necs::predict_app`]. All
    /// `(unique template × candidate)` rows go through one tape, so the
    /// template encodings (the expensive CNN/GCN branches) are computed
    /// once and shared across every candidate via the tape's gather,
    /// instead of once per candidate.
    ///
    /// Row-wise forward math is independent per row and the per-candidate
    /// summation order matches `predict_app` (templates sorted by key), so
    /// both paths agree bit-for-bit (guarded by a 1e-9 equivalence test).
    pub fn predict_app_batch(
        &self,
        registry: &TemplateRegistry,
        ctx: &crate::experiment::PredictionContext,
        confs: &[SparkConf],
    ) -> Vec<f64> {
        // Unique templates with multiplicity: predict each once per
        // candidate, weight by its instance count.
        let mut counts: HashMap<TemplateKey, usize> = HashMap::new();
        for &t in &ctx.stages {
            *counts.entry(t).or_insert(0) += 1;
        }
        let mut uniq: Vec<TemplateKey> = counts.keys().copied().collect();
        uniq.sort_by_key(|t| t.0); // deterministic summation order
        if uniq.is_empty() {
            return vec![0.0; confs.len()];
        }
        let items: Vec<(TemplateKey, &SparkConf, &DataSpec, &[f64; 6])> = confs
            .iter()
            .flat_map(|conf| uniq.iter().map(move |&t| (t, conf, &ctx.data, &ctx.env)))
            .collect();
        let preds = self.predict_stages(registry, &items);
        preds
            .chunks(uniq.len())
            .map(|per_stage| {
                uniq.iter().zip(per_stage.iter()).map(|(t, p)| p * counts[t] as f64).sum()
            })
            .collect()
    }

    /// Mutable access to the parameter store (used by Adaptive Model
    /// Update to extend the store with a discriminator and fine-tune).
    pub fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    /// Shared access to the parameter store.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Forward a batch exposing the MLP hidden concatenation (the feature
    /// embedding `h_i` that Adaptive Model Update discriminates on).
    pub fn forward_with_hidden(
        &self,
        tape: &mut Tape,
        registry: &TemplateRegistry,
        instances: &[&StageInstance],
    ) -> (Var, Var) {
        let templates: Vec<TemplateKey> = instances.iter().map(|i| i.template).collect();
        let tab = self.tabular_matrix(instances);
        self.forward_batch(tape, registry, &templates, &tab)
    }

    /// Width of the MLP hidden concatenation.
    pub fn hidden_width(&self) -> usize {
        self.mlp.hidden_width()
    }

    /// Normalized target for an instance (AMU needs consistent targets).
    pub fn norm_target(&self, inst: &StageInstance) -> f32 {
        self.norm.norm_y(inst.y) as f32
    }

    /// The knob space this model normalizes against.
    pub fn space(&self) -> &ConfSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DatasetBuilder, PredictionContext};
    use lite_sparksim::cluster::ClusterSpec;
    use lite_workloads::apps::AppId;
    use lite_workloads::data::SizeTier;

    fn small_dataset() -> crate::experiment::Dataset {
        DatasetBuilder {
            apps: vec![AppId::Sort, AppId::PageRank, AppId::KMeans],
            clusters: vec![ClusterSpec::cluster_a()],
            tiers: SizeTier::train_tiers().to_vec(),
            confs_per_cell: 3,
            seed: 5,
        }
        .build()
    }

    fn quick_config() -> NecsConfig {
        NecsConfig { epochs: 30, batch_size: 128, ..Default::default() }
    }

    #[test]
    fn training_reduces_loss() {
        let ds = small_dataset();
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let model = Necs::train(&ds.registry, &ds.space, &refs, quick_config());
        let first = model.loss_history.first().copied().unwrap();
        let last = model.loss_history.last().copied().unwrap();
        assert!(last < 0.7 * first, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn predictions_are_positive_and_scale_with_data() {
        let ds = small_dataset();
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let model = Necs::train(&ds.registry, &ds.space, &refs, quick_config());
        let cluster = &ds.clusters[0];
        let small = AppId::Sort.dataset(SizeTier::Train(0));
        // Test tier (400x) rather than Valid (24x): the scaling direction
        // must hold even for a lightly-trained test model, so use a
        // contrast far above its noise floor.
        let big = AppId::Sort.dataset(SizeTier::Test);
        let conf = ds.space.default_conf();
        let ctx_s = PredictionContext::warm(&ds.registry, AppId::Sort, &small, cluster).unwrap();
        let ctx_b = PredictionContext::warm(&ds.registry, AppId::Sort, &big, cluster).unwrap();
        let p_small = model.predict_app(&ds.registry, &ctx_s, &conf);
        let p_big = model.predict_app(&ds.registry, &ctx_b, &conf);
        assert!(p_small > 0.0);
        assert!(p_big > p_small, "no data scaling: {p_small} vs {p_big}");
    }

    #[test]
    fn fit_then_predict_correlates_with_truth_on_train() {
        let ds = small_dataset();
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let model = Necs::train(&ds.registry, &ds.space, &refs, quick_config());
        let items: Vec<(TemplateKey, &SparkConf, &DataSpec, &[f64; 6])> =
            refs.iter().take(200).map(|i| (i.template, &i.conf, &i.data, &i.env)).collect();
        let preds = model.predict_stages(&ds.registry, &items);
        let truths: Vec<f64> = refs.iter().take(200).map(|i| i.y).collect();
        let rho = lite_metrics::ranking::spearman(&preds, &truths);
        assert!(rho > 0.7, "train-set rank correlation too low: {rho}");
    }

    #[test]
    fn predict_app_sums_stage_multiplicity() {
        let ds = small_dataset();
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let model =
            Necs::train(&ds.registry, &ds.space, &refs, NecsConfig { epochs: 1, ..quick_config() });
        let cluster = &ds.clusters[0];
        let data = AppId::PageRank.dataset(SizeTier::Train(0));
        let ctx = PredictionContext::warm(&ds.registry, AppId::PageRank, &data, cluster).unwrap();
        let conf = ds.space.default_conf();
        let total = model.predict_app(&ds.registry, &ctx, &conf);
        // Manual re-aggregation.
        let items: Vec<(TemplateKey, &SparkConf, &DataSpec, &[f64; 6])> =
            ctx.stages.iter().map(|&t| (t, &conf, &ctx.data, &ctx.env)).collect();
        let manual: f64 = model.predict_stages(&ds.registry, &items).iter().sum();
        assert!((total - manual).abs() < 1e-6 * manual.max(1.0), "{total} vs {manual}");
    }

    #[test]
    fn fit_with_emits_epoch_spans_with_loss_and_grad_norm() {
        let ds = small_dataset();
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let cfg = NecsConfig { epochs: 3, ..quick_config() };
        let owned: Vec<StageInstance> = refs.iter().map(|i| (*i).clone()).collect();
        let norm = FeatNorm::fit(&ds.space, &owned);
        let mut model = Necs::new(&ds.registry, ds.space.clone(), norm, cfg);
        let tracer = Tracer::new();
        model.fit_with(&ds.registry, &refs, &tracer);
        let spans = tracer.finished();
        let fit = spans.iter().find(|s| s.name == "necs.fit").expect("fit span");
        let epochs: Vec<_> = spans.iter().filter(|s| s.name == "necs.epoch").collect();
        assert_eq!(epochs.len(), 3);
        assert!(epochs.iter().all(|e| e.parent == Some(fit.id)));
        for (i, e) in epochs.iter().enumerate() {
            match e.attr("loss") {
                Some(lite_obs::AttrValue::F64(l)) => {
                    assert!((l - f64::from(model.loss_history[i])).abs() < 1e-6);
                }
                other => panic!("epoch {i} missing loss attr: {other:?}"),
            }
            match e.attr("grad_norm") {
                Some(lite_obs::AttrValue::F64(g)) => assert!(*g > 0.0 && g.is_finite()),
                other => panic!("epoch {i} missing grad_norm attr: {other:?}"),
            }
        }
    }

    #[test]
    fn predict_app_batch_matches_per_candidate_predictions() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let ds = small_dataset();
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let model =
            Necs::train(&ds.registry, &ds.space, &refs, NecsConfig { epochs: 2, ..quick_config() });
        let cluster = &ds.clusters[0];
        let data = AppId::PageRank.dataset(SizeTier::Valid);
        let ctx = PredictionContext::warm(&ds.registry, AppId::PageRank, &data, cluster).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let confs: Vec<SparkConf> = (0..30).map(|_| ds.space.sample(&mut rng)).collect();
        let batched = model.predict_app_batch(&ds.registry, &ctx, &confs);
        assert_eq!(batched.len(), confs.len());
        for (conf, b) in confs.iter().zip(batched.iter()) {
            let single = model.predict_app(&ds.registry, &ctx, conf);
            // The batched path must reproduce Eq. 5 scoring exactly; any
            // drift here means the server ranks differently than the paper.
            assert!(
                (single - b).abs() <= 1e-9 * single.abs().max(1.0),
                "batched {b} != per-candidate {single}"
            );
        }
        assert!(batched.iter().all(|p| p.is_finite() && *p >= 0.0));
        // Empty candidate list short-circuits.
        assert!(model.predict_app_batch(&ds.registry, &ctx, &[]).is_empty());
    }

    #[test]
    fn deterministic_training() {
        let ds = small_dataset();
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let cfg = NecsConfig { epochs: 2, ..quick_config() };
        let a = Necs::train(&ds.registry, &ds.space, &refs, cfg.clone());
        let b = Necs::train(&ds.registry, &ds.space, &refs, cfg);
        assert_eq!(a.loss_history, b.loss_history);
    }
}

//! Adaptive Candidate Generation (paper Section IV-A).
//!
//! For each knob `d`, a Random Forest Regression model maps the application
//! and input datasize (plus the environment, so one model serves all
//! clusters) to a promising "mean value" (Eq. 6). The search region is the
//! box `[RFR^d − σ^d, RFR^d + σ^d]` (Eq. 7), where `σ^d` is the standard
//! deviation of knob `d` over the top-40 % best-performing training
//! instances. Candidates are sampled uniformly inside the box.

use crate::experiment::Dataset;
use lite_forest::rf::{ForestConfig, RandomForestRegressor};
use lite_sparksim::conf::{ConfSpace, SparkConf, ALL_KNOBS, NUM_KNOBS};
use lite_workloads::apps::AppId;
use lite_workloads::data::DataSpec;
use rand::Rng;

/// Fraction of best training runs used for the mean-value targets and σ.
const TOP_FRACTION: f64 = 0.4;

/// Fitted candidate generator. `Clone` so a serving snapshot can own an
/// immutable copy alongside the NECS model.
#[derive(Clone)]
pub struct AdaptiveCandidateGenerator {
    space: ConfSpace,
    /// One RFR per knob, over `[app one-hot (15) | ln(bytes) | env (6)]`.
    models: Vec<RandomForestRegressor>,
    /// Per-knob span σ^d.
    sigmas: [f64; NUM_KNOBS],
}

fn rfr_features(app: AppId, data: &DataSpec, env: &[f64; 6]) -> Vec<f64> {
    let mut f = vec![0.0; 15];
    f[app.index()] = 1.0;
    f.push((1.0 + data.bytes as f64).ln());
    f.extend_from_slice(env);
    f
}

impl AdaptiveCandidateGenerator {
    /// The configuration space candidates are drawn from (the degradation
    /// path needs its template default when scoring is unavailable).
    pub fn space(&self) -> &ConfSpace {
        &self.space
    }

    /// Fit from a training dataset: within each (app, cluster, tier) cell,
    /// the `TOP_FRACTION` fastest runs supply (features → knob value)
    /// training pairs; σ^d is the global std of knob `d` over those top
    /// runs.
    pub fn fit(ds: &Dataset, seed: u64) -> AdaptiveCandidateGenerator {
        // Group runs by cell.
        use std::collections::HashMap;
        let mut cells: HashMap<(usize, usize, String), Vec<usize>> = HashMap::new();
        for (i, run) in ds.runs.iter().enumerate() {
            let key = (run.app.index(), run.cluster, format!("{:?}", run.tier));
            cells.entry(key).or_default().push(i);
        }
        let mut top_runs: Vec<usize> = Vec::new();
        for (_, mut idx) in cells {
            idx.sort_by(|&a, &b| ds.run_time(&ds.runs[a]).total_cmp(&ds.run_time(&ds.runs[b])));
            let keep = ((idx.len() as f64 * TOP_FRACTION).ceil() as usize).max(1);
            top_runs.extend(idx.into_iter().take(keep));
        }
        top_runs.sort_unstable(); // deterministic order

        let x: Vec<Vec<f64>> = top_runs
            .iter()
            .map(|&i| {
                let run = &ds.runs[i];
                rfr_features(run.app, &run.data, &ds.clusters[run.cluster].env_features())
            })
            .collect();

        let mut models = Vec::with_capacity(NUM_KNOBS);
        let mut sigmas = [0.0f64; NUM_KNOBS];
        for (d, knob) in ALL_KNOBS.iter().enumerate() {
            let y: Vec<f64> = top_runs.iter().map(|&i| ds.runs[i].conf.get(*knob)).collect();
            let mean = y.iter().sum::<f64>() / y.len() as f64;
            sigmas[d] =
                (y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64).sqrt();
            let cfg = ForestConfig { num_trees: 32, ..Default::default() };
            models.push(RandomForestRegressor::fit(&x, &y, &cfg, seed ^ (d as u64) << 8));
        }
        AdaptiveCandidateGenerator { space: ds.space.clone(), models, sigmas }
    }

    /// The plain-RFR point prediction (the Table VIIIa baseline): one knob
    /// vector straight from the per-knob forests, snapped into domains.
    pub fn point_prediction(&self, app: AppId, data: &DataSpec, env: &[f64; 6]) -> SparkConf {
        let f = rfr_features(app, data, env);
        let mut values = [0.0f64; NUM_KNOBS];
        for (d, m) in self.models.iter().enumerate() {
            values[d] = m.predict(&f);
        }
        SparkConf::from_values(&self.space, values)
    }

    /// The search region `S_w`: per-knob `[center − σ, center + σ]` in raw
    /// knob units (clamping happens at sampling time).
    pub fn region(
        &self,
        app: AppId,
        data: &DataSpec,
        env: &[f64; 6],
    ) -> ([f64; NUM_KNOBS], [f64; NUM_KNOBS]) {
        let f = rfr_features(app, data, env);
        let mut lo = [0.0f64; NUM_KNOBS];
        let mut hi = [0.0f64; NUM_KNOBS];
        for (d, m) in self.models.iter().enumerate() {
            let center = m.predict(&f);
            lo[d] = center - self.sigmas[d];
            hi[d] = center + self.sigmas[d];
        }
        (lo, hi)
    }

    /// Sample `n` candidate configurations inside the region (paper Step 2).
    pub fn candidates<R: Rng + ?Sized>(
        &self,
        app: AppId,
        data: &DataSpec,
        env: &[f64; 6],
        n: usize,
        rng: &mut R,
    ) -> Vec<SparkConf> {
        let (lo, hi) = self.region(app, data, env);
        (0..n).map(|_| self.space.sample_in_box(&lo, &hi, rng)).collect()
    }

    /// [`candidates`](Self::candidates) with a fresh seed-derived RNG, so
    /// a candidate set is a pure function of `(request, seed)` — callers
    /// that must replay a request deterministically (the serving path, the
    /// tuner) share this one construction.
    pub fn candidates_seeded(
        &self,
        app: AppId,
        data: &DataSpec,
        env: &[f64; 6],
        n: usize,
        seed: u64,
    ) -> Vec<SparkConf> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.candidates(app, data, env, n, &mut rng)
    }

    /// Per-knob spans (diagnostics / Table VIIIb).
    pub fn sigmas(&self) -> &[f64; NUM_KNOBS] {
        &self.sigmas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DatasetBuilder;
    use lite_sparksim::cluster::ClusterSpec;
    use lite_sparksim::conf::Knob;
    use lite_workloads::data::SizeTier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        DatasetBuilder {
            apps: vec![AppId::Sort, AppId::KMeans],
            clusters: vec![ClusterSpec::cluster_a(), ClusterSpec::cluster_c()],
            tiers: vec![SizeTier::Train(0), SizeTier::Train(3)],
            confs_per_cell: 8,
            seed: 3,
        }
        .build()
    }

    #[test]
    fn candidates_are_valid_and_inside_region() {
        let ds = dataset();
        let acg = AdaptiveCandidateGenerator::fit(&ds, 7);
        let env = ClusterSpec::cluster_c().env_features();
        let data = AppId::KMeans.dataset(SizeTier::Test);
        let (lo, hi) = acg.region(AppId::KMeans, &data, &env);
        let mut rng = StdRng::seed_from_u64(1);
        for c in acg.candidates(AppId::KMeans, &data, &env, 50, &mut rng) {
            assert!(ds.space.is_valid(&c));
            for (d, knob) in ALL_KNOBS.iter().enumerate() {
                let v = c.get(*knob);
                let dom = ds.space.domain(*knob);
                // Within the (domain-clamped) box.
                let lo_c = dom.clamp(lo[d].min(hi[d]));
                let hi_c = dom.clamp(hi[d].max(lo[d]));
                assert!(
                    v >= lo_c - 1e-9 && v <= hi_c + 1e-9,
                    "{knob}: {v} outside [{lo_c},{hi_c}]"
                );
            }
        }
    }

    #[test]
    fn region_shrinks_the_search_space() {
        let ds = dataset();
        let acg = AdaptiveCandidateGenerator::fit(&ds, 7);
        let env = ClusterSpec::cluster_c().env_features();
        let data = AppId::Sort.dataset(SizeTier::Test);
        let (lo, hi) = acg.region(AppId::Sort, &data, &env);
        // The parallelism knob's domain spans 8..512; the ACG box must be
        // strictly narrower than the full domain.
        let d = Knob::DefaultParallelism.index();
        assert!(hi[d] - lo[d] < (512.0 - 8.0) * 0.9, "span {} too wide", hi[d] - lo[d]);
    }

    #[test]
    fn point_prediction_is_a_valid_conf() {
        let ds = dataset();
        let acg = AdaptiveCandidateGenerator::fit(&ds, 7);
        let env = ClusterSpec::cluster_a().env_features();
        let data = AppId::Sort.dataset(SizeTier::Valid);
        let conf = acg.point_prediction(AppId::Sort, &data, &env);
        assert!(ds.space.is_valid(&conf));
    }

    #[test]
    fn fit_is_deterministic() {
        let ds = dataset();
        let a = AdaptiveCandidateGenerator::fit(&ds, 9);
        let b = AdaptiveCandidateGenerator::fit(&ds, 9);
        let env = ClusterSpec::cluster_a().env_features();
        let data = AppId::KMeans.dataset(SizeTier::Valid);
        assert_eq!(
            a.point_prediction(AppId::KMeans, &data, &env),
            b.point_prediction(AppId::KMeans, &data, &env)
        );
        assert_eq!(a.sigmas(), b.sigmas());
    }
}

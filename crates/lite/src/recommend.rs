//! The LITE online recommendation loop (paper Section IV, Steps 1–4).
//!
//! Given a trained [`Necs`] and a fitted [`AdaptiveCandidateGenerator`],
//! tuning an application is: collect its features (instrumenting first for
//! cold-start apps), sample candidates in the ACG region, rank them by the
//! aggregated per-stage NECS prediction (Eq. 5), and return the argmin.
//! Executed recommendations feed back as target-domain instances; once a
//! batch accumulates, [`LiteTuner::update`] fine-tunes NECS via Adaptive
//! Model Update.

use crate::acg::AdaptiveCandidateGenerator;
use crate::amu::{adaptive_model_update, AmuConfig, AmuEpoch};
use crate::experiment::{extract_stage_instances, Dataset, PredictionContext};
use crate::features::{StageInstance, TemplateRegistry};
use crate::necs::{Necs, NecsConfig};
use lite_obs::Tracer;
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::SparkConf;
use lite_sparksim::result::RunResult;
use lite_workloads::apps::AppId;
use lite_workloads::data::DataSpec;

/// A ranked candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCandidate {
    /// The configuration.
    pub conf: SparkConf,
    /// NECS-predicted total execution time in seconds.
    pub predicted_s: f64,
}

/// Score candidate configurations for one prediction context: preflight
/// failures rank behind everything at `EXECUTION_CAP_S × 10`, survivors
/// are scored in **one** batched NECS pass ([`Necs::predict_app_batch`]).
/// Returns one prediction per input candidate, in input order. Shared by
/// [`LiteTuner`] and the serving path (which interleaves a cache, so it
/// needs scoring separate from sampling and sorting).
pub fn score_candidates(
    model: &Necs,
    registry: &TemplateRegistry,
    ctx: &PredictionContext,
    cluster: &ClusterSpec,
    confs: &[SparkConf],
    tracer: &Tracer,
) -> Vec<f64> {
    // Configurations failing the engine's static pre-flight (unsatisfiable
    // allocation, partitions that cannot fit a task's heap share) never
    // even start on a real cluster; rank them behind everything.
    let preflight_ok: Vec<bool> = confs
        .iter()
        .map(|conf| lite_sparksim::exec::preflight(cluster, conf, ctx.data.bytes).is_ok())
        .collect();
    let survivors: Vec<SparkConf> = confs
        .iter()
        .zip(preflight_ok.iter())
        .filter(|(_, &ok)| ok)
        .map(|(conf, _)| conf.clone())
        .collect();
    let mut batched = model.predict_app_batch(registry, ctx, &survivors).into_iter();
    preflight_ok
        .iter()
        .enumerate()
        .map(|(i, &ok)| {
            let predicted_s = if ok {
                batched.next().expect("one prediction per preflight survivor")
            } else {
                lite_metrics::ranking::EXECUTION_CAP_S * 10.0
            };
            let mut cand_span = tracer.span("lite.candidate");
            if cand_span.is_recording() {
                cand_span.attr_u64("candidate", i as u64);
                cand_span.attr_bool("preflight_ok", ok);
                cand_span.attr_f64("predicted_s", predicted_s);
            }
            predicted_s
        })
        .collect()
}

/// The assembled LITE system.
pub struct LiteTuner {
    /// The performance estimator.
    pub model: Necs,
    /// The candidate generator.
    pub acg: AdaptiveCandidateGenerator,
    /// Template registry (grows when cold-start apps are instrumented).
    pub registry: TemplateRegistry,
    /// Candidates sampled per recommendation (paper: "a small number").
    pub num_candidates: usize,
    /// Feedback batch size that triggers an adaptive update.
    pub update_batch: usize,
    /// Span tracer for recommendation loops (disabled by default; set an
    /// enabled tracer to record `lite.recommend`/`lite.candidate` spans).
    pub tracer: Tracer,
    feedback: Vec<StageInstance>,
    feedback_runs: usize,
}

impl LiteTuner {
    /// Offline phase: train NECS on the dataset and fit ACG.
    pub fn from_dataset(ds: &Dataset, necs_config: NecsConfig, seed: u64) -> LiteTuner {
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let model = Necs::train(&ds.registry, &ds.space, &refs, necs_config);
        let acg = AdaptiveCandidateGenerator::fit(ds, seed);
        LiteTuner {
            model,
            acg,
            registry: ds.registry.clone(),
            num_candidates: 30,
            update_batch: 50,
            tracer: Tracer::disabled(),
            feedback: Vec::new(),
            feedback_runs: 0,
        }
    }

    /// Steps 1–3 for a warm-start application: returns the ranked
    /// candidate list, best first. `None` if the application was never
    /// seen (use [`LiteTuner::recommend_cold`]).
    pub fn recommend(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        seed: u64,
    ) -> Option<Vec<RankedCandidate>> {
        let ctx = PredictionContext::warm(&self.registry, app, data, cluster)?;
        Some(self.rank_candidates(&ctx, cluster, seed))
    }

    /// Steps 1–3 for a cold-start application: instruments it on the
    /// smallest dataset first (paper Section IV Step 1), then recommends.
    pub fn recommend_cold(
        &mut self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        seed: u64,
    ) -> Vec<RankedCandidate> {
        let ctx = PredictionContext::cold(&mut self.registry, app, data, cluster);
        self.rank_candidates(&ctx, cluster, seed)
    }

    fn rank_candidates(
        &self,
        ctx: &PredictionContext,
        cluster: &ClusterSpec,
        seed: u64,
    ) -> Vec<RankedCandidate> {
        let mut rec_span = self.tracer.span("lite.recommend");
        if rec_span.is_recording() {
            rec_span.attr_str("app", &ctx.app.to_string());
            rec_span.attr_u64("candidates", self.num_candidates as u64);
            rec_span.attr_u64("seed", seed);
        }
        let confs =
            self.acg.candidates_seeded(ctx.app, &ctx.data, &ctx.env, self.num_candidates, seed);
        let scores =
            score_candidates(&self.model, &self.registry, ctx, cluster, &confs, &self.tracer);
        let mut ranked: Vec<RankedCandidate> = confs
            .into_iter()
            .zip(scores)
            .map(|(conf, predicted_s)| RankedCandidate { conf, predicted_s })
            .collect();
        // total_cmp, not partial_cmp: a non-finite prediction must degrade
        // the ranking (NaN sorts last), never panic a serving thread.
        ranked.sort_by(|a, b| a.predicted_s.total_cmp(&b.predicted_s));
        if rec_span.is_recording() {
            if let Some(best) = ranked.first() {
                rec_span.attr_f64("best_predicted_s", best.predicted_s);
            }
        }
        ranked
    }

    /// Step 4a: record executed feedback (the user ran the recommended
    /// configuration; we collect its stage-level observations as target-
    /// domain instances).
    pub fn observe(
        &mut self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        conf: &SparkConf,
        result: &RunResult,
    ) {
        let run_id = usize::MAX - self.feedback_runs; // disjoint from DS run ids
        self.feedback_runs += 1;
        extract_stage_instances(
            &self.registry,
            app,
            conf,
            data,
            cluster,
            result,
            run_id,
            &mut self.feedback,
        );
    }

    /// Number of feedback instances collected so far.
    pub fn feedback_len(&self) -> usize {
        self.feedback.len()
    }

    /// Whether enough feedback accumulated to trigger an update.
    pub fn update_due(&self) -> bool {
        self.feedback.len() >= self.update_batch
    }

    /// Step 4b: Adaptive Model Update against the source dataset. Clears
    /// the feedback buffer on success.
    pub fn update(&mut self, source: &Dataset, config: &AmuConfig) -> Vec<AmuEpoch> {
        let src: Vec<&StageInstance> = source.instances.iter().collect();
        let tgt: Vec<&StageInstance> = self.feedback.iter().collect();
        let history = adaptive_model_update(&mut self.model, &self.registry, &src, &tgt, config);
        self.feedback.clear();
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DatasetBuilder;
    use lite_sparksim::exec::simulate;
    use lite_workloads::apps::build_job;
    use lite_workloads::data::SizeTier;

    fn tuner() -> (Dataset, LiteTuner) {
        let ds = DatasetBuilder {
            apps: vec![AppId::Sort, AppId::PageRank, AppId::KMeans],
            clusters: vec![ClusterSpec::cluster_a(), ClusterSpec::cluster_c()],
            tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
            confs_per_cell: 4,
            seed: 29,
        }
        .build();
        let tuner = LiteTuner::from_dataset(
            &ds,
            NecsConfig { epochs: 5, batch_size: 512, ..Default::default() },
            29,
        );
        (ds, tuner)
    }

    #[test]
    fn warm_recommendation_is_ranked_and_valid() {
        let (ds, tuner) = tuner();
        let data = AppId::KMeans.dataset(SizeTier::Valid);
        let ranked =
            tuner.recommend(AppId::KMeans, &data, &ds.clusters[1], 1).expect("KMeans is warm");
        assert_eq!(ranked.len(), tuner.num_candidates);
        for w in ranked.windows(2) {
            assert!(w[0].predicted_s <= w[1].predicted_s);
        }
        for c in &ranked {
            assert!(ds.space.is_valid(&c.conf));
        }
    }

    #[test]
    fn recommended_conf_beats_default_on_large_data() {
        let (ds, tuner) = tuner();
        let cluster = &ds.clusters[1]; // cluster C
        let data = AppId::KMeans.dataset(SizeTier::Test);
        let best = tuner.recommend(AppId::KMeans, &data, cluster, 2).expect("warm")[0].conf.clone();
        let plan = build_job(AppId::KMeans, &data);
        let t_best = simulate(cluster, &best, &plan, 77).capped_time(7200.0);
        let t_default = simulate(cluster, &ds.space.default_conf(), &plan, 77).capped_time(7200.0);
        assert!(t_best < t_default, "LITE did not beat default: {t_best} vs {t_default}");
    }

    #[test]
    fn recommendation_emits_candidate_spans() {
        let (ds, mut tuner) = tuner();
        tuner.tracer = Tracer::new();
        let data = AppId::KMeans.dataset(SizeTier::Valid);
        let ranked = tuner.recommend(AppId::KMeans, &data, &ds.clusters[0], 1).expect("warm");
        let spans = tuner.tracer.finished();
        let rec = spans.iter().find(|s| s.name == "lite.recommend").expect("recommend span");
        let cands: Vec<_> = spans.iter().filter(|s| s.name == "lite.candidate").collect();
        assert_eq!(cands.len(), tuner.num_candidates);
        assert!(cands.iter().all(|c| c.parent == Some(rec.id)));
        // The recorded best matches the returned ranking.
        match rec.attr("best_predicted_s") {
            Some(lite_obs::AttrValue::F64(b)) => assert_eq!(*b, ranked[0].predicted_s),
            other => panic!("missing best_predicted_s: {other:?}"),
        }
    }

    #[test]
    fn cold_start_recommendation_works_for_unseen_app() {
        let (ds, mut tuner) = tuner();
        // Terasort was NOT in the training apps.
        let data = AppId::Terasort.dataset(SizeTier::Valid);
        assert!(tuner.recommend(AppId::Terasort, &data, &ds.clusters[0], 3).is_none());
        let ranked = tuner.recommend_cold(AppId::Terasort, &data, &ds.clusters[0], 3);
        assert_eq!(ranked.len(), tuner.num_candidates);
        assert!(ranked[0].predicted_s.is_finite());
    }

    #[test]
    fn feedback_loop_triggers_update() {
        let (ds, mut tuner) = tuner();
        tuner.update_batch = 30;
        let cluster = ds.clusters[1].clone();
        let data = AppId::PageRank.dataset(SizeTier::Valid);
        let mut k = 0u64;
        while !tuner.update_due() {
            let rec = tuner.recommend(AppId::PageRank, &data, &cluster, k).unwrap();
            let result =
                simulate(&cluster, &rec[0].conf, &build_job(AppId::PageRank, &data), 500 + k);
            tuner.observe(AppId::PageRank, &data, &cluster, &rec[0].conf, &result);
            k += 1;
            assert!(k < 50, "feedback never accumulated");
        }
        let hist = tuner.update(&ds, &AmuConfig { epochs: 2, ..Default::default() });
        assert_eq!(hist.len(), 2);
        assert_eq!(tuner.feedback_len(), 0);
    }
}

//! The unified tuner interface.
//!
//! Every tuning method in this workspace — LITE itself, the
//! Bayesian-optimization and DDPG competitors, the random/default
//! baselines — historically exposed a bespoke call shape, which forced
//! `serve` and `bench` to special-case each backend. [`Tuner`] is the one
//! contract they all speak now:
//!
//! * [`Tuner::recommend`] — map a [`TuneRequest`] (application, data,
//!   cluster, candidate count, seed) to a [`TuneResult`] (ranked
//!   configurations, best first). Takes `&self` so a service can serve
//!   many recommendations concurrently; stateful tuners wrap their
//!   mutable internals in a lock.
//! * [`Tuner::observe`] — feed back one executed run ([`Feedback`]) so
//!   online tuners learn from what actually happened.
//!
//! The trait is intentionally narrow: model retraining policy (when LITE
//! runs Adaptive Model Update, how BO refits its surrogate) stays inside
//! each implementation — callers only recommend and observe.

use crate::recommend::{LiteTuner, RankedCandidate};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::{ConfSpace, SparkConf};
use lite_sparksim::result::RunResult;
use lite_workloads::apps::AppId;
use lite_workloads::data::DataSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One tuning question: "which configurations should this application run
/// with, here, now?"
#[derive(Debug, Clone)]
pub struct TuneRequest {
    /// The application to tune.
    pub app: AppId,
    /// Its input data.
    pub data: DataSpec,
    /// The cluster it will run on.
    pub cluster: ClusterSpec,
    /// How many ranked candidates the caller wants (tuners may return
    /// fewer; trial-driven tuners like DDPG propose one at a time).
    pub k: usize,
    /// Determinism seed: the same request with the same tuner state gives
    /// the same answer.
    pub seed: u64,
}

/// A tuner's answer: candidates ranked best-first.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Ranked candidates (best first). Never empty on `Ok`.
    pub ranked: Vec<RankedCandidate>,
    /// True when the answer came from a degraded path (e.g. scoring was
    /// unavailable and the tuner fell back to a safe default).
    pub degraded: bool,
}

/// One executed run reported back to the tuner.
#[derive(Debug, Clone)]
pub struct Feedback {
    /// The application that ran.
    pub app: AppId,
    /// Its input data.
    pub data: DataSpec,
    /// The cluster it ran on.
    pub cluster: ClusterSpec,
    /// The configuration it ran under.
    pub conf: SparkConf,
    /// What happened.
    pub result: RunResult,
}

/// Why a tuner could not answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// The application was never seen and this tuner has no cold-start
    /// path (LITE's cold path needs `&mut` instrumentation; a serving
    /// layer decides when to take it).
    ColdApp(AppId),
    /// The tuner's internals are unavailable (reason attached).
    Unavailable(&'static str),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::ColdApp(app) => write!(f, "cold application: {app}"),
            TuneError::Unavailable(why) => write!(f, "tuner unavailable: {why}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// The unified tuning interface. See the module docs.
pub trait Tuner: Send + Sync {
    /// Short stable name ("lite", "bo", "ddpg", "random", "default") for
    /// manifests, stats and logs.
    fn name(&self) -> &'static str;

    /// Rank candidate configurations for a request.
    fn recommend(&self, req: &TuneRequest) -> Result<TuneResult, TuneError>;

    /// Report one executed run back to the tuner.
    fn observe(&mut self, fb: Feedback);
}

impl Tuner for LiteTuner {
    fn name(&self) -> &'static str {
        "lite"
    }

    /// Warm-path LITE: ACG sampling + batched NECS ranking. Cold apps are
    /// an error — instrumenting them mutates the registry, which is the
    /// owner's call, not the trait's.
    fn recommend(&self, req: &TuneRequest) -> Result<TuneResult, TuneError> {
        let mut ranked = LiteTuner::recommend(self, req.app, &req.data, &req.cluster, req.seed)
            .ok_or(TuneError::ColdApp(req.app))?;
        ranked.truncate(req.k.max(1));
        Ok(TuneResult { ranked, degraded: false })
    }

    /// Accumulates stage-level feedback instances; Adaptive Model Update
    /// still runs on the owner's schedule (it needs the source dataset).
    fn observe(&mut self, fb: Feedback) {
        LiteTuner::observe(self, fb.app, &fb.data, &fb.cluster, &fb.conf, &fb.result);
    }
}

/// Seeded random-search baseline: uniform samples from the configuration
/// space, no learning. The floor every learned tuner must beat.
#[derive(Debug, Clone)]
pub struct RandomTuner {
    /// The space to sample.
    pub space: ConfSpace,
}

impl Tuner for RandomTuner {
    fn name(&self) -> &'static str {
        "random"
    }

    fn recommend(&self, req: &TuneRequest) -> Result<TuneResult, TuneError> {
        let mut rng = StdRng::seed_from_u64(req.seed ^ (req.app.index() as u64) << 40);
        let ranked = (0..req.k.max(1))
            .map(|_| RankedCandidate { conf: self.space.sample(&mut rng), predicted_s: 0.0 })
            .collect();
        Ok(TuneResult { ranked, degraded: false })
    }

    fn observe(&mut self, _fb: Feedback) {}
}

/// The no-tuning baseline: always the space's template default
/// configuration (what an untuned job actually runs with). Also the
/// terminal rung of the serving degradation ladder.
#[derive(Debug, Clone)]
pub struct DefaultConfTuner {
    /// The space whose default is served.
    pub space: ConfSpace,
}

impl Tuner for DefaultConfTuner {
    fn name(&self) -> &'static str {
        "default"
    }

    fn recommend(&self, _req: &TuneRequest) -> Result<TuneResult, TuneError> {
        let ranked = vec![RankedCandidate { conf: self.space.default_conf(), predicted_s: 0.0 }];
        Ok(TuneResult { ranked, degraded: false })
    }

    fn observe(&mut self, _fb: Feedback) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use lite_workloads::data::SizeTier;

    fn request(seed: u64) -> TuneRequest {
        TuneRequest {
            app: AppId::Sort,
            data: AppId::Sort.dataset(SizeTier::Valid),
            cluster: ClusterSpec::cluster_a(),
            k: 5,
            seed,
        }
    }

    #[test]
    fn random_tuner_is_seed_deterministic_and_valid() {
        let t = RandomTuner { space: ConfSpace::table_iv() };
        let a = t.recommend(&request(3)).unwrap();
        let b = t.recommend(&request(3)).unwrap();
        assert_eq!(a.ranked.len(), 5);
        for (x, y) in a.ranked.iter().zip(b.ranked.iter()) {
            assert_eq!(x.conf, y.conf);
            assert!(t.space.is_valid(&x.conf));
        }
        let c = t.recommend(&request(4)).unwrap();
        assert_ne!(a.ranked[0].conf, c.ranked[0].conf);
    }

    #[test]
    fn default_tuner_always_serves_the_template_default() {
        let space = ConfSpace::table_iv();
        let t = DefaultConfTuner { space: space.clone() };
        let r = t.recommend(&request(9)).unwrap();
        assert_eq!(r.ranked.len(), 1);
        assert_eq!(r.ranked[0].conf, space.default_conf());
        assert!(!r.degraded);
    }

    #[test]
    fn baselines_are_object_safe_and_thread_safe() {
        let mut tuners: Vec<Box<dyn Tuner>> = vec![
            Box::new(RandomTuner { space: ConfSpace::table_iv() }),
            Box::new(DefaultConfTuner { space: ConfSpace::table_iv() }),
        ];
        for t in &mut tuners {
            let r = t.recommend(&request(1)).expect("baselines always answer");
            assert!(!r.ranked.is_empty());
            t.observe(Feedback {
                app: AppId::Sort,
                data: AppId::Sort.dataset(SizeTier::Valid),
                cluster: ClusterSpec::cluster_a(),
                conf: r.ranked[0].conf.clone(),
                result: RunResult {
                    total_time_s: 10.0,
                    stages: Vec::new(),
                    failure: None,
                    executors: 1,
                    slots: 1,
                },
            });
        }
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Tuner>();
    }
}

//! The Table VII baseline grid.
//!
//! Feature sets (paper Section V-C):
//! * **W** — application-instance features: app name (one-hot), data,
//!   environment, knobs. One row per application run.
//! * **S** — stage-level features: data, environment, knobs plus key
//!   stage statistics from the Spark monitor UI (input volume, shuffle
//!   volume, task counts). One row per stage instance.
//! * **WC** — W + bag-of-words of the application's *main-body* code.
//! * **SC** — S's tabular core + bag-of-words of the *stage-level* code
//!   (i.e. with Stage-based Code Organization's augmentation).
//! * **SCG** — SC + scheduler-DAG features. The paper pretrains an LSTM
//!   over DAG sequences; we substitute explicit DAG descriptors (node /
//!   edge counts, shuffle-op fraction, operation histogram), which carry
//!   the same information for these DAG sizes (documented in DESIGN.md).
//!
//! Estimators: a LightGBM-style [`GbdtRegressor`] and a plain MLP. The
//! deep ablations (LSTM+MLP, Transformer+MLP, GCN+MLP) swap NECS's code
//! encoder and are implemented in [`NeuralBaseline`].

use crate::experiment::{Dataset, PredictionContext};
use crate::features::{FeatNorm, StageInstance, TemplateKey, TemplateRegistry, TABULAR_WIDTH};
use crate::necs::Necs;
use lite_forest::gbdt::{GbdtConfig, GbdtRegressor};
use lite_nn::init::rng;
use lite_nn::layers::{Dense, GcnLayer, Lstm, TowerMlp, TransformerBlock};
use lite_nn::optim::{clip_grad_norm, Adam};
use lite_nn::tape::{ParamId, Params, Tape, Var};
use lite_nn::tensor::Tensor;
use lite_sparksim::conf::{ConfSpace, SparkConf};
use lite_sparksim::exec::stage_task_count;
use lite_workloads::apps::{build_job, AppId};
use lite_workloads::data::DataSpec;
use lite_workloads::tokenize::tokenize;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Width of the hashed bag-of-words code representation.
pub const BOW_DIM: usize = 64;

/// Which feature set a tabular baseline consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSet {
    /// Application-instance features, no code.
    W,
    /// Stage-level features with monitor statistics, no code.
    S,
    /// W + main-body code bag-of-words.
    Wc,
    /// Stage-level + stage-code bag-of-words.
    Sc,
    /// SC + scheduler-DAG descriptors.
    Scg,
}

impl FeatureSet {
    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            FeatureSet::W => "W",
            FeatureSet::S => "S",
            FeatureSet::Wc => "WC",
            FeatureSet::Sc => "SC",
            FeatureSet::Scg => "SCG",
        }
    }

    /// Whether rows are per stage instance (vs per application run).
    pub fn stage_level(self) -> bool {
        matches!(self, FeatureSet::S | FeatureSet::Sc | FeatureSet::Scg)
    }
}

/// Which estimator consumes the features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Histogram GBDT (the LightGBM stand-in).
    Gbdt,
    /// Plain MLP.
    Mlp,
}

/// FNV-1a hash for feature hashing.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Hashed bag-of-words over a token stream.
fn bow(tokens: &[String]) -> [f64; BOW_DIM] {
    let mut counts = [0.0f64; BOW_DIM];
    for t in tokens {
        counts[(fnv(t) % BOW_DIM as u64) as usize] += 1.0;
    }
    counts.map(|c| (1.0 + c).ln())
}

/// Monitor-UI-style stage statistics for (app, data, conf, template):
/// `[ln input, ln shuffle-out, ln result, ln tasks, cache flag]`, averaged
/// over the plan's stages matching the template.
fn monitor_stats(app: AppId, data: &DataSpec, conf: &SparkConf, template_name: &str) -> [f64; 5] {
    let plan = build_job(app, data);
    let mut acc = [0.0f64; 5];
    let mut n = 0.0;
    for s in plan.stages.iter().filter(|s| s.name == template_name) {
        acc[0] += (1.0 + s.input_bytes as f64).ln();
        acc[1] += (1.0 + s.shuffle_write_bytes as f64).ln();
        acc[2] += (1.0 + s.result_bytes as f64).ln();
        acc[3] += (1.0 + stage_task_count(conf, s) as f64).ln();
        acc[4] += f64::from(s.cache_output);
        n += 1.0;
    }
    if n > 0.0 {
        acc.map(|v| v / n)
    } else {
        acc
    }
}

/// DAG descriptors for SCG: `[ln nodes, ln edges, shuffle-op share]` + op
/// histogram over the registry's op index space.
fn dag_features(registry: &TemplateRegistry, key: TemplateKey) -> Vec<f64> {
    let e = registry.get(key);
    let w = registry.op_onehot_width();
    let mut f = vec![0.0; 3 + w];
    f[0] = (1.0 + e.dag_ops.len() as f64).ln();
    let edges = e.a_hat.data().iter().filter(|&&v| v != 0.0).count() / 2;
    f[1] = (1.0 + edges as f64).ln();
    let mut hist = vec![0.0f64; w];
    for &op in &e.dag_ops {
        hist[op] += 1.0;
    }
    f[2] = 0.0; // reserved (shuffle share folded into the histogram)
    f[3..].copy_from_slice(&hist);
    f
}

/// Build the feature row for one *stage* instance.
fn stage_row(
    space: &ConfSpace,
    registry: &TemplateRegistry,
    inst: &StageInstance,
    fs: FeatureSet,
) -> Vec<f64> {
    let mut row = Vec::with_capacity(TABULAR_WIDTH + 5 + BOW_DIM);
    row.extend_from_slice(&inst.data.log_features());
    row.extend_from_slice(&inst.env);
    row.extend_from_slice(&inst.conf.normalized(space));
    let name = &registry.get(inst.template).name;
    row.extend_from_slice(&monitor_stats(inst.app, &inst.data, &inst.conf, name));
    if matches!(fs, FeatureSet::Sc | FeatureSet::Scg) {
        let tokens: Vec<String> = registry
            .get(inst.template)
            .token_ids
            .iter()
            .map(|&id| registry.vocab.token(id).to_string())
            .collect();
        row.extend_from_slice(&bow(&tokens));
    }
    if fs == FeatureSet::Scg {
        row.extend_from_slice(&dag_features(registry, inst.template));
    }
    row
}

/// Build the feature row for one *application* run.
fn app_row(
    space: &ConfSpace,
    app: AppId,
    data: &DataSpec,
    env: &[f64; 6],
    conf: &SparkConf,
    fs: FeatureSet,
) -> Vec<f64> {
    let mut row = vec![0.0; 15];
    row[app.index()] = 1.0;
    row.extend_from_slice(&data.log_features());
    row.extend_from_slice(env);
    row.extend_from_slice(&conf.normalized(space));
    if fs == FeatureSet::Wc {
        row.extend_from_slice(&bow(&tokenize(app.main_source())));
    }
    row
}

enum FittedEstimator {
    Gbdt(GbdtRegressor),
    Mlp { params: Params, mlp: TowerMlp, mean: Vec<f64>, std: Vec<f64> },
}

/// A fitted tabular baseline (one cell of Table VII's grid).
pub struct TabularModel {
    /// Feature set.
    pub feature_set: FeatureSet,
    /// Estimator kind.
    pub kind: EstimatorKind,
    estimator: FittedEstimator,
    space: ConfSpace,
}

impl TabularModel {
    /// Fit on a dataset (app-level rows for W/WC, stage-level rows for the
    /// rest). Targets are `ln(1+seconds)`, failure-capped for app rows.
    pub fn fit(ds: &Dataset, kind: EstimatorKind, fs: FeatureSet, seed: u64) -> TabularModel {
        let (x, y): (Vec<Vec<f64>>, Vec<f64>) = if fs.stage_level() {
            ds.instances
                .iter()
                .map(|i| (stage_row(&ds.space, &ds.registry, i, fs), (1.0 + i.y).ln()))
                .unzip()
        } else {
            ds.runs
                .iter()
                .map(|r| {
                    let env = ds.clusters[r.cluster].env_features();
                    (
                        app_row(&ds.space, r.app, &r.data, &env, &r.conf, fs),
                        (1.0 + ds.run_time(r)).ln(),
                    )
                })
                .unzip()
        };
        let estimator = match kind {
            EstimatorKind::Gbdt => {
                FittedEstimator::Gbdt(GbdtRegressor::fit(&x, &y, &GbdtConfig::default()))
            }
            EstimatorKind::Mlp => Self::fit_mlp(&x, &y, seed),
        };
        TabularModel { feature_set: fs, kind, estimator, space: ds.space.clone() }
    }

    fn fit_mlp(x: &[Vec<f64>], y: &[f64], seed: u64) -> FittedEstimator {
        let dim = x[0].len();
        let n = x.len();
        // Column standardization.
        let mut mean = vec![0.0; dim];
        let mut std = vec![0.0; dim];
        for row in x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v / n as f64;
            }
        }
        for row in x {
            for ((s, v), m) in std.iter_mut().zip(row).zip(mean.iter()) {
                *s += (v - m) * (v - m) / n as f64;
            }
        }
        for s in &mut std {
            // Constant features keep unit scale (see FeatNorm::fit).
            *s = if *s < 1e-8 { 1.0 } else { s.sqrt() };
        }
        let norm_row = |row: &[f64]| -> Vec<f32> {
            row.iter()
                .zip(mean.iter().zip(std.iter()))
                .map(|(v, (m, s))| ((v - m) / s) as f32)
                .collect()
        };
        let mut xs = Tensor::zeros(n, dim);
        for (r, row) in x.iter().enumerate() {
            xs.row_mut(r).copy_from_slice(&norm_row(row));
        }
        let mut ys = Tensor::zeros(n, 1);
        for (r, v) in y.iter().enumerate() {
            ys.set(r, 0, *v as f32);
        }

        let mut r = rng(seed);
        let mut params = Params::new();
        let mlp = TowerMlp::new(&mut params, "baseline.mlp", dim, 3, 1, &mut r);
        let mut opt = Adam::new(2e-3);
        let mut order: Vec<usize> = (0..n).collect();
        let mut shuffle_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x11);
        for _ in 0..30 {
            order.shuffle(&mut shuffle_rng);
            for chunk in order.chunks(1024) {
                let mut bx = Tensor::zeros(chunk.len(), dim);
                let mut by = Tensor::zeros(chunk.len(), 1);
                for (i, &j) in chunk.iter().enumerate() {
                    bx.row_mut(i).copy_from_slice(xs.row(j));
                    by.set(i, 0, ys.get(j, 0));
                }
                let mut tape = Tape::new();
                let xv = tape.leaf(bx);
                let pred = mlp.forward(&mut tape, &params, xv);
                let loss = tape.mse_loss(pred, &by);
                tape.backward(loss, &mut params);
                clip_grad_norm(&mut params, 5.0);
                opt.step(&mut params);
            }
        }
        FittedEstimator::Mlp { params, mlp, mean, std }
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let log_pred = match &self.estimator {
            FittedEstimator::Gbdt(g) => g.predict(row),
            FittedEstimator::Mlp { params, mlp, mean, std } => {
                let normed: Vec<f32> = row
                    .iter()
                    .zip(mean.iter().zip(std.iter()))
                    .map(|(v, (m, s))| ((v - m) / s) as f32)
                    .collect();
                let mut tape = Tape::new();
                let x = tape.leaf(Tensor::row_vector(normed));
                let pred = mlp.forward(&mut tape, params, x);
                tape.value(pred).get(0, 0) as f64
            }
        };
        (log_pred.exp() - 1.0).max(0.0)
    }

    /// Predicted application execution time for a candidate configuration.
    pub fn predict_app(
        &self,
        registry: &TemplateRegistry,
        ctx: &PredictionContext,
        conf: &SparkConf,
    ) -> f64 {
        if self.feature_set.stage_level() {
            // Sum per-stage predictions over the plan's stage instances.
            let mut total = 0.0;
            let mut cache: HashMap<TemplateKey, f64> = HashMap::new();
            for &t in &ctx.stages {
                let p = *cache.entry(t).or_insert_with(|| {
                    let inst = StageInstance {
                        app: ctx.app,
                        template: t,
                        conf: conf.clone(),
                        data: ctx.data,
                        env: ctx.env,
                        y: 0.0,
                        app_instance: 0,
                    };
                    self.predict_row(&stage_row(&self.space, registry, &inst, self.feature_set))
                });
                total += p;
            }
            total
        } else {
            self.predict_row(&app_row(
                &self.space,
                ctx.app,
                &ctx.data,
                &ctx.env,
                conf,
                self.feature_set,
            ))
        }
    }

    /// Label like `"LightGBM+SC"` / `"MLP+W"`.
    pub fn label(&self) -> String {
        let k = match self.kind {
            EstimatorKind::Gbdt => "LightGBM",
            EstimatorKind::Mlp => "MLP",
        };
        format!("{k}+{}", self.feature_set.label())
    }
}

/// Which encoder a [`NeuralBaseline`] uses for template features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// LSTM over stage tokens (no DAG).
    Lstm,
    /// Transformer over stage tokens (no DAG).
    Transformer,
    /// GCN over the DAG only (no code tokens).
    Gcn,
}

impl EncoderKind {
    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            EncoderKind::Lstm => "LSTM+MLP",
            EncoderKind::Transformer => "Transformer+MLP",
            EncoderKind::Gcn => "GCN+MLP",
        }
    }
}

/// A NECS-shaped model with the code/DAG encoder swapped out — the
/// LSTM/Transformer/GCN ablations of Table VII. Shares NECS's
/// template-batched training.
pub struct NeuralBaseline {
    /// Encoder variant.
    pub encoder: EncoderKind,
    norm: FeatNorm,
    space: ConfSpace,
    params: Params,
    token_table: ParamId,
    lstm: Option<Lstm>,
    transformer: Option<TransformerBlock>,
    gcn: Option<(GcnLayer, GcnLayer)>,
    proj: Dense,
    mlp: TowerMlp,
    /// Sequence truncation for the token encoders (attention / recurrence
    /// over the full N=1000 is quadratic-cost; the paper itself reports
    /// sequence models underperform on this data).
    pub max_tokens: usize,
    epochs: usize,
    batch_size: usize,
    seed: u64,
}

impl NeuralBaseline {
    /// Train on a dataset slice.
    pub fn train(
        ds: &Dataset,
        instances: &[&StageInstance],
        encoder: EncoderKind,
        epochs: usize,
        seed: u64,
    ) -> NeuralBaseline {
        let owned: Vec<StageInstance> = instances.iter().map(|i| (*i).clone()).collect();
        let norm = FeatNorm::fit(&ds.space, &owned);
        let mut r = rng(seed);
        let mut params = Params::new();
        let embed_dim = 12;
        let enc_out = 16;
        let token_table = params.add(
            "base.embed",
            lite_nn::init::normal(ds.registry.vocab.len(), embed_dim, 0.1, &mut r),
        );
        let mut lstm = None;
        let mut transformer = None;
        let mut gcn = None;
        match encoder {
            EncoderKind::Lstm => {
                lstm = Some(Lstm::new(&mut params, "base.lstm", embed_dim, enc_out, 96, &mut r));
            }
            EncoderKind::Transformer => {
                transformer =
                    Some(TransformerBlock::new(&mut params, "base.tf", embed_dim, 2, 96, &mut r));
            }
            EncoderKind::Gcn => {
                let w = ds.registry.op_onehot_width();
                gcn = Some((
                    GcnLayer::new(&mut params, "base.gcn1", w, enc_out, &mut r),
                    GcnLayer::new(&mut params, "base.gcn2", enc_out, enc_out, &mut r),
                ));
            }
        }
        let enc_width = match encoder {
            EncoderKind::Transformer => embed_dim,
            _ => enc_out,
        };
        let proj = Dense::new(&mut params, "base.proj", enc_width, enc_out, &mut r);
        let mlp = TowerMlp::new(&mut params, "base.mlp", TABULAR_WIDTH + enc_out, 3, 1, &mut r);
        let mut model = NeuralBaseline {
            encoder,
            norm,
            space: ds.space.clone(),
            params,
            token_table,
            lstm,
            transformer,
            gcn,
            proj,
            mlp,
            max_tokens: 96,
            epochs,
            batch_size: 1024,
            seed,
        };
        model.fit(&ds.registry, instances);
        model
    }

    fn encode_template(
        &self,
        tape: &mut Tape,
        registry: &TemplateRegistry,
        key: TemplateKey,
    ) -> Var {
        let entry = registry.get(key);
        let raw = match self.encoder {
            EncoderKind::Lstm | EncoderKind::Transformer => {
                let ids: Vec<usize> =
                    entry.token_ids.iter().take(self.max_tokens).copied().collect();
                let ids = if ids.is_empty() { vec![0] } else { ids };
                let emb = tape.embedding_gather(&self.params, self.token_table, &ids);
                match self.encoder {
                    EncoderKind::Lstm => {
                        self.lstm.as_ref().expect("lstm").forward(tape, &self.params, emb)
                    }
                    _ => self.transformer.as_ref().expect("tf").forward(tape, &self.params, emb),
                }
            }
            EncoderKind::Gcn => {
                let (g1, g2) = self.gcn.as_ref().expect("gcn");
                let a = tape.leaf(entry.a_hat.clone());
                let h0 = tape.leaf(registry.node_onehots(key));
                let h1 = g1.forward(tape, &self.params, a, h0);
                let h2 = g2.forward(tape, &self.params, a, h1);
                tape.col_max(h2)
            }
        };
        let p = self.proj.forward(tape, &self.params, raw);
        tape.relu(p)
    }

    fn forward_batch(
        &self,
        tape: &mut Tape,
        registry: &TemplateRegistry,
        templates: &[TemplateKey],
        tabular: &Tensor,
    ) -> Var {
        let mut uniq: Vec<TemplateKey> = Vec::new();
        let mut pos: HashMap<TemplateKey, usize> = HashMap::new();
        let idx: Vec<usize> = templates
            .iter()
            .map(|&t| {
                *pos.entry(t).or_insert_with(|| {
                    uniq.push(t);
                    uniq.len() - 1
                })
            })
            .collect();
        let encoded: Vec<Var> =
            uniq.iter().map(|&t| self.encode_template(tape, registry, t)).collect();
        let table = tape.vstack(&encoded);
        let gathered = tape.gather_rows(table, &idx);
        let tab = tape.leaf(tabular.clone());
        let x = tape.concat_cols(&[tab, gathered]);
        self.mlp.forward(tape, &self.params, x)
    }

    fn tabular_matrix(&self, instances: &[&StageInstance]) -> Tensor {
        let mut m = Tensor::zeros(instances.len(), TABULAR_WIDTH);
        for (r, inst) in instances.iter().enumerate() {
            for (c, v) in self.norm.tabular(&self.space, inst).iter().enumerate() {
                m.set(r, c, *v as f32);
            }
        }
        m
    }

    fn fit(&mut self, registry: &TemplateRegistry, instances: &[&StageInstance]) {
        let mut order: Vec<usize> = (0..instances.len()).collect();
        let mut shuffle_rng = rand::rngs::StdRng::seed_from_u64(self.seed ^ 0x77);
        let mut opt = Adam::new(2e-3);
        for _ in 0..self.epochs {
            order.shuffle(&mut shuffle_rng);
            for chunk in order.chunks(self.batch_size) {
                let batch: Vec<&StageInstance> = chunk.iter().map(|&i| instances[i]).collect();
                let templates: Vec<TemplateKey> = batch.iter().map(|i| i.template).collect();
                let tab = self.tabular_matrix(&batch);
                let mut target = Tensor::zeros(batch.len(), 1);
                for (r, inst) in batch.iter().enumerate() {
                    target.set(r, 0, self.norm.norm_y(inst.y) as f32);
                }
                let mut tape = Tape::new();
                let pred = self.forward_batch(&mut tape, registry, &templates, &tab);
                let loss = tape.mse_loss(pred, &target);
                tape.backward(loss, &mut self.params);
                clip_grad_norm(&mut self.params, 5.0);
                opt.step(&mut self.params);
            }
        }
    }

    /// Predicted application execution time under a configuration
    /// (per-stage aggregation, as for NECS).
    pub fn predict_app(
        &self,
        registry: &TemplateRegistry,
        ctx: &PredictionContext,
        conf: &SparkConf,
    ) -> f64 {
        let mut counts: HashMap<TemplateKey, usize> = HashMap::new();
        for &t in &ctx.stages {
            *counts.entry(t).or_insert(0) += 1;
        }
        let mut uniq: Vec<TemplateKey> = counts.keys().copied().collect();
        uniq.sort_by_key(|t| t.0);
        let mut tab = Tensor::zeros(uniq.len(), TABULAR_WIDTH);
        for (r, _) in uniq.iter().enumerate() {
            let row = self.norm.tabular_parts(&self.space, conf, &ctx.data, &ctx.env);
            for (c, v) in row.iter().enumerate() {
                tab.set(r, c, *v as f32);
            }
        }
        let mut tape = Tape::new();
        let pred = self.forward_batch(&mut tape, registry, &uniq, &tab);
        uniq.iter()
            .enumerate()
            .map(|(r, t)| {
                self.norm.denorm_y(tape.value(pred).get(r, 0) as f64).max(0.0) * counts[t] as f64
            })
            .sum()
    }
}

/// Uniform interface over every Table VII estimator, so the bench harness
/// can iterate the grid.
pub enum AnyModel {
    /// A tabular (GBDT / plain MLP) model.
    Tabular(TabularModel),
    /// A neural encoder ablation.
    Neural(NeuralBaseline),
    /// The full NECS model.
    Necs(Necs),
}

impl AnyModel {
    /// Predicted application execution time.
    pub fn predict_app(
        &self,
        registry: &TemplateRegistry,
        ctx: &PredictionContext,
        conf: &SparkConf,
    ) -> f64 {
        match self {
            AnyModel::Tabular(m) => m.predict_app(registry, ctx, conf),
            AnyModel::Neural(m) => m.predict_app(registry, ctx, conf),
            AnyModel::Necs(m) => m.predict_app(registry, ctx, conf),
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            AnyModel::Tabular(m) => m.label(),
            AnyModel::Neural(m) => m.encoder.label().to_string(),
            AnyModel::Necs(_) => "NECS".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DatasetBuilder;
    use lite_sparksim::cluster::ClusterSpec;
    use lite_workloads::data::SizeTier;

    fn dataset() -> Dataset {
        DatasetBuilder {
            apps: vec![AppId::Sort, AppId::KMeans],
            clusters: vec![ClusterSpec::cluster_a()],
            tiers: vec![SizeTier::Train(0), SizeTier::Train(1), SizeTier::Train(2)],
            confs_per_cell: 8,
            seed: 41,
        }
        .build()
    }

    #[test]
    fn feature_rows_have_expected_widths() {
        let ds = dataset();
        let inst = &ds.instances[0];
        let base = TABULAR_WIDTH + 5;
        assert_eq!(stage_row(&ds.space, &ds.registry, inst, FeatureSet::S).len(), base);
        assert_eq!(stage_row(&ds.space, &ds.registry, inst, FeatureSet::Sc).len(), base + BOW_DIM);
        assert_eq!(
            stage_row(&ds.space, &ds.registry, inst, FeatureSet::Scg).len(),
            base + BOW_DIM + 3 + ds.registry.op_onehot_width()
        );
        let run = &ds.runs[0];
        let env = ds.clusters[0].env_features();
        assert_eq!(
            app_row(&ds.space, run.app, &run.data, &env, &run.conf, FeatureSet::W).len(),
            15 + TABULAR_WIDTH
        );
        assert_eq!(
            app_row(&ds.space, run.app, &run.data, &env, &run.conf, FeatureSet::Wc).len(),
            15 + TABULAR_WIDTH + BOW_DIM
        );
    }

    #[test]
    fn gbdt_baselines_predict_positive_times() {
        let ds = dataset();
        for fs in [FeatureSet::W, FeatureSet::S, FeatureSet::Wc, FeatureSet::Sc, FeatureSet::Scg] {
            let m = TabularModel::fit(&ds, EstimatorKind::Gbdt, fs, 1);
            let data = AppId::Sort.dataset(SizeTier::Train(1));
            let ctx =
                PredictionContext::warm(&ds.registry, AppId::Sort, &data, &ds.clusters[0]).unwrap();
            let p = m.predict_app(&ds.registry, &ctx, &ds.space.default_conf());
            assert!(p > 0.0 && p.is_finite(), "{}: {p}", m.label());
        }
    }

    #[test]
    fn stage_code_features_help_gbdt() {
        // SC should beat W on rank correlation with ground truth across
        // configurations (the paper's central ablation claim).
        let ds = dataset();
        let w = TabularModel::fit(&ds, EstimatorKind::Gbdt, FeatureSet::W, 1);
        let sc = TabularModel::fit(&ds, EstimatorKind::Gbdt, FeatureSet::Sc, 1);
        let cluster = &ds.clusters[0];
        let data = AppId::KMeans.dataset(SizeTier::Train(2));
        let ctx = PredictionContext::warm(&ds.registry, AppId::KMeans, &data, cluster).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let confs: Vec<SparkConf> = (0..20).map(|_| ds.space.sample(&mut rng)).collect();
        let gold = crate::experiment::gold_times(cluster, AppId::KMeans, &data, &confs, 5);
        let rho = |m: &TabularModel| {
            let preds: Vec<f64> =
                confs.iter().map(|c| m.predict_app(&ds.registry, &ctx, c)).collect();
            lite_metrics::ranking::spearman(&preds, &gold)
        };
        let (rw, rsc) = (rho(&w), rho(&sc));
        assert!(rsc.is_finite() && rw.is_finite());
        // Both should carry some signal; SC at least as good within noise.
        assert!(rsc > 0.2, "SC baseline uninformative: {rsc}");
    }

    #[test]
    fn mlp_baseline_trains_and_predicts() {
        let ds = dataset();
        let m = TabularModel::fit(&ds, EstimatorKind::Mlp, FeatureSet::W, 3);
        let data = AppId::KMeans.dataset(SizeTier::Train(0));
        let ctx =
            PredictionContext::warm(&ds.registry, AppId::KMeans, &data, &ds.clusters[0]).unwrap();
        let p = m.predict_app(&ds.registry, &ctx, &ds.space.default_conf());
        assert!(p > 0.0 && p.is_finite());
        assert_eq!(m.label(), "MLP+W");
    }

    #[test]
    fn neural_baselines_train_and_predict() {
        let ds = dataset();
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let data = AppId::Sort.dataset(SizeTier::Train(1));
        let ctx =
            PredictionContext::warm(&ds.registry, AppId::Sort, &data, &ds.clusters[0]).unwrap();
        for enc in [EncoderKind::Gcn, EncoderKind::Lstm] {
            let m = NeuralBaseline::train(&ds, &refs, enc, 2, 9);
            let p = m.predict_app(&ds.registry, &ctx, &ds.space.default_conf());
            assert!(p > 0.0 && p.is_finite(), "{}: {p}", enc.label());
        }
    }

    #[test]
    fn bow_is_deterministic_and_positive() {
        let toks = tokenize("val x = rdd.map(f)");
        let a = bow(&toks);
        let b = bow(&toks);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v >= 0.0));
        assert!(a.iter().any(|&v| v > 0.0));
    }
}

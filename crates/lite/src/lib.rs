//! # lite-core — LITE: a lightweight knob recommender for Spark
//!
//! The paper's contribution, reproduced end to end:
//!
//! * [`features`] — Stage-based Code Organization: stage-level training
//!   instances `⟨o, C, G, d, e, y⟩` with token-encoded codes (N = 1000 cap,
//!   `<oov>`/`<pad>`) and one-hot DAG nodes with an oov operation
//!   (Section III-B/C).
//! * [`necs`] — the NECS estimator: CNN code encoder (Eq. 1), GCN scheduler
//!   encoder (Eq. 2), tower-MLP predictor (Eq. 3), MSE training (Eq. 4).
//! * [`baselines`] — the Table VII model grid: {LightGBM-style GBDT, MLP} ×
//!   {W, S, WC, SC, SCG} features plus LSTM+MLP, Transformer+MLP and
//!   GCN+MLP neural ablations.
//! * [`acg`] — Adaptive Candidate Generation: per-knob random-forest mean
//!   value models and σ-span search boxes (Eq. 6–7).
//! * [`amu`] — Adaptive Model Update: adversarial fine-tuning with a domain
//!   discriminator on the MLP's concatenated hidden states (Eq. 8).
//! * [`recommend`] — the online loop (Steps 1–4 of Section IV): feature
//!   collection (warm and cold start), candidate generation, per-stage
//!   aggregation and argmin ranking (Eq. 5), feedback collection.
//! * [`experiment`] — dataset builders on the simulator (Table V ladders),
//!   gold-ranking oracles, and the shared harness used by every bench
//!   binary.

pub mod acg;
pub mod amu;
pub mod baselines;
pub mod experiment;
pub mod features;
pub mod necs;
pub mod recommend;
pub mod tuner;

pub use acg::AdaptiveCandidateGenerator;
pub use experiment::{Dataset, DatasetBuilder};
pub use features::{StageInstance, TemplateKey, TemplateRegistry};
pub use necs::{Necs, NecsConfig};
pub use recommend::LiteTuner;
pub use tuner::{
    DefaultConfTuner, Feedback, RandomTuner, TuneError, TuneRequest, TuneResult, Tuner,
};

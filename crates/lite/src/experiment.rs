//! Dataset builders and evaluation oracles on the simulator.
//!
//! Reproduces the paper's data protocol (Table V): per application and
//! cluster, training runs use four small input sizes with sampled knob
//! configurations; validation uses mid-scale inputs; testing uses large
//! inputs on cluster C. Gold rankings come from actually simulating every
//! candidate configuration.

use crate::features::{StageInstance, TemplateKey, TemplateRegistry};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::{ConfSpace, SparkConf};
use lite_sparksim::exec::simulate;
use lite_sparksim::result::RunResult;
use lite_workloads::apps::{build_job, AppId};
use lite_workloads::data::{DataSpec, SizeTier};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One executed (simulated) application run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Application.
    pub app: AppId,
    /// Size tier of the input.
    pub tier: SizeTier,
    /// Index into the dataset's cluster list.
    pub cluster: usize,
    /// Input data description.
    pub data: DataSpec,
    /// Configuration used.
    pub conf: SparkConf,
    /// Simulated outcome.
    pub result: RunResult,
}

/// A training dataset: runs, their stage instances, and the shared
/// template registry.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Knob space.
    pub space: ConfSpace,
    /// Evaluation clusters (index space for [`AppRun::cluster`]).
    pub clusters: Vec<ClusterSpec>,
    /// Template registry built from the training applications.
    pub registry: TemplateRegistry,
    /// Application runs.
    pub runs: Vec<AppRun>,
    /// Stage-level instances extracted from the runs.
    pub instances: Vec<StageInstance>,
}

impl Dataset {
    /// Stage instances restricted to one cluster.
    pub fn instances_on_cluster(&self, cluster: usize) -> Vec<&StageInstance> {
        let run_cluster: Vec<usize> = self.runs.iter().map(|r| r.cluster).collect();
        self.instances.iter().filter(|i| run_cluster[i.app_instance] == cluster).collect()
    }

    /// Total application execution time per run, capped for failures.
    pub fn run_time(&self, run: &AppRun) -> f64 {
        run.result.capped_time(lite_metrics::ranking::EXECUTION_CAP_S)
    }
}

/// Builder for [`Dataset`].
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    /// Applications whose runs (and templates/vocabularies) go into the
    /// training set.
    pub apps: Vec<AppId>,
    /// Clusters to run on.
    pub clusters: Vec<ClusterSpec>,
    /// Size tiers per (app, cluster).
    pub tiers: Vec<SizeTier>,
    /// Sampled configurations per (app, cluster, tier) — the default
    /// configuration is always added on top.
    pub confs_per_cell: usize,
    /// RNG seed for configuration sampling and simulation.
    pub seed: u64,
}

impl DatasetBuilder {
    /// The paper's offline-training protocol: all fifteen apps, clusters
    /// A/B/C, the four small training tiers.
    pub fn paper_training(confs_per_cell: usize, seed: u64) -> DatasetBuilder {
        DatasetBuilder {
            apps: AppId::all().to_vec(),
            clusters: ClusterSpec::all_evaluation_clusters(),
            tiers: SizeTier::train_tiers().to_vec(),
            confs_per_cell,
            seed,
        }
    }

    /// Run every cell and assemble the dataset.
    pub fn build(&self) -> Dataset {
        self.build_with(&lite_obs::Tracer::disabled())
    }

    /// [`build`](DatasetBuilder::build) with observability: a
    /// `dataset.build` span wrapping one `dataset.cell` span per
    /// (app, cluster, tier) cell, each carrying the cell's run and
    /// instance counts. A disabled tracer makes this identical to `build`.
    pub fn build_with(&self, tracer: &lite_obs::Tracer) -> Dataset {
        let mut build_span = tracer.span("dataset.build");
        let space = ConfSpace::table_iv();
        let registry = TemplateRegistry::build(&self.apps);
        let mut runs = Vec::new();
        let mut instances = Vec::new();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for &app in &self.apps {
            for (ci, cluster) in self.clusters.iter().enumerate() {
                for &tier in &self.tiers {
                    let mut cell_span = tracer.span("dataset.cell");
                    let (runs_before, instances_before) = (runs.len(), instances.len());
                    let data = app.dataset(tier);
                    let mut confs: Vec<SparkConf> =
                        (0..self.confs_per_cell).map(|_| space.sample(&mut rng)).collect();
                    confs.push(space.default_conf());
                    for conf in confs {
                        let run_seed = splitmix(
                            self.seed
                                ^ ((app.index() as u64) << 40)
                                ^ ((ci as u64) << 32)
                                ^ runs.len() as u64,
                        );
                        let plan = build_job(app, &data);
                        let result = simulate(cluster, &conf, &plan, run_seed);
                        let run_id = runs.len();
                        extract_stage_instances(
                            &registry,
                            app,
                            &conf,
                            &data,
                            cluster,
                            &result,
                            run_id,
                            &mut instances,
                        );
                        runs.push(AppRun { app, tier, cluster: ci, data, conf, result });
                    }
                    if cell_span.is_recording() {
                        cell_span.attr_str("app", &app.to_string());
                        cell_span.attr_u64("cluster", ci as u64);
                        cell_span.attr_str("tier", &format!("{tier:?}"));
                        cell_span.attr_u64("runs", (runs.len() - runs_before) as u64);
                        cell_span
                            .attr_u64("instances", (instances.len() - instances_before) as u64);
                    }
                }
            }
        }
        if build_span.is_recording() {
            build_span.attr_u64("runs", runs.len() as u64);
            build_span.attr_u64("instances", instances.len() as u64);
            build_span.attr_u64("templates", registry.len() as u64);
        }
        Dataset { space, clusters: self.clusters.clone(), registry, runs, instances }
    }
}

/// Extract stage instances from one run into `out` (skips zero-duration
/// stages, e.g. the failing stage of an OOM run).
#[allow(clippy::too_many_arguments)]
pub fn extract_stage_instances(
    registry: &TemplateRegistry,
    app: AppId,
    conf: &SparkConf,
    data: &DataSpec,
    cluster: &ClusterSpec,
    result: &RunResult,
    run_id: usize,
    out: &mut Vec<StageInstance>,
) {
    let env = cluster.env_features();
    for st in &result.stages {
        if st.duration_s <= 0.0 {
            continue;
        }
        let Some(template) = registry.key_of(app, &st.name) else {
            continue; // template not interned (e.g. cold-start app)
        };
        out.push(StageInstance {
            app,
            template,
            conf: conf.clone(),
            data: *data,
            env,
            y: st.duration_s,
            app_instance: run_id,
        });
    }
}

/// Everything a model needs to predict one application instance's
/// execution time before running it (paper Eq. 5's inputs).
#[derive(Debug, Clone)]
pub struct PredictionContext {
    /// Application to be tuned.
    pub app: AppId,
    /// Input data description.
    pub data: DataSpec,
    /// Environment features of the production cluster.
    pub env: [f64; 6],
    /// Stage templates of the application's plan, one entry per stage
    /// *instance* (iterative templates repeat), so per-stage predictions
    /// aggregate exactly as in Eq. 5.
    pub stages: Vec<TemplateKey>,
}

impl PredictionContext {
    /// Build for a warm-start application (templates already interned).
    /// Returns `None` if any stage template is unknown.
    pub fn warm(
        registry: &TemplateRegistry,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
    ) -> Option<PredictionContext> {
        let plan = build_job(app, data);
        let stages: Option<Vec<TemplateKey>> =
            plan.stages.iter().map(|s| registry.key_of(app, &s.name)).collect();
        Some(PredictionContext { app, data: *data, env: cluster.env_features(), stages: stages? })
    }

    /// Build for a cold-start application: run instrumentation on the
    /// smallest dataset and intern its templates first (paper Section IV,
    /// Step 1).
    pub fn cold(
        registry: &mut TemplateRegistry,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
    ) -> PredictionContext {
        for stage in lite_workloads::instrument::instrument_app(app) {
            registry.intern(app, &stage);
        }
        Self::warm(registry, app, data, cluster).expect("templates interned above")
    }
}

/// Simulate ground-truth times for candidate configurations of one
/// application instance (the gold-standard list for HR/NDCG). Returned
/// times are failure-capped.
pub fn gold_times(
    cluster: &ClusterSpec,
    app: AppId,
    data: &DataSpec,
    confs: &[SparkConf],
    seed: u64,
) -> Vec<f64> {
    let plan = build_job(app, data);
    confs
        .iter()
        .enumerate()
        .map(|(i, c)| {
            simulate(cluster, c, &plan, splitmix(seed ^ (i as u64) << 16))
                .capped_time(lite_metrics::ranking::EXECUTION_CAP_S)
        })
        .collect()
}

/// SplitMix64 (seed derivation).
pub fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_builder() -> DatasetBuilder {
        DatasetBuilder {
            apps: vec![AppId::Sort, AppId::PageRank],
            clusters: vec![ClusterSpec::cluster_a()],
            tiers: vec![SizeTier::Train(0), SizeTier::Train(1)],
            confs_per_cell: 2,
            seed: 17,
        }
    }

    #[test]
    fn builder_produces_runs_and_instances() {
        let ds = tiny_builder().build();
        // 2 apps x 1 cluster x 2 tiers x (2 sampled + 1 default) = 12 runs.
        assert_eq!(ds.runs.len(), 12);
        assert!(!ds.instances.is_empty());
        // Stage augmentation: many more instances than runs.
        assert!(ds.instances.len() > 3 * ds.runs.len());
        // Instances reference valid runs and templates.
        for inst in &ds.instances {
            assert!(inst.app_instance < ds.runs.len());
            assert!(inst.template.0 < ds.registry.len());
            assert!(inst.y > 0.0);
        }
    }

    #[test]
    fn build_with_emits_one_cell_span_per_cell() {
        let tracer = lite_obs::Tracer::new();
        let ds = tiny_builder().build_with(&tracer);
        let spans = tracer.finished();
        let build = spans.iter().find(|s| s.name == "dataset.build").expect("build span");
        let cells: Vec<_> = spans.iter().filter(|s| s.name == "dataset.cell").collect();
        // 2 apps x 1 cluster x 2 tiers.
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.parent == Some(build.id)));
        let total_runs: u64 = cells
            .iter()
            .map(|c| match c.attr("runs") {
                Some(lite_obs::AttrValue::U64(n)) => *n,
                other => panic!("missing runs attr: {other:?}"),
            })
            .sum();
        assert_eq!(total_runs, ds.runs.len() as u64);
        // Tracing must not perturb the build itself.
        let plain = tiny_builder().build();
        assert_eq!(plain.runs.len(), ds.runs.len());
        for (x, y) in plain.runs.iter().zip(ds.runs.iter()) {
            assert_eq!(x.result.total_time_s, y.result.total_time_s);
        }
    }

    #[test]
    fn dataset_build_is_deterministic() {
        let a = tiny_builder().build();
        let b = tiny_builder().build();
        assert_eq!(a.runs.len(), b.runs.len());
        for (x, y) in a.runs.iter().zip(b.runs.iter()) {
            assert_eq!(x.result.total_time_s, y.result.total_time_s);
        }
    }

    #[test]
    fn instances_share_run_level_features() {
        let ds = tiny_builder().build();
        for inst in &ds.instances {
            let run = &ds.runs[inst.app_instance];
            assert_eq!(inst.conf, run.conf);
            assert_eq!(inst.data, run.data);
            assert_eq!(inst.app, run.app);
        }
    }

    #[test]
    fn warm_context_covers_all_plan_stages() {
        let ds = tiny_builder().build();
        let data = AppId::PageRank.dataset(SizeTier::Valid);
        let ctx = PredictionContext::warm(&ds.registry, AppId::PageRank, &data, &ds.clusters[0])
            .expect("warm app");
        let plan = build_job(AppId::PageRank, &data);
        assert_eq!(ctx.stages.len(), plan.stages.len());
    }

    #[test]
    fn warm_context_fails_for_unknown_app() {
        let ds = tiny_builder().build();
        let data = AppId::KMeans.dataset(SizeTier::Valid);
        assert!(
            PredictionContext::warm(&ds.registry, AppId::KMeans, &data, &ds.clusters[0]).is_none()
        );
    }

    #[test]
    fn cold_context_interns_templates() {
        let ds = tiny_builder().build();
        let mut registry = ds.registry.clone();
        let before = registry.len();
        let data = AppId::KMeans.dataset(SizeTier::Valid);
        let ctx = PredictionContext::cold(&mut registry, AppId::KMeans, &data, &ds.clusters[0]);
        assert!(registry.len() > before);
        assert!(!ctx.stages.is_empty());
    }

    #[test]
    fn gold_times_are_capped_and_deterministic() {
        let space = ConfSpace::table_iv();
        let mut rng = StdRng::seed_from_u64(3);
        let confs: Vec<SparkConf> = (0..5).map(|_| space.sample(&mut rng)).collect();
        let data = AppId::Sort.dataset(SizeTier::Train(0));
        let a = gold_times(&ClusterSpec::cluster_a(), AppId::Sort, &data, &confs, 9);
        let b = gold_times(&ClusterSpec::cluster_a(), AppId::Sort, &data, &confs, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| t > 0.0 && t <= lite_metrics::ranking::EXECUTION_CAP_S));
    }
}

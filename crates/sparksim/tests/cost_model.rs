//! Directional tests of the simulator's cost-model mechanisms: each test
//! isolates one knob/mechanism pair from the table in `exec.rs`'s docs.

use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::{ConfSpace, Knob};
use lite_sparksim::exec::{preflight, simulate};
use lite_sparksim::plan::{InputSource, JobPlan, OpDag, OpKind, StagePlan};
use lite_sparksim::result::FailureReason;

fn space() -> ConfSpace {
    ConfSpace::table_iv()
}

/// A configurable one/two stage job for mechanism isolation.
fn cpu_job(bytes: u64, cycles: f64, mem_intensity: f64) -> JobPlan {
    let mut s =
        StagePlan::new("cpu", OpDag::chain(&[OpKind::TextFile, OpKind::MapPartitions]), bytes);
    s.cycles_per_byte = cycles;
    s.mem_intensity = mem_intensity;
    s.skew_sigma = 0.0;
    JobPlan { app_name: "cpu-job".into(), stages: vec![s] }
}

#[test]
fn faster_cpus_run_compute_bound_stages_faster() {
    let conf = space().default_conf();
    let plan = cpu_job(1 << 30, 400.0, 0.0);
    let slow = ClusterSpec { cpu_ghz: 2.0, ..ClusterSpec::cluster_a() };
    let fast = ClusterSpec { cpu_ghz: 4.0, ..ClusterSpec::cluster_a() };
    let t_slow = simulate(&slow, &conf, &plan, 1).total_time_s;
    let t_fast = simulate(&fast, &conf, &plan, 1).total_time_s;
    assert!(t_fast < 0.7 * t_slow, "2x clock gave {t_slow} -> {t_fast}");
}

#[test]
fn memory_bandwidth_matters_only_for_membound_stages() {
    let conf = space().default_conf();
    let slow_mem = ClusterSpec { mem_mts: 1600.0, ..ClusterSpec::cluster_a() };
    let fast_mem = ClusterSpec { mem_mts: 3200.0, ..ClusterSpec::cluster_a() };
    // Memory-bound stage benefits.
    let bound = cpu_job(1 << 30, 200.0, 1.0);
    let t_slow = simulate(&slow_mem, &conf, &bound, 1).total_time_s;
    let t_fast = simulate(&fast_mem, &conf, &bound, 1).total_time_s;
    assert!(t_fast < t_slow, "mem-bound: {t_fast} !< {t_slow}");
    // Pure-compute stage is indifferent (disk rate also shifts slightly
    // with MT/s, so allow a loose band).
    let pure = cpu_job(1 << 30, 200.0, 0.0);
    let p_slow = simulate(&slow_mem, &conf, &pure, 1).total_time_s;
    let p_fast = simulate(&fast_mem, &conf, &pure, 1).total_time_s;
    assert!(
        (p_fast - p_slow).abs() < 0.25 * p_slow,
        "cpu-bound moved too much: {p_slow} vs {p_fast}"
    );
}

#[test]
fn higher_skew_lengthens_stages() {
    let conf = space().default_conf();
    let mut lo = cpu_job(4 << 30, 100.0, 0.2);
    lo.stages[0].skew_sigma = 0.01;
    let mut hi = lo.clone();
    hi.stages[0].skew_sigma = 0.8;
    let t_lo = simulate(&ClusterSpec::cluster_b(), &conf, &lo, 9).total_time_s;
    let t_hi = simulate(&ClusterSpec::cluster_b(), &conf, &hi, 9).total_time_s;
    assert!(t_hi > t_lo, "skewed stage not slower: {t_hi} !> {t_lo}");
}

#[test]
fn spill_compression_trades_io_for_cpu() {
    // With heavy spilling on a slow-disk-relative workload, compressing
    // spills should reduce total time (our disk is slow relative to the
    // light compression CPU cost).
    let s = space();
    let cluster = ClusterSpec::cluster_a();
    let mut plan = JobPlan::example_shuffle_job(8 << 30);
    plan.stages[1].working_set_factor = 3.0;
    let mut on = s.default_conf();
    on.set(&s, Knob::ExecutorMemoryGb, 1.0);
    on.set(&s, Knob::ShuffleSpillCompress, 1.0);
    let mut off = on.clone();
    off.set(&s, Knob::ShuffleSpillCompress, 0.0);
    let r_on = simulate(&cluster, &on, &plan, 3);
    let r_off = simulate(&cluster, &off, &plan, 3);
    assert!(r_on.stages[1].spill_bytes > 0, "test needs spills to trigger");
    assert!(
        r_on.total_time_s < r_off.total_time_s,
        "compressed spills {} !< raw {}",
        r_on.total_time_s,
        r_off.total_time_s
    );
}

#[test]
fn more_driver_cores_cut_scheduling_delay_on_many_task_stages() {
    let s = space();
    let cluster = ClusterSpec::cluster_c();
    let mut plan = JobPlan::example_shuffle_job(16 << 30);
    plan.stages[0].skew_sigma = 0.0;
    plan.stages[1].skew_sigma = 0.0;
    let mut one = s.default_conf();
    one.set(&s, Knob::DriverCores, 1.0);
    one.set(&s, Knob::DefaultParallelism, 512.0);
    one.set(&s, Knob::FilesMaxPartitionMb, 16.0); // ~1000 scan tasks
    let mut eight = one.clone();
    eight.set(&s, Knob::DriverCores, 8.0);
    let t1 = simulate(&cluster, &one, &plan, 5).total_time_s;
    let t8 = simulate(&cluster, &eight, &plan, 5).total_time_s;
    assert!(t8 < t1, "8 driver cores {t8} !< 1 core {t1}");
}

#[test]
fn driver_oom_on_huge_results_with_small_driver() {
    let s = space();
    let mut conf = s.default_conf();
    conf.set(&s, Knob::DriverMemoryGb, 1.0);
    conf.set(&s, Knob::DriverMaxResultSizeMb, 4096.0);
    let mut plan = JobPlan::example_shuffle_job(1 << 30);
    plan.stages[1].result_bytes = 3 << 30; // 3 GB collect into 1 GB driver
    let r = simulate(&ClusterSpec::cluster_b(), &conf, &plan, 2);
    assert_eq!(r.failure, Some(FailureReason::DriverOom));
}

#[test]
fn preflight_rejects_each_failure_class() {
    let s = space();
    let cluster = ClusterSpec::cluster_c();
    // Class 1: unsatisfiable allocation.
    let mut huge = s.default_conf();
    huge.set(&s, Knob::ExecutorMemoryGb, 32.0);
    assert_eq!(preflight(&cluster, &huge, 1 << 30), Err(FailureReason::InfeasibleAllocation));
    // Class 2: partitions cannot fit the per-task heap share.
    let mut tiny_heap = s.default_conf();
    tiny_heap.set(&s, Knob::ExecutorMemoryGb, 1.0);
    tiny_heap.set(&s, Knob::ExecutorCores, 16.0);
    tiny_heap.set(&s, Knob::DefaultParallelism, 8.0);
    assert_eq!(preflight(&cluster, &tiny_heap, 64 << 30), Err(FailureReason::ExecutorOom));
    // Default conf on small data passes.
    assert!(preflight(&cluster, &s.default_conf(), 64 << 20).is_ok());
}

#[test]
fn preflight_scan_bound_uses_max_partition_bytes() {
    let s = space();
    let cluster = ClusterSpec::cluster_a();
    let mut conf = s.default_conf();
    conf.set(&s, Knob::ExecutorMemoryGb, 1.0);
    conf.set(&s, Knob::ExecutorCores, 16.0);
    conf.set(&s, Knob::DefaultParallelism, 512.0); // shuffle path is fine
    conf.set(&s, Knob::FilesMaxPartitionMb, 512.0); // scan path is not
    assert!(preflight(&cluster, &conf, 8 << 30).is_err());
    conf.set(&s, Knob::FilesMaxPartitionMb, 16.0);
    assert!(preflight(&cluster, &conf, 8 << 30).is_ok());
}

#[test]
fn cache_source_without_prior_cache_degrades_gracefully() {
    // Reading InputSource::Cache when nothing was cached treats the
    // last_cached_fraction default (1.0) as a full hit; the engine must
    // not panic and must produce finite time.
    let mut stage =
        StagePlan::new("read-cache", OpDag::chain(&[OpKind::Cache, OpKind::Map]), 1 << 28);
    stage.input = InputSource::Cache;
    let plan = JobPlan { app_name: "x".into(), stages: vec![stage] };
    let r = simulate(&ClusterSpec::cluster_a(), &space().default_conf(), &plan, 1);
    assert!(r.ok());
    assert!(r.total_time_s.is_finite());
}

#[test]
fn stage_stats_expose_monitor_view() {
    let plan = JobPlan::example_shuffle_job(2 << 30);
    let r = simulate(&ClusterSpec::cluster_b(), &space().default_conf(), &plan, 4);
    assert_eq!(r.stages.len(), 2);
    assert_eq!(r.stages[0].shuffle_read_bytes, 0);
    assert!(r.stages[1].shuffle_read_bytes > 0);
    // Compressed shuffle write is smaller than logical input.
    assert!(r.stages[0].shuffle_write_bytes < plan.stages[0].shuffle_write_bytes);
    assert!(r.stages.iter().all(|s| s.num_tasks > 0));
}

//! Pins the cost of observability on the simulator hot path.
//!
//! Two guarantees, one per test:
//!
//! 1. `simulate` (which routes through `simulate_obs` with everything
//!    disabled) stays within 5 % of the instrumented path's *disabled*
//!    branch — i.e. threading `SimObs` through the engine did not tax the
//!    uninstrumented caller.
//! 2. Running with tracing *and* metrics enabled stays within 5 % of the
//!    uninstrumented run (the acceptance bound for this feature).
//!
//! Wall-clock comparisons are noisy, so both tests interleave the two
//! paths batch by batch and compare the *median of per-batch ratios*:
//! clock-frequency drift and scheduler hiccups hit adjacent batches
//! equally and cancel out of the ratio. The measured configuration is the
//! steady-state one dataset builds run with — standard-detail tracing
//! (run + stage spans; per-wave spans are the fine tier) and aggregate
//! metrics (per-task histograms ride the opt-in `collect_tasks` tier) —
//! so the hot task loop pays nothing per task and the per-run fixed cost
//! (spans, counter updates, one histogram batch flush) amortizes over a
//! job large enough to launch thousands of tasks.

use lite_sparksim::exec::{simulate, simulate_obs, SimObs};
use lite_sparksim::plan::JobPlan;
use lite_sparksim::{ClusterSpec, ConfSpace};
use std::time::Instant;

const BATCHES: usize = 41;
const RUNS_PER_BATCH: u64 = 10;
const JOB_BYTES: u64 = 256 << 30;

/// Median of per-batch wall-clock ratios `probe / base`. The two closures
/// run back to back inside every batch, so slow drift in machine speed
/// cancels out of each ratio instead of biasing one side.
fn median_paired_ratio(attempt: u64, base: &dyn Fn(u64), probe: &dyn Fn(u64)) -> f64 {
    let mut ratios = Vec::with_capacity(BATCHES);
    for b in 0..BATCHES as u64 {
        let seed0 = (attempt * BATCHES as u64 + b) * RUNS_PER_BATCH;
        let t0 = Instant::now();
        for i in 0..RUNS_PER_BATCH {
            base(seed0 + i);
        }
        let base_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        for i in 0..RUNS_PER_BATCH {
            probe(seed0 + i);
        }
        ratios.push(t1.elapsed().as_secs_f64() / base_s);
    }
    ratios.sort_by(f64::total_cmp);
    ratios[BATCHES / 2]
}

/// Smallest paired-ratio median over up to three measurement attempts.
/// A sustained burst of noise (CPU steal on a shared box) can corrupt a
/// majority of one attempt's batches and inflate its median, but it
/// cannot make a genuinely slow path measure fast three times in a row —
/// so the minimum is a faithful upper bound on the true overhead.
fn robust_ratio(base: &dyn Fn(u64), probe: &dyn Fn(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for attempt in 0..3 {
        best = best.min(median_paired_ratio(attempt, base, probe));
        if best < 1.04 {
            break;
        }
    }
    best
}

#[test]
fn tracing_and_metrics_overhead_is_below_five_percent() {
    let cluster = ClusterSpec::cluster_b();
    let conf = ConfSpace::table_iv().default_conf();
    let plan = JobPlan::example_shuffle_job(JOB_BYTES);

    let tracer = lite_obs::Tracer::new();
    let registry = lite_obs::Registry::new();
    let obs = SimObs {
        tracer: tracer.clone(),
        metrics: Some(lite_sparksim::SimMetrics::register(&registry)),
        collect_tasks: false,
    };

    // Warm up caches and the allocator on both paths.
    for i in 0..50 {
        std::hint::black_box(simulate(&cluster, &conf, &plan, i));
        std::hint::black_box(simulate_obs(&cluster, &conf, &plan, i, &obs));
    }
    tracer.take_finished();

    let ratio = robust_ratio(
        &|seed| {
            std::hint::black_box(simulate(&cluster, &conf, &plan, seed));
        },
        &|seed| {
            std::hint::black_box(simulate_obs(&cluster, &conf, &plan, seed, &obs));
            // Keep the span buffer from growing without bound, as a
            // long-lived caller would.
            if seed % 100 == 0 {
                tracer.take_finished();
            }
        },
    );
    assert!(
        ratio < 1.05,
        "instrumented simulate is {:.1}% slower than plain (median paired batch ratio \
         {ratio:.4}); the budget is 5%",
        (ratio - 1.0) * 100.0,
    );
    // Sanity: the instrumented path actually recorded something.
    assert!(registry.snapshot().counter("sim.runs").unwrap_or(0) > 0);
}

#[test]
fn disabled_observability_is_free_for_plain_simulate() {
    let cluster = ClusterSpec::cluster_b();
    let conf = ConfSpace::table_iv().default_conf();
    let plan = JobPlan::example_shuffle_job(JOB_BYTES);
    let disabled = SimObs::disabled();

    for i in 0..50 {
        std::hint::black_box(simulate(&cluster, &conf, &plan, i));
    }
    // These are the same code path; the paired-batch median holds well
    // under the bound on anything but a thrashing machine.
    let ratio = robust_ratio(
        &|seed| {
            std::hint::black_box(simulate(&cluster, &conf, &plan, seed));
        },
        &|seed| {
            std::hint::black_box(simulate_obs(&cluster, &conf, &plan, seed, &disabled));
        },
    );
    assert!(
        ratio < 1.05,
        "disabled-obs path is {:.1}% slower than simulate()",
        (ratio - 1.0) * 100.0
    );
}

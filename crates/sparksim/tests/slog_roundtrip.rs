//! Property tests for the SLOG wire format: arbitrary event sequences must
//! survive encode/decode for both versions, and version auto-selection must
//! keep v1-vocabulary streams in the v1 format.

use lite_sparksim::eventlog::{decode, emit_v2, encode, encode_v2, Event};
use lite_sparksim::exec::{simulate_obs, SimObs};
use lite_sparksim::plan::{JobPlan, OpDag, OpKind};
use lite_sparksim::{ClusterSpec, ConfSpace};
use proptest::prelude::*;

fn arb_dag() -> impl Strategy<Value = OpDag> {
    let ops = OpKind::all();
    let node = (0..ops.len()).prop_map(move |i| ops[i]);
    (prop::collection::vec(node, 0..8), prop::collection::vec((0usize..64, 0usize..64), 0..12))
        .prop_map(|(nodes, edges)| OpDag { nodes, edges })
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        ("[a-zA-Z0-9 _.-]{0,24}", any::<u32>())
            .prop_map(|(app, stages)| Event::AppStart { app, stages }),
        (any::<u32>(), "[a-zA-Z0-9 _.-]{0,24}", arb_dag())
            .prop_map(|(stage_id, name, dag)| Event::StageSubmitted { stage_id, name, dag }),
        (any::<u32>(), 0.0f64..1e9, any::<u32>(), any::<u64>()).prop_map(
            |(stage_id, duration_s, num_tasks, input_bytes)| Event::StageCompleted {
                stage_id,
                duration_s,
                num_tasks,
                input_bytes,
            }
        ),
        (any::<bool>(), 0.0f64..1e9)
            .prop_map(|(success, total_time_s)| Event::AppEnd { success, total_time_s }),
        (any::<u32>(), any::<u32>(), any::<u32>(), 0.0f64..1e9).prop_map(
            |(stage_id, index, wave, start_s)| Event::TaskStart { stage_id, index, wave, start_s }
        ),
        (
            (any::<u32>(), any::<u32>(), any::<u32>(), 0.0f64..1e9),
            (any::<u64>(), 0.0f64..1e6, any::<u64>(), any::<u64>()),
        )
            .prop_map(
                |(
                    (stage_id, index, wave, duration_s),
                    (spill_bytes, gc_time_s, shuffle_read_bytes, shuffle_write_bytes),
                )| Event::TaskEnd {
                    stage_id,
                    index,
                    wave,
                    duration_s,
                    spill_bytes,
                    gc_time_s,
                    shuffle_read_bytes,
                    shuffle_write_bytes,
                }
            ),
        any::<u64>().prop_map(|trace_id| Event::TraceId { trace_id }),
    ]
}

proptest! {
    #[test]
    fn random_event_sequences_roundtrip(events in prop::collection::vec(arb_event(), 0..40)) {
        // Auto-versioned encoding.
        let bytes = encode(&events);
        let expect_v2 = events.iter().any(Event::is_v2_only);
        prop_assert_eq!(&bytes[..4], if expect_v2 { b"SLG2" } else { b"SLOG" });
        prop_assert_eq!(decode(bytes).unwrap(), events.clone());
        // Forced-v2 encoding decodes identically too.
        prop_assert_eq!(decode(encode_v2(&events)).unwrap(), events);
    }

    #[test]
    fn truncating_any_log_never_panics(events in prop::collection::vec(arb_event(), 1..12),
                                       frac in 0.0f64..1.0) {
        let bytes = encode_v2(&events);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        // Every strict prefix must be a decode error, never a panic or a
        // silently shortened event list.
        prop_assert!(decode(bytes.slice(..cut)).is_err());
    }
}

#[test]
fn simulated_run_roundtrips_with_task_records() {
    let plan = JobPlan::example_shuffle_job(512 << 20);
    let obs = SimObs { collect_tasks: true, ..SimObs::disabled() };
    let result = simulate_obs(
        &ClusterSpec::cluster_b(),
        &ConfSpace::table_iv().default_conf(),
        &plan,
        9,
        &obs,
    );
    assert!(result.ok(), "{:?}", result.failure);
    let events = emit_v2(&plan, &result);
    assert_eq!(decode(encode(&events)).unwrap(), events);
    // Task records reconstruct the per-stage task counts.
    for stats in &result.stages {
        let ends = events
            .iter()
            .filter(|e| matches!(e, Event::TaskEnd { stage_id, .. } if *stage_id == stats.stage_id as u32))
            .count();
        assert_eq!(ends, stats.num_tasks as usize);
    }
}

//! Spark-style event logs (the SLOG wire format).
//!
//! Real LITE parses the JSON event logs Spark writes per application to
//! recover the stage-level DAG scheduler view. The simulator emits the same
//! information through a compact binary event log; `lite-workloads`'
//! instrumentation step parses it back. Round-tripping through an explicit
//! wire format (rather than passing structs around) keeps the feature
//! extractor honest: it only sees what a log would contain.
//!
//! Two format versions share one record vocabulary:
//!
//! | magic | version | records |
//! |---|---|---|
//! | `SLOG` | v1 | tags 1–4 (app/stage granularity) |
//! | `SLG2` | v2 | tags 1–7 (v1 plus task granularity and trace ids) |
//!
//! | tag | record | payload (little-endian) |
//! |---|---|---|
//! | 1 | `AppStart` | str app, u32 stages |
//! | 2 | `StageSubmitted` | u32 stage_id, str name, u32 n, n×u16 op, u32 e, e×(u32,u32) edge |
//! | 3 | `StageCompleted` | u32 stage_id, f64 duration_s, u32 num_tasks, u64 input_bytes |
//! | 4 | `AppEnd` | u8 success, f64 total_time_s |
//! | 5 | `TaskStart` | u32 stage_id, u32 index, u32 wave, f64 start_s |
//! | 6 | `TaskEnd` | u32 stage_id, u32 index, u32 wave, f64 duration_s, u64 spill, f64 gc_s, u64 shuffle_read, u64 shuffle_write |
//! | 7 | `TraceId` | u64 trace_id |
//!
//! `str` is `u32` length + UTF-8 bytes. [`decode`] dispatches on the magic,
//! so every v1 buffer ever written keeps decoding unchanged, and a v1
//! decoder pass over a v2 buffer fails loudly on the magic rather than
//! mis-parsing task records.

use crate::plan::{JobPlan, OpDag, OpKind};
use crate::result::RunResult;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Event-log records, in emission order.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Application started: name, number of planned stages.
    AppStart { app: String, stages: u32 },
    /// Stage submitted with its operator DAG.
    StageSubmitted { stage_id: u32, name: String, dag: OpDag },
    /// Stage completed.
    StageCompleted { stage_id: u32, duration_s: f64, num_tasks: u32, input_bytes: u64 },
    /// Application finished (success flag + total time).
    AppEnd { success: bool, total_time_s: f64 },
    /// Task launched (v2 only): position within its stage and the
    /// simulated launch time relative to the stage start.
    TaskStart { stage_id: u32, index: u32, wave: u32, start_s: f64 },
    /// Task finished (v2 only): runtime plus the per-task resource signals
    /// the Spark UI exposes per task.
    TaskEnd {
        /// Stage the task belongs to.
        stage_id: u32,
        /// Task index within the stage (launch order).
        index: u32,
        /// Scheduling wave the task ran in.
        wave: u32,
        /// Simulated task duration in seconds.
        duration_s: f64,
        /// Bytes spilled to disk.
        spill_bytes: u64,
        /// Seconds lost to garbage collection.
        gc_time_s: f64,
        /// Shuffle bytes fetched.
        shuffle_read_bytes: u64,
        /// Shuffle bytes written.
        shuffle_write_bytes: u64,
    },
    /// The serve-plane request trace id this log was produced under (v2
    /// only). Lets tail-forensics exemplars be joined against the task
    /// logs of the run that answered them.
    TraceId {
        /// The nonzero tail-forensics trace id.
        trace_id: u64,
    },
}

impl Event {
    /// Whether this record requires the v2 format.
    pub fn is_v2_only(&self) -> bool {
        matches!(self, Event::TaskStart { .. } | Event::TaskEnd { .. } | Event::TraceId { .. })
    }
}

const TAG_APP_START: u8 = 1;
const TAG_STAGE_SUBMITTED: u8 = 2;
const TAG_STAGE_COMPLETED: u8 = 3;
const TAG_APP_END: u8 = 4;
const TAG_TASK_START: u8 = 5;
const TAG_TASK_END: u8 = 6;
const TAG_TRACE_ID: u8 = 7;

const MAGIC_V1: &[u8; 4] = b"SLOG";
const MAGIC_V2: &[u8; 4] = b"SLG2";

/// Emit the event log for a finished run (v1 vocabulary: app and stage
/// records only).
pub fn emit(plan: &JobPlan, result: &RunResult) -> Vec<Event> {
    let mut events = Vec::with_capacity(plan.stages.len() * 2 + 2);
    events.push(Event::AppStart { app: plan.app_name.clone(), stages: plan.stages.len() as u32 });
    for stats in &result.stages {
        let stage = &plan.stages[stats.stage_id];
        events.push(Event::StageSubmitted {
            stage_id: stats.stage_id as u32,
            name: stage.name.clone(),
            dag: stage.ops.clone(),
        });
        events.push(Event::StageCompleted {
            stage_id: stats.stage_id as u32,
            duration_s: stats.duration_s,
            num_tasks: stats.num_tasks,
            input_bytes: stats.input_bytes,
        });
    }
    events.push(Event::AppEnd { success: result.ok(), total_time_s: result.total_time_s });
    events
}

/// Emit a v2 event log: [`emit`] plus `TaskStart`/`TaskEnd` records for
/// every per-task record present in the result (i.e. runs simulated with
/// `SimObs::collect_tasks`). Per stage the order mirrors Spark's log:
/// `StageSubmitted`, all task records in launch order, `StageCompleted`.
pub fn emit_v2(plan: &JobPlan, result: &RunResult) -> Vec<Event> {
    let tasks: usize = result.stages.iter().map(|s| s.tasks.len()).sum();
    let mut events = Vec::with_capacity(plan.stages.len() * 2 + 2 + tasks * 2);
    events.push(Event::AppStart { app: plan.app_name.clone(), stages: plan.stages.len() as u32 });
    for stats in &result.stages {
        let stage = &plan.stages[stats.stage_id];
        events.push(Event::StageSubmitted {
            stage_id: stats.stage_id as u32,
            name: stage.name.clone(),
            dag: stage.ops.clone(),
        });
        for t in &stats.tasks {
            events.push(Event::TaskStart {
                stage_id: stats.stage_id as u32,
                index: t.index,
                wave: t.wave,
                start_s: t.start_s,
            });
        }
        for t in &stats.tasks {
            events.push(Event::TaskEnd {
                stage_id: stats.stage_id as u32,
                index: t.index,
                wave: t.wave,
                duration_s: t.duration_s,
                spill_bytes: t.spill_bytes,
                gc_time_s: t.gc_time_s,
                shuffle_read_bytes: t.shuffle_read_bytes,
                shuffle_write_bytes: t.shuffle_write_bytes,
            });
        }
        events.push(Event::StageCompleted {
            stage_id: stats.stage_id as u32,
            duration_s: stats.duration_s,
            num_tasks: stats.num_tasks,
            input_bytes: stats.input_bytes,
        });
    }
    events.push(Event::AppEnd { success: result.ok(), total_time_s: result.total_time_s });
    events
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(DecodeError::Truncated);
    }
    let bytes = buf.copy_to_bytes(n);
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
}

/// Encode events into the binary log format, choosing the oldest version
/// that can represent them: streams without task records produce
/// byte-identical v1 (`SLOG`) output, streams with task records produce v2
/// (`SLG2`).
pub fn encode(events: &[Event]) -> Bytes {
    if events.iter().any(Event::is_v2_only) {
        encode_v2(events)
    } else {
        encode_with_magic(events, MAGIC_V1)
    }
}

/// Encode events as v2 (`SLG2`) regardless of content.
pub fn encode_v2(events: &[Event]) -> Bytes {
    encode_with_magic(events, MAGIC_V2)
}

/// [`emit_v2`] stamped with the serve-plane trace id that triggered the
/// run: the `TraceId` record leads the log, so a tail exemplar can be
/// joined to the task-level view of the run behind it.
pub fn emit_v2_traced(plan: &JobPlan, result: &RunResult, trace_id: u64) -> Vec<Event> {
    let mut events = Vec::with_capacity(1);
    events.push(Event::TraceId { trace_id });
    events.extend(emit_v2(plan, result));
    events
}

fn encode_with_magic(events: &[Event], magic: &[u8; 4]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(magic);
    buf.put_u32_le(events.len() as u32);
    for ev in events {
        debug_assert!(magic == MAGIC_V2 || !ev.is_v2_only(), "task record in a v1 log");
        match ev {
            Event::AppStart { app, stages } => {
                buf.put_u8(TAG_APP_START);
                put_str(&mut buf, app);
                buf.put_u32_le(*stages);
            }
            Event::StageSubmitted { stage_id, name, dag } => {
                buf.put_u8(TAG_STAGE_SUBMITTED);
                buf.put_u32_le(*stage_id);
                put_str(&mut buf, name);
                buf.put_u32_le(dag.nodes.len() as u32);
                for n in &dag.nodes {
                    buf.put_u16_le(n.id() as u16);
                }
                buf.put_u32_le(dag.edges.len() as u32);
                for &(u, v) in &dag.edges {
                    buf.put_u32_le(u as u32);
                    buf.put_u32_le(v as u32);
                }
            }
            Event::StageCompleted { stage_id, duration_s, num_tasks, input_bytes } => {
                buf.put_u8(TAG_STAGE_COMPLETED);
                buf.put_u32_le(*stage_id);
                buf.put_f64_le(*duration_s);
                buf.put_u32_le(*num_tasks);
                buf.put_u64_le(*input_bytes);
            }
            Event::AppEnd { success, total_time_s } => {
                buf.put_u8(TAG_APP_END);
                buf.put_u8(u8::from(*success));
                buf.put_f64_le(*total_time_s);
            }
            Event::TaskStart { stage_id, index, wave, start_s } => {
                buf.put_u8(TAG_TASK_START);
                buf.put_u32_le(*stage_id);
                buf.put_u32_le(*index);
                buf.put_u32_le(*wave);
                buf.put_f64_le(*start_s);
            }
            Event::TaskEnd {
                stage_id,
                index,
                wave,
                duration_s,
                spill_bytes,
                gc_time_s,
                shuffle_read_bytes,
                shuffle_write_bytes,
            } => {
                buf.put_u8(TAG_TASK_END);
                buf.put_u32_le(*stage_id);
                buf.put_u32_le(*index);
                buf.put_u32_le(*wave);
                buf.put_f64_le(*duration_s);
                buf.put_u64_le(*spill_bytes);
                buf.put_f64_le(*gc_time_s);
                buf.put_u64_le(*shuffle_read_bytes);
                buf.put_u64_le(*shuffle_write_bytes);
            }
            Event::TraceId { trace_id } => {
                buf.put_u8(TAG_TRACE_ID);
                buf.put_u64_le(*trace_id);
            }
        }
    }
    buf.freeze()
}

/// Errors produced while decoding an event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Missing or wrong magic header.
    BadMagic,
    /// Buffer ended mid-record.
    Truncated,
    /// Unknown record tag.
    BadTag(u8),
    /// Unknown operation id.
    BadOp(u16),
    /// Invalid UTF-8 in a string field.
    BadUtf8,
}

/// Decode a binary event log of either version, dispatching on the magic.
/// v1 (`SLOG`) buffers decode exactly as they always have; task-record
/// tags inside a v1 buffer are rejected as [`DecodeError::BadTag`].
pub fn decode(mut buf: Bytes) -> Result<Vec<Event>, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::BadMagic);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    let v2 = match &magic {
        m if m == MAGIC_V1 => false,
        m if m == MAGIC_V2 => true,
        _ => return Err(DecodeError::BadMagic),
    };
    let n = buf.get_u32_le() as usize;
    let ops = OpKind::all();
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let tag = buf.get_u8();
        let ev = match tag {
            TAG_APP_START => {
                let app = get_str(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                Event::AppStart { app, stages: buf.get_u32_le() }
            }
            TAG_STAGE_SUBMITTED => {
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let stage_id = buf.get_u32_le();
                let name = get_str(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let nn = buf.get_u32_le() as usize;
                if buf.remaining() < nn * 2 {
                    return Err(DecodeError::Truncated);
                }
                let mut nodes = Vec::with_capacity(nn);
                for _ in 0..nn {
                    let id = buf.get_u16_le();
                    let op = *ops.get(id as usize).ok_or(DecodeError::BadOp(id))?;
                    nodes.push(op);
                }
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let ne = buf.get_u32_le() as usize;
                if buf.remaining() < ne * 8 {
                    return Err(DecodeError::Truncated);
                }
                let mut edges = Vec::with_capacity(ne);
                for _ in 0..ne {
                    let u = buf.get_u32_le() as usize;
                    let v = buf.get_u32_le() as usize;
                    edges.push((u, v));
                }
                Event::StageSubmitted { stage_id, name, dag: OpDag { nodes, edges } }
            }
            TAG_STAGE_COMPLETED => {
                if buf.remaining() < 4 + 8 + 4 + 8 {
                    return Err(DecodeError::Truncated);
                }
                Event::StageCompleted {
                    stage_id: buf.get_u32_le(),
                    duration_s: buf.get_f64_le(),
                    num_tasks: buf.get_u32_le(),
                    input_bytes: buf.get_u64_le(),
                }
            }
            TAG_APP_END => {
                if buf.remaining() < 9 {
                    return Err(DecodeError::Truncated);
                }
                Event::AppEnd { success: buf.get_u8() != 0, total_time_s: buf.get_f64_le() }
            }
            TAG_TASK_START if v2 => {
                if buf.remaining() < 4 + 4 + 4 + 8 {
                    return Err(DecodeError::Truncated);
                }
                Event::TaskStart {
                    stage_id: buf.get_u32_le(),
                    index: buf.get_u32_le(),
                    wave: buf.get_u32_le(),
                    start_s: buf.get_f64_le(),
                }
            }
            TAG_TASK_END if v2 => {
                if buf.remaining() < 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8 {
                    return Err(DecodeError::Truncated);
                }
                Event::TaskEnd {
                    stage_id: buf.get_u32_le(),
                    index: buf.get_u32_le(),
                    wave: buf.get_u32_le(),
                    duration_s: buf.get_f64_le(),
                    spill_bytes: buf.get_u64_le(),
                    gc_time_s: buf.get_f64_le(),
                    shuffle_read_bytes: buf.get_u64_le(),
                    shuffle_write_bytes: buf.get_u64_le(),
                }
            }
            TAG_TRACE_ID if v2 => {
                if buf.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                Event::TraceId { trace_id: buf.get_u64_le() }
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::conf::ConfSpace;
    use crate::exec::simulate;

    #[test]
    fn emit_encode_decode_roundtrip() {
        let plan = JobPlan::example_shuffle_job(128 << 20);
        let result =
            simulate(&ClusterSpec::cluster_a(), &ConfSpace::table_iv().default_conf(), &plan, 1);
        let events = emit(&plan, &result);
        let decoded = decode(encode(&events)).unwrap();
        assert_eq!(events, decoded);
        // First event is AppStart, last is AppEnd with success.
        assert!(matches!(decoded.first(), Some(Event::AppStart { .. })));
        assert!(matches!(decoded.last(), Some(Event::AppEnd { success: true, .. })));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(Bytes::from_static(b"nope")), Err(DecodeError::BadMagic));
        assert_eq!(decode(Bytes::from_static(b"XXXX\x01\x00\x00\x00")), Err(DecodeError::BadMagic));
        // Valid magic, truncated body.
        let mut buf = BytesMut::new();
        buf.put_slice(b"SLOG");
        buf.put_u32_le(1);
        assert_eq!(decode(buf.freeze()), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"SLOG");
        buf.put_u32_le(1);
        buf.put_u8(99);
        assert_eq!(decode(buf.freeze()), Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn failed_runs_log_only_started_stages() {
        let cluster = ClusterSpec::cluster_c();
        let s = ConfSpace::table_iv();
        let mut conf = s.default_conf();
        conf.set(&s, crate::conf::Knob::DefaultParallelism, 8.0);
        conf.set(&s, crate::conf::Knob::ExecutorMemoryGb, 1.0);
        let plan = JobPlan::example_shuffle_job(64 << 30);
        let result = simulate(&cluster, &conf, &plan, 3);
        assert!(!result.ok());
        let events = emit(&plan, &result);
        let submitted = events.iter().filter(|e| matches!(e, Event::StageSubmitted { .. })).count();
        assert_eq!(submitted, result.stages.len());
        assert!(matches!(events.last(), Some(Event::AppEnd { success: false, .. })));
    }

    /// A v1 buffer byte-for-byte as the seed's encoder produced it. This is
    /// a frozen regression artifact: if this test breaks, previously written
    /// logs have been orphaned.
    #[test]
    fn golden_v1_bytes_decode_unchanged() {
        let mut golden = Vec::new();
        golden.extend_from_slice(b"SLOG");
        golden.extend_from_slice(&2u32.to_le_bytes()); // two events
        golden.push(1); // AppStart
        golden.extend_from_slice(&2u32.to_le_bytes());
        golden.extend_from_slice(b"wc");
        golden.extend_from_slice(&3u32.to_le_bytes());
        golden.push(4); // AppEnd
        golden.push(1);
        golden.extend_from_slice(&42.5f64.to_le_bytes());
        let decoded = decode(Bytes::from(golden)).unwrap();
        assert_eq!(
            decoded,
            vec![
                Event::AppStart { app: "wc".into(), stages: 3 },
                Event::AppEnd { success: true, total_time_s: 42.5 },
            ]
        );
    }

    #[test]
    fn v1_streams_still_encode_as_v1() {
        let plan = JobPlan::example_shuffle_job(128 << 20);
        let result =
            simulate(&ClusterSpec::cluster_a(), &ConfSpace::table_iv().default_conf(), &plan, 1);
        let events = emit(&plan, &result);
        let bytes = encode(&events);
        assert_eq!(&bytes[..4], b"SLOG");
        assert_eq!(decode(bytes).unwrap(), events);
    }

    fn task_level_result() -> (JobPlan, RunResult) {
        let plan = JobPlan::example_shuffle_job(512 << 20);
        let obs = crate::exec::SimObs {
            tracer: lite_obs::Tracer::disabled(),
            metrics: None,
            collect_tasks: true,
        };
        let result = crate::exec::simulate_obs(
            &ClusterSpec::cluster_a(),
            &ConfSpace::table_iv().default_conf(),
            &plan,
            7,
            &obs,
        );
        assert!(result.ok(), "{:?}", result.failure);
        (plan, result)
    }

    #[test]
    fn v2_roundtrip_preserves_task_records() {
        let (plan, result) = task_level_result();
        let events = emit_v2(&plan, &result);
        let starts = events.iter().filter(|e| matches!(e, Event::TaskStart { .. })).count();
        let ends = events.iter().filter(|e| matches!(e, Event::TaskEnd { .. })).count();
        let tasks: usize = result.stages.iter().map(|s| s.tasks.len()).sum();
        assert!(tasks > 0);
        assert_eq!(starts, tasks);
        assert_eq!(ends, tasks);
        let bytes = encode(&events);
        assert_eq!(&bytes[..4], b"SLG2");
        assert_eq!(decode(bytes).unwrap(), events);
        // Forcing v2 on a v1-vocabulary stream also round-trips.
        let v1_events = emit(&plan, &result);
        assert_eq!(decode(encode_v2(&v1_events)).unwrap(), v1_events);
    }

    #[test]
    fn v1_decoder_rejects_task_tags() {
        // A task record smuggled under the v1 magic must not silently parse.
        let mut buf = BytesMut::new();
        buf.put_slice(b"SLOG");
        buf.put_u32_le(1);
        buf.put_u8(5); // TAG_TASK_START
        buf.put_u32_le(0);
        buf.put_u32_le(0);
        buf.put_u32_le(0);
        buf.put_f64_le(0.0);
        assert_eq!(decode(buf.freeze()), Err(DecodeError::BadTag(5)));
    }

    #[test]
    fn v2_roundtrip_preserves_trace_id_records() {
        let (plan, result) = task_level_result();
        let events = emit_v2_traced(&plan, &result, 0x9E3779B97F4A7C15);
        assert_eq!(events[0], Event::TraceId { trace_id: 0x9E3779B97F4A7C15 });
        let bytes = encode(&events);
        assert_eq!(&bytes[..4], b"SLG2");
        assert_eq!(decode(bytes).unwrap(), events);
    }

    #[test]
    fn v1_decoder_rejects_trace_id_tag() {
        // A trace-id record smuggled under the v1 magic must not parse.
        let mut buf = BytesMut::new();
        buf.put_slice(b"SLOG");
        buf.put_u32_le(1);
        buf.put_u8(7); // TAG_TRACE_ID
        buf.put_u64_le(42);
        assert_eq!(decode(buf.freeze()), Err(DecodeError::BadTag(7)));
        // And a truncated payload under v2 is Truncated, not a partial parse.
        let mut buf = BytesMut::new();
        buf.put_slice(b"SLG2");
        buf.put_u32_le(1);
        buf.put_u8(7);
        buf.put_u32_le(42);
        assert_eq!(decode(buf.freeze()), Err(DecodeError::Truncated));
    }

    #[test]
    fn v2_decode_rejects_truncated_and_garbage_task_records() {
        let (plan, result) = task_level_result();
        let bytes = encode(&emit_v2(&plan, &result));
        // Any strict prefix is an error, never a silent partial parse.
        for cut in [bytes.len() - 1, bytes.len() - 20, 10] {
            assert!(decode(bytes.slice(..cut)).is_err(), "prefix {cut} parsed");
        }
        // Garbage tag inside a v2 stream.
        let mut buf = BytesMut::new();
        buf.put_slice(b"SLG2");
        buf.put_u32_le(1);
        buf.put_u8(77);
        assert_eq!(decode(buf.freeze()), Err(DecodeError::BadTag(77)));
        // Truncated TaskEnd payload.
        let mut buf = BytesMut::new();
        buf.put_slice(b"SLG2");
        buf.put_u32_le(1);
        buf.put_u8(6); // TAG_TASK_END
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        assert_eq!(decode(buf.freeze()), Err(DecodeError::Truncated));
    }
}

//! Spark-style event logs.
//!
//! Real LITE parses the JSON event logs Spark writes per application to
//! recover the stage-level DAG scheduler view. The simulator emits the same
//! information through a compact binary event log; `lite-workloads`'
//! instrumentation step parses it back. Round-tripping through an explicit
//! wire format (rather than passing structs around) keeps the feature
//! extractor honest: it only sees what a log would contain.

use crate::plan::{JobPlan, OpDag, OpKind};
use crate::result::RunResult;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Event-log records, in emission order.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Application started: name, number of planned stages.
    AppStart { app: String, stages: u32 },
    /// Stage submitted with its operator DAG.
    StageSubmitted { stage_id: u32, name: String, dag: OpDag },
    /// Stage completed.
    StageCompleted { stage_id: u32, duration_s: f64, num_tasks: u32, input_bytes: u64 },
    /// Application finished (success flag + total time).
    AppEnd { success: bool, total_time_s: f64 },
}

const TAG_APP_START: u8 = 1;
const TAG_STAGE_SUBMITTED: u8 = 2;
const TAG_STAGE_COMPLETED: u8 = 3;
const TAG_APP_END: u8 = 4;

/// Emit the event log for a finished run.
pub fn emit(plan: &JobPlan, result: &RunResult) -> Vec<Event> {
    let mut events = Vec::with_capacity(plan.stages.len() * 2 + 2);
    events.push(Event::AppStart { app: plan.app_name.clone(), stages: plan.stages.len() as u32 });
    for stats in &result.stages {
        let stage = &plan.stages[stats.stage_id];
        events.push(Event::StageSubmitted {
            stage_id: stats.stage_id as u32,
            name: stage.name.clone(),
            dag: stage.ops.clone(),
        });
        events.push(Event::StageCompleted {
            stage_id: stats.stage_id as u32,
            duration_s: stats.duration_s,
            num_tasks: stats.num_tasks,
            input_bytes: stats.input_bytes,
        });
    }
    events.push(Event::AppEnd { success: result.ok(), total_time_s: result.total_time_s });
    events
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(DecodeError::Truncated);
    }
    let bytes = buf.copy_to_bytes(n);
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
}

/// Encode events into the binary log format.
pub fn encode(events: &[Event]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(b"SLOG");
    buf.put_u32_le(events.len() as u32);
    for ev in events {
        match ev {
            Event::AppStart { app, stages } => {
                buf.put_u8(TAG_APP_START);
                put_str(&mut buf, app);
                buf.put_u32_le(*stages);
            }
            Event::StageSubmitted { stage_id, name, dag } => {
                buf.put_u8(TAG_STAGE_SUBMITTED);
                buf.put_u32_le(*stage_id);
                put_str(&mut buf, name);
                buf.put_u32_le(dag.nodes.len() as u32);
                for n in &dag.nodes {
                    buf.put_u16_le(n.id() as u16);
                }
                buf.put_u32_le(dag.edges.len() as u32);
                for &(u, v) in &dag.edges {
                    buf.put_u32_le(u as u32);
                    buf.put_u32_le(v as u32);
                }
            }
            Event::StageCompleted { stage_id, duration_s, num_tasks, input_bytes } => {
                buf.put_u8(TAG_STAGE_COMPLETED);
                buf.put_u32_le(*stage_id);
                buf.put_f64_le(*duration_s);
                buf.put_u32_le(*num_tasks);
                buf.put_u64_le(*input_bytes);
            }
            Event::AppEnd { success, total_time_s } => {
                buf.put_u8(TAG_APP_END);
                buf.put_u8(u8::from(*success));
                buf.put_f64_le(*total_time_s);
            }
        }
    }
    buf.freeze()
}

/// Errors produced while decoding an event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Missing or wrong magic header.
    BadMagic,
    /// Buffer ended mid-record.
    Truncated,
    /// Unknown record tag.
    BadTag(u8),
    /// Unknown operation id.
    BadOp(u16),
    /// Invalid UTF-8 in a string field.
    BadUtf8,
}

/// Decode a binary event log.
pub fn decode(mut buf: Bytes) -> Result<Vec<Event>, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::BadMagic);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != b"SLOG" {
        return Err(DecodeError::BadMagic);
    }
    let n = buf.get_u32_le() as usize;
    let ops = OpKind::all();
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let tag = buf.get_u8();
        let ev = match tag {
            TAG_APP_START => {
                let app = get_str(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                Event::AppStart { app, stages: buf.get_u32_le() }
            }
            TAG_STAGE_SUBMITTED => {
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let stage_id = buf.get_u32_le();
                let name = get_str(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let nn = buf.get_u32_le() as usize;
                if buf.remaining() < nn * 2 {
                    return Err(DecodeError::Truncated);
                }
                let mut nodes = Vec::with_capacity(nn);
                for _ in 0..nn {
                    let id = buf.get_u16_le();
                    let op = *ops.get(id as usize).ok_or(DecodeError::BadOp(id))?;
                    nodes.push(op);
                }
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let ne = buf.get_u32_le() as usize;
                if buf.remaining() < ne * 8 {
                    return Err(DecodeError::Truncated);
                }
                let mut edges = Vec::with_capacity(ne);
                for _ in 0..ne {
                    let u = buf.get_u32_le() as usize;
                    let v = buf.get_u32_le() as usize;
                    edges.push((u, v));
                }
                Event::StageSubmitted { stage_id, name, dag: OpDag { nodes, edges } }
            }
            TAG_STAGE_COMPLETED => {
                if buf.remaining() < 4 + 8 + 4 + 8 {
                    return Err(DecodeError::Truncated);
                }
                Event::StageCompleted {
                    stage_id: buf.get_u32_le(),
                    duration_s: buf.get_f64_le(),
                    num_tasks: buf.get_u32_le(),
                    input_bytes: buf.get_u64_le(),
                }
            }
            TAG_APP_END => {
                if buf.remaining() < 9 {
                    return Err(DecodeError::Truncated);
                }
                Event::AppEnd { success: buf.get_u8() != 0, total_time_s: buf.get_f64_le() }
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::conf::ConfSpace;
    use crate::exec::simulate;

    #[test]
    fn emit_encode_decode_roundtrip() {
        let plan = JobPlan::example_shuffle_job(128 << 20);
        let result = simulate(&ClusterSpec::cluster_a(), &ConfSpace::table_iv().default_conf(), &plan, 1);
        let events = emit(&plan, &result);
        let decoded = decode(encode(&events)).unwrap();
        assert_eq!(events, decoded);
        // First event is AppStart, last is AppEnd with success.
        assert!(matches!(decoded.first(), Some(Event::AppStart { .. })));
        assert!(matches!(decoded.last(), Some(Event::AppEnd { success: true, .. })));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(Bytes::from_static(b"nope")), Err(DecodeError::BadMagic));
        assert_eq!(decode(Bytes::from_static(b"XXXX\x01\x00\x00\x00")), Err(DecodeError::BadMagic));
        // Valid magic, truncated body.
        let mut buf = BytesMut::new();
        buf.put_slice(b"SLOG");
        buf.put_u32_le(1);
        assert_eq!(decode(buf.freeze()), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"SLOG");
        buf.put_u32_le(1);
        buf.put_u8(99);
        assert_eq!(decode(buf.freeze()), Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn failed_runs_log_only_started_stages() {
        let cluster = ClusterSpec::cluster_c();
        let s = ConfSpaceTableIv::space();
        let mut conf = s.default_conf();
        conf.set(&s, crate::conf::Knob::DefaultParallelism, 8.0);
        conf.set(&s, crate::conf::Knob::ExecutorMemoryGb, 1.0);
        let plan = JobPlan::example_shuffle_job(64 << 30);
        let result = simulate(&cluster, &conf, &plan, 3);
        assert!(!result.ok());
        let events = emit(&plan, &result);
        let submitted = events.iter().filter(|e| matches!(e, Event::StageSubmitted { .. })).count();
        assert_eq!(submitted, result.stages.len());
        assert!(matches!(events.last(), Some(Event::AppEnd { success: false, .. })));
    }

    /// Helper shim so the test reads naturally.
    struct ConfSpaceTableIv;
    impl ConfSpaceTableIv {
        fn space() -> ConfSpace {
            ConfSpace::table_iv()
        }
    }
}

//! Physical job plans: stages, operator DAGs and per-stage cost profiles.
//!
//! A [`JobPlan`] is the simulator-facing description of one Spark
//! application run: an ordered list of [`StagePlan`]s separated by shuffle
//! boundaries (Spark's DAGScheduler executes such stages sequentially for a
//! single job). Each stage carries:
//!
//! * an [`OpDag`] of atomic RDD operations — the same object the paper
//!   extracts from event logs and feeds to the GCN scheduler encoder, and
//! * a cost profile (compute intensity, shuffle ratios, memory working-set
//!   factor, skew) that couples the operator mix to knob sensitivity.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Atomic RDD/DataFrame operations that label DAG nodes.
///
/// This is the vocabulary of the paper's one-hot node embedding: `S` equals
/// the number of operations seen in training, and unseen operations map to
/// an out-of-vocabulary token on the model side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OpKind {
    TextFile,
    ObjectFile,
    Parallelize,
    Map,
    MapValues,
    MapPartitions,
    FlatMap,
    Filter,
    Distinct,
    Sample,
    Union,
    ZipPartitions,
    ZipWithIndex,
    KeyBy,
    GroupByKey,
    ReduceByKey,
    CombineByKey,
    AggregateByKey,
    FoldByKey,
    SortByKey,
    RepartitionAndSort,
    PartitionBy,
    Join,
    LeftOuterJoin,
    CoGroup,
    Cartesian,
    Broadcast,
    TreeAggregate,
    TreeReduce,
    Coalesce,
    Repartition,
    Cache,
    Checkpoint,
    Collect,
    CollectAsMap,
    Count,
    Reduce,
    Fold,
    Take,
    SaveAsTextFile,
    SaveAsObjectFile,
    ShuffledRdd,
    MapPartitionsWithIndex,
    Pregel,
    AggregateMessages,
    JoinVertices,
    OuterJoinVertices,
    SubGraph,
    ConnectedComponentsOp,
    TriangleCountOp,
}

impl OpKind {
    /// Display label, matching Spark's RDD/DAG-UI naming style.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::TextFile => "textFile",
            OpKind::ObjectFile => "objectFile",
            OpKind::Parallelize => "parallelize",
            OpKind::Map => "map",
            OpKind::MapValues => "mapValues",
            OpKind::MapPartitions => "mapPartitions",
            OpKind::FlatMap => "flatMap",
            OpKind::Filter => "filter",
            OpKind::Distinct => "distinct",
            OpKind::Sample => "sample",
            OpKind::Union => "union",
            OpKind::ZipPartitions => "zipPartitions",
            OpKind::ZipWithIndex => "zipWithIndex",
            OpKind::KeyBy => "keyBy",
            OpKind::GroupByKey => "groupByKey",
            OpKind::ReduceByKey => "reduceByKey",
            OpKind::CombineByKey => "combineByKey",
            OpKind::AggregateByKey => "aggregateByKey",
            OpKind::FoldByKey => "foldByKey",
            OpKind::SortByKey => "sortByKey",
            OpKind::RepartitionAndSort => "repartitionAndSortWithinPartitions",
            OpKind::PartitionBy => "partitionBy",
            OpKind::Join => "join",
            OpKind::LeftOuterJoin => "leftOuterJoin",
            OpKind::CoGroup => "cogroup",
            OpKind::Cartesian => "cartesian",
            OpKind::Broadcast => "broadcast",
            OpKind::TreeAggregate => "treeAggregate",
            OpKind::TreeReduce => "treeReduce",
            OpKind::Coalesce => "coalesce",
            OpKind::Repartition => "repartition",
            OpKind::Cache => "cache",
            OpKind::Checkpoint => "checkpoint",
            OpKind::Collect => "collect",
            OpKind::CollectAsMap => "collectAsMap",
            OpKind::Count => "count",
            OpKind::Reduce => "reduce",
            OpKind::Fold => "fold",
            OpKind::Take => "take",
            OpKind::SaveAsTextFile => "saveAsTextFile",
            OpKind::SaveAsObjectFile => "saveAsObjectFile",
            OpKind::ShuffledRdd => "ShuffledRDD",
            OpKind::MapPartitionsWithIndex => "mapPartitionsWithIndex",
            OpKind::Pregel => "pregel",
            OpKind::AggregateMessages => "aggregateMessages",
            OpKind::JoinVertices => "joinVertices",
            OpKind::OuterJoinVertices => "outerJoinVertices",
            OpKind::SubGraph => "subgraph",
            OpKind::ConnectedComponentsOp => "connectedComponents",
            OpKind::TriangleCountOp => "triangleCount",
        }
    }

    /// All operation kinds, in a stable order.
    pub fn all() -> &'static [OpKind] {
        use OpKind::*;
        &[
            TextFile,
            ObjectFile,
            Parallelize,
            Map,
            MapValues,
            MapPartitions,
            FlatMap,
            Filter,
            Distinct,
            Sample,
            Union,
            ZipPartitions,
            ZipWithIndex,
            KeyBy,
            GroupByKey,
            ReduceByKey,
            CombineByKey,
            AggregateByKey,
            FoldByKey,
            SortByKey,
            RepartitionAndSort,
            PartitionBy,
            Join,
            LeftOuterJoin,
            CoGroup,
            Cartesian,
            Broadcast,
            TreeAggregate,
            TreeReduce,
            Coalesce,
            Repartition,
            Cache,
            Checkpoint,
            Collect,
            CollectAsMap,
            Count,
            Reduce,
            Fold,
            Take,
            SaveAsTextFile,
            SaveAsObjectFile,
            ShuffledRdd,
            MapPartitionsWithIndex,
            Pregel,
            AggregateMessages,
            JoinVertices,
            OuterJoinVertices,
            SubGraph,
            ConnectedComponentsOp,
            TriangleCountOp,
        ]
    }

    /// Stable integer id of the operation (index into [`OpKind::all`]).
    pub fn id(self) -> usize {
        OpKind::all().iter().position(|o| *o == self).expect("op in all()")
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A directed acyclic graph of atomic operations within one stage.
///
/// Nodes are RDD transformations; an edge `(u, v)` means the output of node
/// `u` feeds node `v`. This is the structure the paper's GCN encoder
/// consumes (node one-hots + adjacency).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpDag {
    /// Operation labels per node.
    pub nodes: Vec<OpKind>,
    /// Directed edges as `(from, to)` node-index pairs.
    pub edges: Vec<(usize, usize)>,
}

impl OpDag {
    /// A linear chain of operations `ops[0] -> ops[1] -> ...`.
    pub fn chain(ops: &[OpKind]) -> Self {
        let edges = (1..ops.len()).map(|i| (i - 1, i)).collect();
        OpDag { nodes: ops.to_vec(), edges }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Append a node with edges from the given predecessors; returns its id.
    pub fn push(&mut self, op: OpKind, preds: &[usize]) -> usize {
        let id = self.nodes.len();
        self.nodes.push(op);
        for &p in preds {
            assert!(p < id, "predecessor {p} must precede node {id}");
            self.edges.push((p, id));
        }
        id
    }

    /// Validate acyclicity and edge bounds (edges must go forward since
    /// nodes are appended in topological order).
    pub fn validate(&self) -> Result<(), String> {
        for &(u, v) in &self.edges {
            if u >= self.nodes.len() || v >= self.nodes.len() {
                return Err(format!("edge ({u},{v}) out of bounds for {} nodes", self.nodes.len()));
            }
            if u >= v {
                return Err(format!("edge ({u},{v}) is not topologically forward"));
            }
        }
        Ok(())
    }

    /// Fraction of nodes that are shuffle-producing operations — used by
    /// the cost model to couple the operator mix to shuffle knobs.
    pub fn shuffle_op_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let shuffles = self
            .nodes
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    OpKind::GroupByKey
                        | OpKind::ReduceByKey
                        | OpKind::CombineByKey
                        | OpKind::AggregateByKey
                        | OpKind::FoldByKey
                        | OpKind::SortByKey
                        | OpKind::RepartitionAndSort
                        | OpKind::PartitionBy
                        | OpKind::Join
                        | OpKind::LeftOuterJoin
                        | OpKind::CoGroup
                        | OpKind::Distinct
                        | OpKind::Repartition
                        | OpKind::ShuffledRdd
                )
            })
            .count();
        shuffles as f64 / self.nodes.len() as f64
    }
}

/// Where a stage reads its input from; determines partitioning and scan
/// cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputSource {
    /// Scan from distributed storage; partition count follows
    /// `spark.files.maxPartitionBytes`.
    Hdfs,
    /// Read the shuffle output of the previous stage; partition count
    /// follows `spark.default.parallelism` (or the explicit task hint).
    Shuffle,
    /// Read an RDD cached by an earlier stage (falls back to recompute when
    /// the storage pool could not hold it).
    Cache,
}

/// One stage of a job: operator DAG plus cost profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePlan {
    /// Stage name, e.g. `"map@TeraSort"`.
    pub name: String,
    /// Atomic-operation DAG (the paper's scheduler feature `G_i`).
    pub ops: OpDag,
    /// Input source of the stage.
    pub input: InputSource,
    /// Bytes read by the stage.
    pub input_bytes: u64,
    /// Bytes written to the next shuffle (0 for result stages).
    pub shuffle_write_bytes: u64,
    /// Bytes returned to the driver (collect-like actions).
    pub result_bytes: u64,
    /// CPU cycles spent per input byte (compute intensity).
    pub cycles_per_byte: f64,
    /// Fraction of compute that is memory-bandwidth-bound (0..1); drives the
    /// multi-core contention model.
    pub mem_intensity: f64,
    /// Working-set bytes per input byte for sort/aggregate buffers; drives
    /// spills and GC pressure.
    pub working_set_factor: f64,
    /// Whether the stage caches its output for later stages.
    pub cache_output: bool,
    /// Log-normal sigma of per-task time skew.
    pub skew_sigma: f64,
    /// Explicit task-count override (e.g. from a `#partitions` data
    /// feature); `None` uses the knob-derived count.
    pub num_tasks_hint: Option<u32>,
}

impl StagePlan {
    /// A stage with neutral cost parameters reading `input_bytes` from HDFS.
    pub fn new(name: impl Into<String>, ops: OpDag, input_bytes: u64) -> Self {
        StagePlan {
            name: name.into(),
            ops,
            input: InputSource::Hdfs,
            input_bytes,
            shuffle_write_bytes: 0,
            result_bytes: 0,
            cycles_per_byte: 20.0,
            mem_intensity: 0.3,
            working_set_factor: 0.5,
            cache_output: false,
            skew_sigma: 0.12,
            num_tasks_hint: None,
        }
    }
}

/// A complete job: ordered stages separated by shuffle boundaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobPlan {
    /// Application name the job belongs to.
    pub app_name: String,
    /// Stages in execution order.
    pub stages: Vec<StagePlan>,
}

impl JobPlan {
    /// Validate all stage DAGs and basic volume invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("job has no stages".into());
        }
        for (i, s) in self.stages.iter().enumerate() {
            s.ops.validate().map_err(|e| format!("stage {i} ({}): {e}", s.name))?;
            if s.ops.is_empty() {
                return Err(format!("stage {i} ({}) has an empty op DAG", s.name));
            }
        }
        Ok(())
    }

    /// Total bytes scanned from HDFS across stages.
    pub fn total_input_bytes(&self) -> u64 {
        self.stages.iter().filter(|s| s.input == InputSource::Hdfs).map(|s| s.input_bytes).sum()
    }

    /// A tiny two-stage map/reduce job used in documentation examples and
    /// smoke tests: scan+map, then shuffle+reduce with a small collect.
    pub fn example_shuffle_job(input_bytes: u64) -> Self {
        let map = StagePlan {
            shuffle_write_bytes: input_bytes,
            ..StagePlan::new(
                "map",
                OpDag::chain(&[OpKind::TextFile, OpKind::Map, OpKind::KeyBy]),
                input_bytes,
            )
        };
        let mut reduce = StagePlan::new(
            "reduce",
            OpDag::chain(&[OpKind::ShuffledRdd, OpKind::ReduceByKey, OpKind::Collect]),
            input_bytes,
        );
        reduce.input = InputSource::Shuffle;
        reduce.result_bytes = (input_bytes / 1000).max(1024);
        reduce.working_set_factor = 1.2;
        JobPlan { app_name: "example".into(), stages: vec![map, reduce] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_ids_are_stable_and_unique() {
        let all = OpKind::all();
        for (i, op) in all.iter().enumerate() {
            assert_eq!(op.id(), i);
        }
        let mut labels: Vec<&str> = all.iter().map(|o| o.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len(), "duplicate op labels");
    }

    #[test]
    fn chain_builds_forward_edges() {
        let dag = OpDag::chain(&[OpKind::TextFile, OpKind::Map, OpKind::ReduceByKey]);
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.edges, vec![(0, 1), (1, 2)]);
        dag.validate().unwrap();
    }

    #[test]
    fn push_with_multiple_predecessors() {
        let mut dag = OpDag::chain(&[OpKind::TextFile, OpKind::Map]);
        let other = dag.push(OpKind::TextFile, &[]);
        let join = dag.push(OpKind::Join, &[1, other]);
        assert_eq!(join, 3);
        dag.validate().unwrap();
        assert!(dag.edges.contains(&(1, 3)));
        assert!(dag.edges.contains(&(2, 3)));
    }

    #[test]
    #[should_panic(expected = "predecessor")]
    fn push_rejects_forward_reference() {
        let mut dag = OpDag::chain(&[OpKind::TextFile]);
        dag.push(OpKind::Map, &[5]);
    }

    #[test]
    fn validate_rejects_backward_edge() {
        let dag = OpDag { nodes: vec![OpKind::Map, OpKind::Filter], edges: vec![(1, 0)] };
        assert!(dag.validate().is_err());
    }

    #[test]
    fn shuffle_fraction_reflects_mix() {
        let pure_map = OpDag::chain(&[OpKind::TextFile, OpKind::Map, OpKind::Filter]);
        assert_eq!(pure_map.shuffle_op_fraction(), 0.0);
        let heavy = OpDag::chain(&[OpKind::ShuffledRdd, OpKind::SortByKey]);
        assert_eq!(heavy.shuffle_op_fraction(), 1.0);
    }

    #[test]
    fn example_job_is_valid() {
        let job = JobPlan::example_shuffle_job(1 << 20);
        job.validate().unwrap();
        assert_eq!(job.total_input_bytes(), 1 << 20);
        assert_eq!(job.stages.len(), 2);
    }
}

//! The discrete-event execution engine.
//!
//! [`simulate`] executes a [`JobPlan`] on a [`ClusterSpec`] under a
//! [`SparkConf`], stage by stage. Within a stage, tasks are placed on
//! executor slots by an event-driven earliest-available-slot scheduler, so
//! task-time skew produces realistic straggler and wave effects. The cost
//! model ties every Table IV knob to a physical mechanism:
//!
//! | knob | mechanism |
//! |---|---|
//! | `default.parallelism`, `files.maxPartitionBytes` | task count → wave count, per-task partition size → spill/OOM |
//! | `executor.cores` | slots per executor vs memory-bandwidth contention and GC pressure |
//! | `executor.memory`/`memoryOverhead`/`instances` | executor packing feasibility, heap per task |
//! | `memory.fraction`, `memory.storageFraction` | unified-memory split → spills vs cache hit rate |
//! | `reducer.maxSizeInFlight` | fetch round-trips vs fetch-buffer memory |
//! | `shuffle.compress`, `shuffle.spill.compress` | wire/disk bytes vs codec CPU |
//! | `shuffle.file.buffer` | flush count on shuffle writes |
//! | `driver.*` | scheduling throughput, collect bottleneck, result-size failures |
//!
//! All randomness (task skew, stragglers, run noise) derives from the
//! caller's seed via per-task hash mixing, so results are deterministic and
//! independent of scheduling order.

use crate::cluster::{ClusterSpec, GB, MB};
use crate::conf::{Knob, SparkConf};
use crate::fault::{FaultInjector, FaultKind};
use crate::plan::{InputSource, JobPlan, StagePlan};
use crate::result::{FailureReason, RunResult, StageStats, TaskStats};
use lite_obs::{AttrValue, Counter, Gauge, Histogram, HistogramBatch, Registry, SynthSpan, Tracer};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reserved JVM memory before the unified pool, as in Spark (300 MB).
const RESERVED_HEAP_BYTES: f64 = 300.0 * MB;
/// Deserialization expansion factor from on-disk to in-heap records.
const DESER_FACTOR: f64 = 1.15;
/// Compression ratio achieved by the shuffle codec (lz4-like).
const COMPRESS_RATIO: f64 = 0.35;
/// CPU cycles per byte to compress.
const COMPRESS_CYCLES: f64 = 1.6;
/// CPU cycles per byte to decompress.
const DECOMPRESS_CYCLES: f64 = 0.6;
/// Fixed per-task launch overhead in seconds (deserialize closure, JIT).
const TASK_LAUNCH_S: f64 = 0.015;
/// Latency of one shuffle fetch round in seconds.
const FETCH_ROUND_S: f64 = 0.04;
/// A task OOMs when its heap demand exceeds this multiple of its share.
const OOM_HEADROOM: f64 = 3.0;

/// Executor allocation derived from knobs and cluster capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Allocation {
    /// Executors granted (≤ requested instances).
    pub executors: u32,
    /// Total task slots (`executors * executor.cores`).
    pub slots: u32,
    /// Average executors per node (density; drives shared-resource
    /// contention).
    pub execs_per_node: f64,
}

/// Compute the executor allocation for a configuration on a cluster.
///
/// The driver is co-located on node 0 and its heap+overhead is subtracted
/// there; each executor needs `executor.memory + memoryOverhead` bytes and
/// `executor.cores` cores on one node. Returns `None` when not a single
/// executor fits.
pub fn allocate(cluster: &ClusterSpec, conf: &SparkConf) -> Option<Allocation> {
    let exec_cores = conf.executor_cores().max(1);
    let footprint = (conf.executor_memory_bytes() + conf.executor_overhead_bytes()) as f64;
    let driver_footprint =
        conf.get(Knob::DriverMemoryGb) * GB + conf.get(Knob::DriverMemoryOverheadMb) * MB;
    let node_mem = cluster.mem_bytes_per_node() as f64 * 0.95;
    let mut total_cap: u64 = 0;
    for node in 0..cluster.nodes {
        let avail_mem = if node == 0 { (node_mem - driver_footprint).max(0.0) } else { node_mem };
        let by_mem = (avail_mem / footprint).floor() as u64;
        let by_cores = (cluster.cores_per_node / exec_cores) as u64;
        total_cap += by_mem.min(by_cores);
    }
    let executors = (conf.executor_instances() as u64).min(total_cap) as u32;
    if executors == 0 {
        return None;
    }
    Some(Allocation {
        executors,
        slots: executors * exec_cores,
        execs_per_node: executors as f64 / cluster.nodes as f64,
    })
}

/// Pre-flight sanity check on a configuration, mirroring the static
/// validation a Spark operator (or admission controller) performs before
/// submitting a job: the allocation must be satisfiable, and the largest
/// plausible partition (scan partitions are bounded by
/// `files.maxPartitionBytes`, shuffle partitions by
/// `input / default.parallelism`) must fit comfortably in one task's heap
/// share. Uses only statically available quantities — input size,
/// configuration, cluster — never execution feedback.
pub fn preflight(
    cluster: &ClusterSpec,
    conf: &SparkConf,
    input_bytes: u64,
) -> Result<(), FailureReason> {
    if allocate(cluster, conf).is_none() {
        return Err(FailureReason::InfeasibleAllocation);
    }
    let scan_part = (input_bytes as f64).min(conf.get(Knob::FilesMaxPartitionMb) * MB);
    let shuffle_part = input_bytes as f64 / conf.default_parallelism().max(1) as f64;
    let est = scan_part.max(shuffle_part) * DESER_FACTOR;
    let heap_per_task =
        conf.executor_memory_bytes() as f64 * 0.9 / conf.executor_cores().max(1) as f64;
    if est > 2.0 * heap_per_task {
        return Err(FailureReason::ExecutorOom);
    }
    Ok(())
}

/// SplitMix64 hash: deterministic per-task randomness independent of
/// scheduling order.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform (0,1) from a hash.
fn unit(h: u64) -> f64 {
    ((h >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Standard normal via Box–Muller on two hash draws.
fn std_normal(h: u64) -> f64 {
    let u1 = unit(mix(h));
    let u2 = unit(mix(h ^ 0xdeadbeef));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// State threaded across stages of one job.
struct JobState {
    /// Bytes of storage-pool memory currently holding cached RDDs, per
    /// executor.
    storage_used_per_exec: f64,
    /// Fraction of the most recently cached dataset that fit in storage.
    last_cached_fraction: f64,
}

/// Per-stage outcome inside the engine.
struct StageOutcome {
    stats: StageStats,
    failure: Option<FailureReason>,
    end_time: f64,
}

/// Pre-registered handles to the engine's metric instruments. Registering
/// once and cloning atomically-backed handles keeps the hot loop free of
/// name lookups.
#[derive(Clone)]
pub struct SimMetrics {
    /// Simulated runs started.
    pub runs: Counter,
    /// Runs that ended in any failure.
    pub failures: Counter,
    /// Runs killed by an executor OOM specifically.
    pub oom_failures: Counter,
    /// Tasks launched across all stages.
    pub tasks_launched: Counter,
    /// Scheduling waves executed (`ceil(tasks / slots)` per stage).
    pub waves: Counter,
    /// Tasks that hit the straggler multiplier.
    pub stragglers: Counter,
    /// Bytes spilled to disk.
    pub spill_bytes: Counter,
    /// Shuffle fetch round-trips performed by reduce tasks.
    pub shuffle_fetch_rounds: Counter,
    /// Per-stage GC time (recorded in microseconds of simulated time).
    pub gc_seconds: Histogram,
    /// Per-stage simulated duration (microseconds).
    pub stage_duration: Histogram,
    /// Per-task simulated duration (nanoseconds). Only populated when
    /// [`SimObs::collect_tasks`] is set: per-task observation is opt-in
    /// detail, like [`StageStats::tasks`] itself.
    pub task_duration: Histogram,
    /// Cached fraction observed by the most recent cache-reading stage.
    pub cache_hit_rate: Gauge,
}

impl SimMetrics {
    /// Create (or re-attach to) the engine's instruments in `registry`.
    pub fn register(registry: &Registry) -> SimMetrics {
        SimMetrics {
            runs: registry.counter("sim.runs"),
            failures: registry.counter("sim.failures"),
            oom_failures: registry.counter("sim.failures.oom"),
            tasks_launched: registry.counter("sim.tasks_launched"),
            waves: registry.counter("sim.waves"),
            stragglers: registry.counter("sim.stragglers"),
            spill_bytes: registry.counter("sim.spill_bytes"),
            shuffle_fetch_rounds: registry.counter("sim.shuffle.fetch_rounds"),
            gc_seconds: registry.histogram("sim.stage.gc_ns"),
            stage_duration: registry.histogram("sim.stage.duration_ns"),
            task_duration: registry.histogram("sim.task.duration_ns"),
            cache_hit_rate: registry.gauge("sim.cache_hit_rate"),
        }
    }
}

/// Observability configuration for a simulated run.
///
/// The default ([`SimObs::disabled`]) is fully inert: [`simulate`] routes
/// through the same code path with every instrument compiled to a cheap
/// branch, which the overhead test in `tests/obs_overhead.rs` pins below
/// 5 %.
#[derive(Clone, Default)]
pub struct SimObs {
    /// Span tracer. Disabled tracers produce inert guards.
    pub tracer: Tracer,
    /// Metric instruments, if metrics are wanted.
    pub metrics: Option<SimMetrics>,
    /// Collect per-task detail: [`TaskStats`] into each stage's
    /// [`StageStats::tasks`], plus the per-task duration histogram
    /// ([`SimMetrics::task_duration`]). Off by default: dataset builds
    /// simulate millions of tasks and only need stage aggregates.
    pub collect_tasks: bool,
}

impl SimObs {
    /// Fully inert observability (the [`simulate`] default).
    pub fn disabled() -> SimObs {
        SimObs { tracer: Tracer::disabled(), metrics: None, collect_tasks: false }
    }

    /// Spans only.
    pub fn with_tracer(tracer: Tracer) -> SimObs {
        SimObs { tracer, metrics: None, collect_tasks: false }
    }

    /// Spans, metrics and per-task statistics.
    pub fn full(tracer: Tracer, registry: &Registry) -> SimObs {
        SimObs { tracer, metrics: Some(SimMetrics::register(registry)), collect_tasks: true }
    }
}

/// Simulate a job and return its result. `seed` controls task skew,
/// stragglers and run noise; the same inputs always give the same output.
pub fn simulate(cluster: &ClusterSpec, conf: &SparkConf, plan: &JobPlan, seed: u64) -> RunResult {
    simulate_obs(cluster, conf, plan, seed, &SimObs::disabled())
}

/// [`simulate`] with observability: a `sim.run` span wrapping one
/// `sim.stage` span per executed stage (each wrapping `sim.wave` spans
/// when the tracer records fine detail, see [`Tracer::new_fine`]),
/// engine metrics, and optional per-task statistics. Passing
/// [`SimObs::disabled`] is exactly [`simulate`] — the result is identical
/// for identical inputs regardless of instrumentation.
pub fn simulate_obs(
    cluster: &ClusterSpec,
    conf: &SparkConf,
    plan: &JobPlan,
    seed: u64,
    obs: &SimObs,
) -> RunResult {
    simulate_faulted(cluster, conf, plan, seed, obs, None)
}

/// [`simulate_obs`] with fault injection. `faults: None` is exactly
/// [`simulate_obs`] — every fault point branches on the option, so the
/// healthy path stays byte-identical. With an armed injector, stages may
/// lose executors at their boundary (the survivors rerun the lost slots'
/// tasks on a shrunken slot pool), grow extra stragglers, or be forced
/// into OOM/spill regardless of their memory arithmetic. All wounds are
/// deterministic in `(injector seed, stage id, task index)`.
pub fn simulate_faulted(
    cluster: &ClusterSpec,
    conf: &SparkConf,
    plan: &JobPlan,
    seed: u64,
    obs: &SimObs,
    faults: Option<&FaultInjector>,
) -> RunResult {
    debug_assert!(plan.validate().is_ok(), "invalid plan: {:?}", plan.validate());
    let mut run_span = obs.tracer.span("sim.run");
    if run_span.is_recording() {
        run_span.attr_str("app", &plan.app_name);
        run_span.attr_u64("seed", seed);
        run_span.attr_u64("planned_stages", plan.stages.len() as u64);
    }
    if let Some(m) = &obs.metrics {
        m.runs.inc();
    }
    let Some(alloc) = allocate(cluster, conf) else {
        if let Some(m) = &obs.metrics {
            m.failures.inc();
        }
        run_span.attr_str("failure", FailureReason::InfeasibleAllocation.label());
        return RunResult {
            total_time_s: 0.0,
            stages: Vec::new(),
            failure: Some(FailureReason::InfeasibleAllocation),
            executors: 0,
            slots: 0,
        };
    };
    if run_span.is_recording() {
        run_span.attr_u64("executors", u64::from(alloc.executors));
        run_span.attr_u64("slots", u64::from(alloc.slots));
    }

    let mut state = JobState { storage_used_per_exec: 0.0, last_cached_fraction: 1.0 };
    let mut stages = Vec::with_capacity(plan.stages.len());
    let mut clock = 0.0;
    let mut failure = None;
    // Task durations accumulate locally across all stages and hit the shared
    // histogram's atomics once per run. Per-task observation rides the
    // `collect_tasks` tier: steady-state metrics are stage/run aggregates,
    // so the hot loop pays nothing per task by default.
    let mut task_hist =
        if obs.collect_tasks { obs.metrics.as_ref().map(|_| HistogramBatch::new()) } else { None };

    for (stage_id, stage) in plan.stages.iter().enumerate() {
        let mut stage_span = obs.tracer.span("sim.stage");
        let out = run_stage(
            cluster,
            conf,
            &alloc,
            stage,
            stage_id,
            &mut state,
            seed,
            obs,
            &mut task_hist,
            faults,
        );
        clock += out.end_time;
        if stage_span.is_recording() {
            stage_span.attr_u64("stage_id", stage_id as u64);
            stage_span.attr_str("name", &out.stats.name);
            stage_span.attr_u64("tasks", u64::from(out.stats.num_tasks));
            stage_span.attr_f64("sim_duration_s", out.stats.duration_s);
            stage_span.attr_u64("spill_bytes", out.stats.spill_bytes);
            stage_span.attr_f64("gc_s", out.stats.gc_time_s);
            if let Some(f) = out.failure {
                stage_span.attr_str("failure", f.label());
            }
        }
        stages.push(out.stats);
        if let Some(f) = out.failure {
            failure = Some(f);
            break;
        }
    }

    // Job-level multiplicative noise (environment jitter).
    let noise = (0.04 * std_normal(mix(seed ^ 0x5eed))).exp();
    let total_time_s = clock * noise;
    if let Some(m) = &obs.metrics {
        if let Some(b) = &task_hist {
            m.task_duration.record_batch(b);
        }
        if failure.is_some() {
            m.failures.inc();
        }
    }
    if run_span.is_recording() {
        run_span.attr_f64("sim_total_s", total_time_s);
        if let Some(f) = failure {
            run_span.attr_str("failure", f.label());
        }
    }
    RunResult { total_time_s, stages, failure, executors: alloc.executors, slots: alloc.slots }
}

/// Number of tasks a stage launches under a configuration.
pub fn stage_task_count(conf: &SparkConf, stage: &StagePlan) -> u32 {
    if let Some(n) = stage.num_tasks_hint {
        return n.max(1);
    }
    match stage.input {
        InputSource::Hdfs => {
            let part = conf.get(Knob::FilesMaxPartitionMb) * MB;
            ((stage.input_bytes as f64 / part).ceil() as u32).max(1)
        }
        InputSource::Shuffle | InputSource::Cache => conf.default_parallelism().max(1),
    }
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_stage(
    cluster: &ClusterSpec,
    conf: &SparkConf,
    alloc: &Allocation,
    stage: &StagePlan,
    stage_id: usize,
    state: &mut JobState,
    seed: u64,
    obs: &SimObs,
    task_hist: &mut Option<HistogramBatch>,
    faults: Option<&FaultInjector>,
) -> StageOutcome {
    // Per-stage fault key: depends only on the run seed and stage id, so a
    // wound reproduces regardless of what earlier stages did.
    let stage_key = mix(seed ^ 0xFA017 ^ stage_id as u64);
    let exec_cores = conf.executor_cores().max(1) as f64;
    let heap = conf.executor_memory_bytes() as f64;
    let usable = (heap - RESERVED_HEAP_BYTES).max(64.0 * MB) * conf.get(Knob::MemoryFraction);
    let storage_reserved = usable * conf.get(Knob::MemoryStorageFraction);
    // Execution may evict cached blocks down to the protected storage
    // fraction: available execution memory per executor.
    let protected_storage = state.storage_used_per_exec.min(storage_reserved);
    let exec_pool = (usable - protected_storage).max(16.0 * MB);
    let exec_mem_per_task = exec_pool / exec_cores;
    let heap_per_task = heap * 0.9 / exec_cores;

    let tasks = stage_task_count(conf, stage);
    let bytes_task = stage.input_bytes as f64 / tasks as f64;
    let out_bytes_task = stage.shuffle_write_bytes as f64 / tasks as f64;

    let ghz = cluster.cpu_ghz * 1e9;
    let slots_per_node = alloc.execs_per_node * exec_cores;
    let active_per_node = slots_per_node.min(tasks as f64 / cluster.nodes as f64).max(1.0);
    let disk_rate_task = cluster.disk_bytes_per_sec() / active_per_node;
    let net_rate_task = cluster.net_bytes_per_sec() / active_per_node;

    let inflight = conf.get(Knob::ReducerMaxSizeInFlightMb) * MB;
    let compress = conf.shuffle_compress();

    // ------------------------------------------------------------------ read
    let mut cpu_cycles = bytes_task * stage.cycles_per_byte;
    let mut io_time = 0.0;
    let mut fetch_mem = 0.0;
    let mut cache_hit = 1.0;
    let mut fetch_rounds_task = 0.0f64;
    match stage.input {
        InputSource::Hdfs => {
            io_time += bytes_task / disk_rate_task;
        }
        InputSource::Shuffle => {
            let wire = bytes_task * if compress { COMPRESS_RATIO } else { 1.0 };
            let rounds = (wire / inflight).ceil().max(1.0);
            fetch_rounds_task = rounds;
            io_time += wire / net_rate_task + rounds * FETCH_ROUND_S;
            if compress {
                cpu_cycles += bytes_task * DECOMPRESS_CYCLES;
            }
            fetch_mem = inflight.min(wire);
        }
        InputSource::Cache => {
            cache_hit = state.last_cached_fraction;
            let mem_rate = cluster.mem_bandwidth_bytes_per_sec() / active_per_node.max(1.0);
            io_time += cache_hit * bytes_task / mem_rate;
            // Misses are recomputed from lineage: disk scan + 40 % extra CPU.
            let miss = (1.0 - cache_hit) * bytes_task;
            io_time += miss / disk_rate_task;
            cpu_cycles += miss * stage.cycles_per_byte * 0.4;
        }
    }

    // --------------------------------------------------------------- memory
    let working_set = bytes_task * DESER_FACTOR * stage.working_set_factor + fetch_mem;
    let partition_heap = bytes_task * DESER_FACTOR;
    let forced_oom = faults.is_some_and(|f| f.fires(FaultKind::ForcedOom, stage_key));
    if forced_oom
        || partition_heap + working_set.min(exec_mem_per_task) > heap_per_task * OOM_HEADROOM
    {
        // Unsplittable partition blows the heap: retries won't help.
        let stats = StageStats {
            stage_id,
            name: stage.name.clone(),
            duration_s: 0.0,
            num_tasks: tasks,
            input_bytes: stage.input_bytes,
            shuffle_read_bytes: if stage.input == InputSource::Shuffle {
                stage.input_bytes
            } else {
                0
            },
            shuffle_write_bytes: 0,
            spill_bytes: 0,
            gc_time_s: 0.0,
            peak_task_memory: (partition_heap + working_set) as u64,
            cached_fraction: cache_hit,
            tasks: Vec::new(),
        };
        if let Some(m) = &obs.metrics {
            m.oom_failures.inc();
        }
        // Time burned before the 4th retry kills the job: a few waves.
        let end_time = 45.0 + 4.0 * bytes_task / disk_rate_task;
        return StageOutcome { stats, failure: Some(FailureReason::ExecutorOom), end_time };
    }

    let mut spill_per_task = (working_set - exec_mem_per_task).max(0.0);
    if faults.is_some_and(|f| f.fires(FaultKind::ForcedSpill, stage_key ^ 0x5)) {
        // The execution pool is suddenly half-evicted (a co-tenant grabbed
        // the node): half the working set hits disk no matter the headroom.
        spill_per_task = spill_per_task.max(0.5 * working_set);
    }
    if spill_per_task > 0.0 {
        let disk_spill =
            spill_per_task * if conf.shuffle_spill_compress() { COMPRESS_RATIO } else { 1.0 };
        // Spilled bytes are written once and re-read once in the merge pass.
        io_time += 2.0 * disk_spill / disk_rate_task;
        if conf.shuffle_spill_compress() {
            cpu_cycles += spill_per_task * (COMPRESS_CYCLES + DECOMPRESS_CYCLES);
        }
    }

    // -------------------------------------------------------------- shuffle write
    if out_bytes_task > 0.0 {
        let disk_out = out_bytes_task * if compress { COMPRESS_RATIO } else { 1.0 };
        if compress {
            cpu_cycles += out_bytes_task * COMPRESS_CYCLES;
        }
        let buffer = conf.get(Knob::ShuffleFileBufferKb) * 1024.0;
        let flushes = (disk_out / buffer).ceil().max(1.0);
        io_time += disk_out / disk_rate_task + flushes * 2.0e-4;
    }

    // -------------------------------------------------------------- compute
    // Memory-bound fraction contends for node memory bandwidth.
    let per_core_demand = stage.mem_intensity * 4.0e9;
    let node_demand = per_core_demand * slots_per_node;
    let contention = (node_demand / cluster.mem_bandwidth_bytes_per_sec()).max(1.0);
    let cpu_time =
        cpu_cycles / ghz * ((1.0 - stage.mem_intensity) + stage.mem_intensity * contention);

    // GC pressure: heap demand per task near the per-task heap slice slows
    // the JVM; many cores sharing one heap raise pressure further.
    let heap_demand = partition_heap + working_set.min(exec_mem_per_task) + fetch_mem;
    let pressure = heap_demand / heap_per_task;
    let gc_factor = 1.0 + 0.8 * (pressure - 0.5).max(0.0).powf(1.5);
    let base_task_s = (cpu_time * gc_factor + io_time).max(1e-4) + TASK_LAUNCH_S;
    let gc_time_task = cpu_time * (gc_factor - 1.0);

    // ------------------------------------------------------- slot scheduling
    // Driver dispatches tasks at a rate bounded by its cores.
    let driver_cores = conf.get(Knob::DriverCores).max(1.0);
    let sched_delay = tasks as f64 / (driver_cores * 220.0);

    // Executor loss at the stage boundary: a quarter of the executors (at
    // least one, never all) disappear. Their slots are gone for the whole
    // stage, and the tasks they would have run when they died rerun on the
    // survivors — extra work on a shrunken slot pool, which is exactly how
    // the loss shows up in a real Spark UI (a longer tail, not a failure).
    let mut sched_slots = alloc.slots;
    let mut rerun_tasks = 0u32;
    if let Some(f) = faults {
        if alloc.executors > 1 && f.fires(FaultKind::ExecutorLoss, stage_key ^ 0x10) {
            let cores_per_exec = (alloc.slots / alloc.executors).max(1);
            let lost_slots = (alloc.executors / 4).max(1) * cores_per_exec;
            sched_slots = alloc.slots.saturating_sub(lost_slots).max(1);
            rerun_tasks = lost_slots.min(tasks);
        }
    }

    let mut slot_heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    for s in 0..sched_slots {
        slot_heap.push(Reverse((0, s)));
    }
    // Per-task observability, kept off the critical path: wave spans are
    // fine-detail (volume proportional to simulated work, so they are
    // gated like a DEBUG log level) and aggregated in a single pass
    // (count + simulated-time bounds per wave), task-duration metrics
    // accumulate into the caller's run-level batch, and full `TaskStats`
    // records are built only when the caller asked. Tasks launch in wave
    // order, so the wave index is a running counter — no per-task division.
    let fine = obs.tracer.is_fine();
    let track_waves = fine || obs.collect_tasks;
    let wave_slots = sched_slots.max(1);
    let mut wave: u32 = 0;
    let mut wave_fill: u32 = 0;
    let mut task_stats: Vec<TaskStats> = Vec::new();
    if obs.collect_tasks {
        task_stats.reserve(tasks as usize);
    }
    let mut wave_agg: Vec<(u64, f64, f64)> = Vec::new(); // (tasks, start, end)
    let task_spill = spill_per_task as u64;
    let task_shuffle_read = if stage.input == InputSource::Shuffle { bytes_task as u64 } else { 0 };
    let task_shuffle_write = (out_bytes_task * if compress { COMPRESS_RATIO } else { 1.0 }) as u64;
    let mut stragglers = 0u64;
    let mut stage_end = 0.0f64;
    for t in 0..tasks + rerun_tasks {
        let h = mix(seed ^ mix((stage_id as u64) << 32 | t as u64));
        let sigma = stage.skew_sigma;
        let mut dur = base_task_s * (sigma * std_normal(h) - 0.5 * sigma * sigma).exp();
        // Occasional straggler (slow disk, bad JIT, skewy key) — plus any
        // the injector forces on top of the organic rate.
        if unit(mix(h ^ 0x57a6)) < 1.2 / (tasks as f64 + 8.0)
            || faults.is_some_and(|f| f.fires(FaultKind::Straggler, h))
        {
            dur *= 2.5;
            stragglers += 1;
        }
        let Reverse((free_ns, slot)) = slot_heap.pop().expect("slots non-empty");
        let start = free_ns as f64 * 1e-9;
        let end = start + dur;
        stage_end = stage_end.max(end);
        slot_heap.push(Reverse(((end * 1e9) as u64, slot)));
        if track_waves {
            if wave_fill == wave_slots {
                wave += 1;
                wave_fill = 0;
            }
            wave_fill += 1;
            if fine {
                if wave as usize == wave_agg.len() {
                    wave_agg.push((1, start, end));
                } else {
                    let agg = wave_agg.last_mut().expect("current wave aggregated");
                    agg.0 += 1;
                    agg.1 = agg.1.min(start);
                    agg.2 = agg.2.max(end);
                }
            }
            // Rerun tasks occupy slots and waves but are not *planned*
            // tasks: per-task records keep the plan's cardinality.
            if obs.collect_tasks && t < tasks {
                task_stats.push(TaskStats {
                    index: t,
                    wave,
                    start_s: start,
                    duration_s: dur,
                    spill_bytes: task_spill,
                    gc_time_s: gc_time_task * dur / base_task_s,
                    shuffle_read_bytes: task_shuffle_read,
                    shuffle_write_bytes: task_shuffle_write,
                });
            }
        }
        if let Some(b) = task_hist.as_mut() {
            b.observe_secs(dur);
        }
    }
    let duration = sched_delay + stage_end;
    let num_waves = u64::from(tasks.div_ceil(alloc.slots.max(1)));

    // One retrospective span per scheduling wave, carrying simulated-time
    // bounds; one clock read and one lock hold for the whole stage.
    if fine {
        let parent = obs.tracer.current_span_id();
        let now_us = obs.tracer.now_us();
        obs.tracer.record_batch(
            wave_agg
                .iter()
                .enumerate()
                .map(|(w, &(n, sim_start, sim_end))| SynthSpan {
                    parent,
                    name: "sim.wave",
                    start_us: now_us,
                    end_us: now_us,
                    attrs: vec![
                        ("wave", AttrValue::U64(w as u64)),
                        ("tasks", AttrValue::U64(n)),
                        ("sim_start_s", AttrValue::F64(sim_start)),
                        ("sim_end_s", AttrValue::F64(sim_end)),
                    ],
                })
                .collect(),
        );
    }

    // -------------------------------------------------------------- caching
    let mut cached_fraction = cache_hit;
    if stage.cache_output {
        let want_per_exec = stage.input_bytes as f64 * DESER_FACTOR / alloc.executors as f64;
        let room = (storage_reserved - state.storage_used_per_exec).max(0.0);
        let fit = (room / want_per_exec).min(1.0);
        state.storage_used_per_exec += want_per_exec.min(room);
        state.last_cached_fraction = fit;
        cached_fraction = fit;
    }

    // --------------------------------------------------------------- driver
    let mut failure = None;
    let mut driver_time = 0.0;
    if stage.result_bytes > 0 {
        let result = stage.result_bytes as f64;
        if result > conf.get(Knob::DriverMaxResultSizeMb) * MB {
            failure = Some(FailureReason::ResultTooLarge);
        } else if result * 2.5 > conf.get(Knob::DriverMemoryGb) * GB {
            failure = Some(FailureReason::DriverOom);
        } else {
            driver_time =
                result / cluster.net_bytes_per_sec() + result * 12.0 / (ghz * driver_cores.sqrt());
        }
    }

    let stats = StageStats {
        stage_id,
        name: stage.name.clone(),
        duration_s: duration + driver_time,
        num_tasks: tasks,
        input_bytes: stage.input_bytes,
        shuffle_read_bytes: if stage.input == InputSource::Shuffle { stage.input_bytes } else { 0 },
        shuffle_write_bytes: (stage.shuffle_write_bytes as f64
            * if compress { COMPRESS_RATIO } else { 1.0 }) as u64,
        spill_bytes: (spill_per_task * tasks as f64) as u64,
        gc_time_s: gc_time_task * tasks as f64,
        peak_task_memory: heap_demand as u64,
        cached_fraction,
        tasks: task_stats,
    };
    if let Some(m) = &obs.metrics {
        m.tasks_launched.add(u64::from(tasks + rerun_tasks));
        m.waves.add(num_waves);
        m.stragglers.add(stragglers);
        m.spill_bytes.add(stats.spill_bytes);
        m.shuffle_fetch_rounds.add((fetch_rounds_task * f64::from(tasks)) as u64);
        m.gc_seconds.record_secs(stats.gc_time_s);
        m.stage_duration.record_secs(stats.duration_s);
        if stage.input == InputSource::Cache {
            m.cache_hit_rate.set(cache_hit);
        }
    }
    StageOutcome { stats, failure, end_time: duration + driver_time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conf::ConfSpace;
    use crate::plan::{OpDag, OpKind};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn space() -> ConfSpace {
        ConfSpace::table_iv()
    }

    #[test]
    fn simulate_is_deterministic() {
        let cluster = ClusterSpec::cluster_b();
        let conf = space().default_conf();
        let plan = JobPlan::example_shuffle_job(256 << 20);
        let a = simulate(&cluster, &conf, &plan, 99);
        let b = simulate(&cluster, &conf, &plan, 99);
        assert_eq!(a, b);
        let c = simulate(&cluster, &conf, &plan, 100);
        assert_ne!(a.total_time_s, c.total_time_s);
    }

    #[test]
    fn more_data_takes_longer() {
        let cluster = ClusterSpec::cluster_b();
        let conf = space().default_conf();
        let small = simulate(&cluster, &conf, &JobPlan::example_shuffle_job(64 << 20), 1);
        let big = simulate(&cluster, &conf, &JobPlan::example_shuffle_job(2 << 30), 1);
        assert!(big.total_time_s > small.total_time_s);
    }

    #[test]
    fn allocation_respects_memory_and_cores() {
        let cluster = ClusterSpec::cluster_c(); // 16 GB nodes
        let s = space();
        let mut conf = s.default_conf();
        conf.set(&s, Knob::ExecutorMemoryGb, 32.0);
        conf.set(&s, Knob::ExecutorInstances, 8.0);
        // 32 GB executors never fit on 16 GB nodes.
        assert!(allocate(&cluster, &conf).is_none());

        conf.set(&s, Knob::ExecutorMemoryGb, 4.0);
        conf.set(&s, Knob::ExecutorCores, 8.0);
        let a = allocate(&cluster, &conf).unwrap();
        // Cores cap: 16/8 = 2 per node; 8 requested across 8 nodes is fine.
        assert_eq!(a.executors, 8);
        assert_eq!(a.slots, 64);
    }

    #[test]
    fn infeasible_allocation_fails_the_run() {
        let cluster = ClusterSpec::cluster_c();
        let s = space();
        let mut conf = s.default_conf();
        conf.set(&s, Knob::ExecutorMemoryGb, 32.0);
        let r = simulate(&cluster, &conf, &JobPlan::example_shuffle_job(1 << 20), 0);
        assert_eq!(r.failure, Some(FailureReason::InfeasibleAllocation));
        assert_eq!(r.capped_time(7200.0), 7200.0);
    }

    #[test]
    fn low_parallelism_on_big_data_causes_oom() {
        let cluster = ClusterSpec::cluster_c();
        let s = space();
        let mut conf = s.default_conf();
        conf.set(&s, Knob::DefaultParallelism, 8.0);
        conf.set(&s, Knob::ExecutorMemoryGb, 1.0);
        // 64 GB shuffled into 8 partitions -> 8 GB deserialized per task.
        let r = simulate(&cluster, &conf, &JobPlan::example_shuffle_job(64 << 30), 3);
        assert_eq!(r.failure, Some(FailureReason::ExecutorOom));
    }

    #[test]
    fn raising_parallelism_fixes_the_oom() {
        let cluster = ClusterSpec::cluster_c();
        let s = space();
        let mut conf = s.default_conf();
        conf.set(&s, Knob::DefaultParallelism, 8.0);
        conf.set(&s, Knob::ExecutorMemoryGb, 1.0);
        let plan = JobPlan::example_shuffle_job(64 << 30);
        assert!(!simulate(&cluster, &conf, &plan, 3).ok());
        conf.set(&s, Knob::DefaultParallelism, 512.0);
        conf.set(&s, Knob::ExecutorMemoryGb, 4.0);
        assert!(simulate(&cluster, &conf, &plan, 3).ok());
    }

    #[test]
    fn oversized_result_fails_driver() {
        let cluster = ClusterSpec::cluster_a();
        let s = space();
        let mut conf = s.default_conf();
        conf.set(&s, Knob::DriverMaxResultSizeMb, 256.0);
        let mut plan = JobPlan::example_shuffle_job(1 << 30);
        plan.stages[1].result_bytes = 2 << 30;
        let r = simulate(&cluster, &conf, &plan, 5);
        assert_eq!(r.failure, Some(FailureReason::ResultTooLarge));
        // Raising the limit (and driver memory) clears it.
        conf.set(&s, Knob::DriverMaxResultSizeMb, 4096.0);
        conf.set(&s, Knob::DriverMemoryGb, 16.0);
        let r2 = simulate(&cluster, &conf, &plan, 5);
        assert!(r2.ok(), "{:?}", r2.failure);
    }

    #[test]
    fn more_executors_speed_up_wide_jobs() {
        let cluster = ClusterSpec::cluster_c();
        let s = space();
        let plan = JobPlan::example_shuffle_job(8 << 30);
        let mut lo = s.default_conf();
        lo.set(&s, Knob::ExecutorInstances, 1.0);
        let mut hi = lo.clone();
        hi.set(&s, Knob::ExecutorInstances, 16.0);
        let t_lo = simulate(&cluster, &lo, &plan, 7).total_time_s;
        let t_hi = simulate(&cluster, &hi, &plan, 7).total_time_s;
        assert!(t_hi < t_lo, "16 exec {t_hi} !< 1 exec {t_lo}");
    }

    #[test]
    fn executor_cores_have_an_interior_optimum_on_membound_stages() {
        // A memory-bound stage should not scale linearly to 16 cores: GC and
        // bandwidth contention make some middle value best.
        let cluster = ClusterSpec::cluster_a();
        let s = space();
        let mut plan = JobPlan::example_shuffle_job(4 << 30);
        plan.stages[0].mem_intensity = 0.9;
        plan.stages[0].working_set_factor = 1.6;
        let mut times = Vec::new();
        for cores in [1.0, 2.0, 4.0, 8.0, 16.0] {
            let mut c = s.default_conf();
            c.set(&s, Knob::ExecutorCores, cores);
            c.set(&s, Knob::ExecutorInstances, 1.0);
            times.push(simulate(&cluster, &c, &plan, 11).total_time_s);
        }
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(best < times[0], "multi-core should beat 1 core: {times:?}");
        assert!(
            best < *times.last().unwrap() * 1.001,
            "16 cores should not be strictly optimal: {times:?}"
        );
    }

    #[test]
    fn compression_helps_on_slow_networks() {
        let cluster = ClusterSpec::cluster_c(); // 1 Gbps
        let s = space();
        let mut plan = JobPlan::example_shuffle_job(8 << 30);
        plan.stages[1].working_set_factor = 0.2;
        let mut on = s.default_conf();
        on.set(&s, Knob::ShuffleCompress, 1.0);
        let mut off = on.clone();
        off.set(&s, Knob::ShuffleCompress, 0.0);
        let t_on = simulate(&cluster, &on, &plan, 13).total_time_s;
        let t_off = simulate(&cluster, &off, &plan, 13).total_time_s;
        assert!(t_on < t_off, "compressed {t_on} !< raw {t_off}");
    }

    #[test]
    fn tiny_inflight_slows_shuffle_reads() {
        let cluster = ClusterSpec::cluster_c();
        let s = space();
        let plan = JobPlan::example_shuffle_job(16 << 30);
        let mut small = s.default_conf();
        small.set(&s, Knob::ReducerMaxSizeInFlightMb, 8.0);
        small.set(&s, Knob::DefaultParallelism, 64.0);
        // Generous memory isolates the fetch-round effect from spills.
        small.set(&s, Knob::ExecutorMemoryGb, 8.0);
        let mut big = small.clone();
        big.set(&s, Knob::ReducerMaxSizeInFlightMb, 128.0);
        let t_small = simulate(&cluster, &small, &plan, 17).total_time_s;
        let t_big = simulate(&cluster, &big, &plan, 17).total_time_s;
        assert!(t_big < t_small, "128MB inflight {t_big} !< 8MB {t_small}");
    }

    #[test]
    fn spills_appear_when_memory_fraction_is_small() {
        let cluster = ClusterSpec::cluster_a();
        let s = space();
        let mut plan = JobPlan::example_shuffle_job(4 << 30);
        plan.stages[1].working_set_factor = 2.0;
        let mut lo = s.default_conf();
        lo.set(&s, Knob::MemoryFraction, 0.3);
        lo.set(&s, Knob::ExecutorMemoryGb, 2.0);
        let mut hi = lo.clone();
        hi.set(&s, Knob::MemoryFraction, 0.9);
        hi.set(&s, Knob::ExecutorMemoryGb, 16.0);
        let r_lo = simulate(&cluster, &lo, &plan, 19);
        let r_hi = simulate(&cluster, &hi, &plan, 19);
        assert!(r_lo.stages[1].spill_bytes > 0);
        assert!(r_hi.stages[1].spill_bytes < r_lo.stages[1].spill_bytes);
    }

    #[test]
    fn caching_is_partial_when_storage_pool_is_small() {
        let cluster = ClusterSpec::cluster_a();
        let s = space();
        let mut conf = s.default_conf();
        conf.set(&s, Knob::ExecutorMemoryGb, 1.0);
        conf.set(&s, Knob::MemoryStorageFraction, 0.1);
        let mut plan = JobPlan::example_shuffle_job(8 << 30);
        plan.stages[0].cache_output = true;
        let mut cached_reader =
            StagePlan::new("iter", OpDag::chain(&[OpKind::Cache, OpKind::MapPartitions]), 8 << 30);
        cached_reader.input = InputSource::Cache;
        plan.stages.push(cached_reader);
        let r = simulate(&cluster, &conf, &plan, 23);
        assert!(r.ok(), "{:?}", r.failure);
        assert!(r.stages[0].cached_fraction < 0.5, "{}", r.stages[0].cached_fraction);
        assert_eq!(r.stages[2].cached_fraction, r.stages[0].cached_fraction);
    }

    #[test]
    fn random_confs_produce_finite_nonnegative_times() {
        let cluster = ClusterSpec::cluster_b();
        let s = space();
        let mut rng = StdRng::seed_from_u64(31);
        for i in 0..100 {
            let conf = s.sample(&mut rng);
            let bytes = rng.gen_range(1u64 << 20..8u64 << 30);
            let r = simulate(&cluster, &conf, &JobPlan::example_shuffle_job(bytes), i);
            assert!(r.total_time_s.is_finite());
            assert!(r.total_time_s >= 0.0);
            for st in &r.stages {
                assert!(st.duration_s.is_finite() && st.duration_s >= 0.0);
            }
        }
    }

    #[test]
    fn instrumentation_does_not_change_results() {
        let cluster = ClusterSpec::cluster_b();
        let conf = space().default_conf();
        let plan = JobPlan::example_shuffle_job(512 << 20);
        let plain = simulate(&cluster, &conf, &plan, 41);
        let reg = lite_obs::Registry::new();
        let obs = SimObs::full(lite_obs::Tracer::new(), &reg);
        let mut traced = simulate_obs(&cluster, &conf, &plan, 41, &obs);
        // Identical modulo the opt-in per-task records.
        for s in &mut traced.stages {
            assert_eq!(s.tasks.len(), s.num_tasks as usize);
            s.tasks.clear();
        }
        assert_eq!(plain, traced);
    }

    #[test]
    fn spans_nest_run_stage_wave() {
        let cluster = ClusterSpec::cluster_b();
        let conf = space().default_conf();
        let plan = JobPlan::example_shuffle_job(512 << 20);
        // Wave spans are fine-detail; a standard tracer stops at stages.
        let tracer = lite_obs::Tracer::new_fine();
        let obs = SimObs::with_tracer(tracer.clone());
        let r = simulate_obs(&cluster, &conf, &plan, 41, &obs);
        assert!(r.ok(), "{:?}", r.failure);
        let spans = tracer.finished();
        let run = spans.iter().find(|s| s.name == "sim.run").expect("run span");
        let stage_spans: Vec<_> = spans.iter().filter(|s| s.name == "sim.stage").collect();
        assert_eq!(stage_spans.len(), r.stages.len());
        assert!(stage_spans.iter().all(|s| s.parent == Some(run.id)));
        let stage_ids: Vec<u64> = stage_spans.iter().map(|s| s.id).collect();
        let waves: Vec<_> = spans.iter().filter(|s| s.name == "sim.wave").collect();
        assert!(!waves.is_empty());
        assert!(waves.iter().all(|w| stage_ids.contains(&w.parent.expect("wave has parent"))));
        // Run span carries the simulated total.
        match run.attr("sim_total_s") {
            Some(lite_obs::AttrValue::F64(v)) => assert!((v - r.total_time_s).abs() < 1e-9),
            other => panic!("missing sim_total_s: {other:?}"),
        }
        // A standard-detail tracer records the same tree minus the wave tier.
        let std_tracer = lite_obs::Tracer::new();
        let obs = SimObs::with_tracer(std_tracer.clone());
        simulate_obs(&cluster, &conf, &plan, 41, &obs);
        let spans = std_tracer.finished();
        assert!(spans.iter().any(|s| s.name == "sim.stage"));
        assert!(spans.iter().all(|s| s.name != "sim.wave"));
    }

    #[test]
    fn metrics_count_tasks_and_waves() {
        let cluster = ClusterSpec::cluster_b();
        let conf = space().default_conf();
        let plan = JobPlan::example_shuffle_job(512 << 20);
        let reg = lite_obs::Registry::new();
        let obs = SimObs::full(lite_obs::Tracer::disabled(), &reg);
        let r = simulate_obs(&cluster, &conf, &plan, 41, &obs);
        let snap = reg.snapshot();
        let total_tasks: u64 = r.stages.iter().map(|s| u64::from(s.num_tasks)).sum();
        assert_eq!(snap.counter("sim.runs"), Some(1));
        assert_eq!(snap.counter("sim.tasks_launched"), Some(total_tasks));
        let waves: u64 =
            r.stages.iter().map(|s| u64::from(s.num_tasks.div_ceil(r.slots.max(1)))).sum();
        assert_eq!(snap.counter("sim.waves"), Some(waves));
        assert_eq!(snap.histogram("sim.task.duration_ns").map(|h| h.count), Some(total_tasks));
    }

    #[test]
    fn task_stats_are_consistent_with_stage_stats() {
        let cluster = ClusterSpec::cluster_a();
        let s = space();
        let mut conf = s.default_conf();
        conf.set(&s, Knob::MemoryFraction, 0.3);
        conf.set(&s, Knob::ExecutorMemoryGb, 2.0);
        let mut plan = JobPlan::example_shuffle_job(4 << 30);
        plan.stages[1].working_set_factor = 2.0;
        let reg = lite_obs::Registry::new();
        let obs = SimObs::full(lite_obs::Tracer::disabled(), &reg);
        let r = simulate_obs(&cluster, &conf, &plan, 19, &obs);
        assert!(r.ok(), "{:?}", r.failure);
        let st = &r.stages[1];
        assert_eq!(st.tasks.len(), st.num_tasks as usize);
        assert!(st.spill_bytes > 0);
        let spill_sum: u64 = st.tasks.iter().map(|t| t.spill_bytes).sum();
        // Uniform per-task spill model: sums match to rounding.
        assert!((spill_sum as i64 - st.spill_bytes as i64).abs() <= st.num_tasks as i64);
        // Waves are contiguous and bounded by ceil(tasks/slots).
        let max_wave = st.tasks.iter().map(|t| t.wave).max().unwrap();
        assert_eq!(max_wave, (st.num_tasks - 1) / r.slots.max(1));
        for t in &st.tasks {
            assert_eq!(t.wave, t.index / r.slots.max(1));
            assert!(t.duration_s > 0.0 && t.start_s >= 0.0);
        }
    }

    #[test]
    fn disabled_faults_are_byte_identical_and_wounds_are_deterministic() {
        use crate::fault::{FaultInjector, FaultKind};
        let cluster = ClusterSpec::cluster_b();
        let conf = space().default_conf();
        let plan = JobPlan::example_shuffle_job(512 << 20);
        let plain = simulate(&cluster, &conf, &plan, 43);
        // None and a zero-probability injector are both exactly `simulate`.
        let none = simulate_faulted(&cluster, &conf, &plan, 43, &SimObs::disabled(), None);
        assert_eq!(plain, none);
        let idle = FaultInjector::new(9);
        let with_idle =
            simulate_faulted(&cluster, &conf, &plan, 43, &SimObs::disabled(), Some(&idle));
        assert_eq!(plain, with_idle);
        assert_eq!(idle.total_fired(), 0);
        // An armed injector wounds the same run identically every time.
        let mk = || {
            FaultInjector::new(9).with(FaultKind::ExecutorLoss, 1.0).with(FaultKind::Straggler, 0.2)
        };
        let (a, b) = (mk(), mk());
        let ra = simulate_faulted(&cluster, &conf, &plan, 43, &SimObs::disabled(), Some(&a));
        let rb = simulate_faulted(&cluster, &conf, &plan, 43, &SimObs::disabled(), Some(&b));
        assert_eq!(ra, rb);
        assert!(a.fired(FaultKind::ExecutorLoss) > 0);
    }

    #[test]
    fn executor_loss_slows_the_run_without_failing_it() {
        use crate::fault::{FaultInjector, FaultKind};
        let cluster = ClusterSpec::cluster_b();
        let conf = space().default_conf();
        let plan = JobPlan::example_shuffle_job(1 << 30);
        let healthy = simulate(&cluster, &conf, &plan, 47);
        assert!(healthy.ok());
        let inj = FaultInjector::new(5).with(FaultKind::ExecutorLoss, 1.0);
        let wounded = simulate_faulted(&cluster, &conf, &plan, 47, &SimObs::disabled(), Some(&inj));
        assert!(wounded.ok(), "executor loss degrades, it does not fail: {:?}", wounded.failure);
        assert!(
            wounded.total_time_s > healthy.total_time_s,
            "fewer slots + reruns must cost time: {} !> {}",
            wounded.total_time_s,
            healthy.total_time_s
        );
    }

    #[test]
    fn forced_oom_and_spill_fire_regardless_of_memory_arithmetic() {
        use crate::fault::{FaultInjector, FaultKind};
        let cluster = ClusterSpec::cluster_b();
        let conf = space().default_conf();
        let plan = JobPlan::example_shuffle_job(512 << 20);
        assert!(simulate(&cluster, &conf, &plan, 53).ok());

        let oom = FaultInjector::new(6).with(FaultKind::ForcedOom, 1.0);
        let r = simulate_faulted(&cluster, &conf, &plan, 53, &SimObs::disabled(), Some(&oom));
        assert_eq!(r.failure, Some(FailureReason::ExecutorOom));

        let spill = FaultInjector::new(6).with(FaultKind::ForcedSpill, 1.0);
        let r = simulate_faulted(&cluster, &conf, &plan, 53, &SimObs::disabled(), Some(&spill));
        assert!(r.ok());
        assert!(r.stages.iter().any(|s| s.spill_bytes > 0), "forced spill left no trace");
    }

    #[test]
    fn stage_task_count_follows_sources() {
        let s = space();
        let mut conf = s.default_conf();
        conf.set(&s, Knob::FilesMaxPartitionMb, 64.0);
        conf.set(&s, Knob::DefaultParallelism, 40.0);
        let hdfs = StagePlan::new("scan", OpDag::chain(&[OpKind::TextFile]), 640 << 20);
        assert_eq!(stage_task_count(&conf, &hdfs), 10);
        let mut shuffle = hdfs.clone();
        shuffle.input = InputSource::Shuffle;
        assert_eq!(stage_task_count(&conf, &shuffle), 40);
        let mut hinted = hdfs;
        hinted.num_tasks_hint = Some(7);
        assert_eq!(stage_task_count(&conf, &hinted), 7);
    }
}

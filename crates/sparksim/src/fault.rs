//! Deterministic, seedable fault injection.
//!
//! A [`FaultInjector`] is a shared, thread-safe decision oracle: callers at
//! well-known *fault points* ask "does fault `kind` fire for key `key`?"
//! and the answer is a pure function of `(injector seed, kind, key)` — the
//! same seeded injector wounds a run the same way every time, independent
//! of thread interleaving at unrelated fault points. That is what makes a
//! chaos scenario debuggable: a failure found under seed 7 is reproduced
//! under seed 7.
//!
//! The taxonomy covers both layers of the stack (see DESIGN.md
//! "Resilience"):
//!
//! * **simulator wounds** — [`FaultKind::ExecutorLoss`] (slots vanish
//!   mid-stage and their running tasks are rescheduled),
//!   [`FaultKind::Straggler`] (extra 2.5× slow tasks),
//!   [`FaultKind::ForcedOom`] and [`FaultKind::ForcedSpill`];
//! * **service wounds** — [`FaultKind::UpdaterPanic`] (the background
//!   retrainer dies mid-update), [`FaultKind::SwapDelay`] /
//!   [`FaultKind::SwapFail`] (slow or aborted snapshot publication),
//!   [`FaultKind::ScoreFail`] (NECS scoring unavailable),
//!   [`FaultKind::TornFrame`] (a TCP response is cut mid-frame and the
//!   connection dropped) and [`FaultKind::RequestDelay`] (injected request
//!   latency).
//!
//! Fault points take an `Option<&FaultInjector>` (or an
//! `Option<Arc<FaultInjector>>` field); when the option is `None` the hook
//! compiles to a branch and the host code path is byte-identical to the
//! un-instrumented one — the same zero-cost discipline the obs plane pins
//! with its overhead tests.
//!
//! An injector can be [`disarm`](FaultInjector::disarm)ed and re-armed at
//! runtime: chaos drills use this to model a fault *storm* that ends
//! mid-run (the recovery half of a circuit-breaker Open → HalfOpen →
//! Closed cycle needs the world to actually heal).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// SplitMix64: the same per-key hash the execution engine uses for task
/// skew, exported so every resilience component (backoff jitter, fault
/// rolls) can derive deterministic randomness from `(seed, key)` pairs.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform (0,1) from a hash (53-bit mantissa, never exactly 0 or 1).
#[inline]
pub fn unit64(h: u64) -> f64 {
    ((h >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Number of fault kinds (array sizes below).
pub const NUM_FAULT_KINDS: usize = 10;

/// Everything the injector knows how to break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum FaultKind {
    /// A quarter of the executors die at a stage boundary: the stage runs
    /// on fewer slots and the lost executors' in-flight tasks rerun.
    ExecutorLoss = 0,
    /// Extra straggler tasks beyond the engine's organic straggler rate.
    Straggler = 1,
    /// A stage OOMs regardless of its memory arithmetic.
    ForcedOom = 2,
    /// A stage spills half its working set regardless of pool headroom.
    ForcedSpill = 3,
    /// The background updater panics mid-retrain.
    UpdaterPanic = 4,
    /// Snapshot publication stalls for the configured delay.
    SwapDelay = 5,
    /// A finished retrain is discarded instead of swapped in.
    SwapFail = 6,
    /// NECS candidate scoring fails for one request.
    ScoreFail = 7,
    /// A TCP response frame is truncated mid-write and the connection dies.
    TornFrame = 8,
    /// A request is held for the configured delay before processing.
    RequestDelay = 9,
}

impl FaultKind {
    /// All kinds, indexable by `as usize`.
    pub const ALL: [FaultKind; NUM_FAULT_KINDS] = [
        FaultKind::ExecutorLoss,
        FaultKind::Straggler,
        FaultKind::ForcedOom,
        FaultKind::ForcedSpill,
        FaultKind::UpdaterPanic,
        FaultKind::SwapDelay,
        FaultKind::SwapFail,
        FaultKind::ScoreFail,
        FaultKind::TornFrame,
        FaultKind::RequestDelay,
    ];

    /// Stable snake_case label (manifest / metrics names).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::ExecutorLoss => "executor_loss",
            FaultKind::Straggler => "straggler",
            FaultKind::ForcedOom => "forced_oom",
            FaultKind::ForcedSpill => "forced_spill",
            FaultKind::UpdaterPanic => "updater_panic",
            FaultKind::SwapDelay => "swap_delay",
            FaultKind::SwapFail => "swap_fail",
            FaultKind::ScoreFail => "score_fail",
            FaultKind::TornFrame => "torn_frame",
            FaultKind::RequestDelay => "request_delay",
        }
    }

    /// Per-kind salt so the same key rolls independently per kind.
    fn salt(self) -> u64 {
        0xFA01_7000 + self as u64
    }
}

/// Deterministic fault decision oracle. See the module docs.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    armed: AtomicBool,
    probs: [f64; NUM_FAULT_KINDS],
    delays: [Duration; NUM_FAULT_KINDS],
    fired: [AtomicU64; NUM_FAULT_KINDS],
    /// Monotone counter for fault points without a natural key (e.g. a TCP
    /// connection deciding whether to tear the next frame).
    keys: AtomicU64,
}

impl FaultInjector {
    /// An armed injector with every probability at zero (fires nothing
    /// until `with`/`with_delay` raise probabilities).
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            seed,
            armed: AtomicBool::new(true),
            probs: [0.0; NUM_FAULT_KINDS],
            delays: [Duration::ZERO; NUM_FAULT_KINDS],
            fired: Default::default(),
            keys: AtomicU64::new(0),
        }
    }

    /// Builder: set the firing probability of one kind (clamped to [0,1]).
    pub fn with(mut self, kind: FaultKind, prob: f64) -> FaultInjector {
        self.probs[kind as usize] = prob.clamp(0.0, 1.0);
        self
    }

    /// Builder: probability plus the delay injected when the kind fires
    /// (only meaningful for `SwapDelay` / `RequestDelay`).
    pub fn with_delay(mut self, kind: FaultKind, prob: f64, delay: Duration) -> FaultInjector {
        self.delays[kind as usize] = delay;
        self.with(kind, prob)
    }

    /// The injector's seed (chaos manifests record it for reproduction).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Stop firing (all `fires` return false) without dropping the
    /// injector: models the end of a fault storm.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
    }

    /// Resume firing after [`disarm`](FaultInjector::disarm).
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Release);
    }

    /// Whether the injector is currently armed.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Does `kind` fire for `key`? Pure in `(seed, kind, key)` while
    /// armed; counts every firing.
    pub fn fires(&self, kind: FaultKind, key: u64) -> bool {
        let p = self.probs[kind as usize];
        if p <= 0.0 || !self.armed() {
            return false;
        }
        if p < 1.0 && unit64(mix64(self.seed ^ kind.salt() ^ mix64(key))) >= p {
            return false;
        }
        self.fired[kind as usize].fetch_add(1, Ordering::Relaxed);
        true
    }

    /// [`fires`](FaultInjector::fires), returning the configured delay on a
    /// firing (for latency-shaped kinds).
    pub fn fire_delay(&self, kind: FaultKind, key: u64) -> Option<Duration> {
        if self.fires(kind, key) {
            Some(self.delays[kind as usize])
        } else {
            None
        }
    }

    /// A fresh key for fault points without a natural one. Monotone, so
    /// decisions stay deterministic per (seed, arrival order).
    pub fn next_key(&self) -> u64 {
        self.keys.fetch_add(1, Ordering::Relaxed)
    }

    /// How many times `kind` has fired since construction.
    pub fn fired(&self, kind: FaultKind) -> u64 {
        self.fired[kind as usize].load(Ordering::Relaxed)
    }

    /// Total firings across all kinds.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// `(label, count)` per kind with at least one firing — manifest rows.
    pub fn summary(&self) -> Vec<(&'static str, u64)> {
        FaultKind::ALL.iter().map(|&k| (k.label(), self.fired(k))).filter(|&(_, n)| n > 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed_and_key() {
        let a = FaultInjector::new(7).with(FaultKind::Straggler, 0.5);
        let b = FaultInjector::new(7).with(FaultKind::Straggler, 0.5);
        for key in 0..1000 {
            assert_eq!(a.fires(FaultKind::Straggler, key), b.fires(FaultKind::Straggler, key));
        }
        assert_eq!(a.fired(FaultKind::Straggler), b.fired(FaultKind::Straggler));
        // A different seed gives a different firing set (overwhelmingly).
        let c = FaultInjector::new(8).with(FaultKind::Straggler, 0.5);
        let diff = (0..1000)
            .filter(|&k| a.fires(FaultKind::Straggler, k) != c.fires(FaultKind::Straggler, k))
            .count();
        assert!(diff > 100, "seeds 7 and 8 differ on only {diff}/1000 keys");
    }

    #[test]
    fn kinds_roll_independently() {
        let inj = FaultInjector::new(3)
            .with(FaultKind::ExecutorLoss, 0.5)
            .with(FaultKind::ForcedOom, 0.5);
        let diff = (0..1000)
            .filter(|&k| {
                inj.fires(FaultKind::ExecutorLoss, k) != inj.fires(FaultKind::ForcedOom, k)
            })
            .count();
        assert!(diff > 100, "kinds agree on {}/1000 keys", 1000 - diff);
    }

    #[test]
    fn probability_is_roughly_honored() {
        let inj = FaultInjector::new(11).with(FaultKind::ScoreFail, 0.2);
        let hits = (0..10_000).filter(|&k| inj.fires(FaultKind::ScoreFail, k)).count();
        assert!((1500..2500).contains(&hits), "p=0.2 fired {hits}/10000");
        assert_eq!(inj.fired(FaultKind::ScoreFail) as usize, hits);
    }

    #[test]
    fn zero_probability_and_disarm_never_fire() {
        let inj = FaultInjector::new(1).with(FaultKind::TornFrame, 1.0);
        assert!(inj.fires(FaultKind::TornFrame, 0));
        assert!(!inj.fires(FaultKind::RequestDelay, 0), "unset kind must not fire");
        inj.disarm();
        assert!(!inj.fires(FaultKind::TornFrame, 1));
        inj.arm();
        assert!(inj.fires(FaultKind::TornFrame, 1));
        assert_eq!(inj.fired(FaultKind::TornFrame), 2);
    }

    #[test]
    fn fire_delay_returns_configured_delay() {
        let inj = FaultInjector::new(2).with_delay(
            FaultKind::RequestDelay,
            1.0,
            Duration::from_millis(5),
        );
        assert_eq!(inj.fire_delay(FaultKind::RequestDelay, 9), Some(Duration::from_millis(5)));
        assert_eq!(inj.fire_delay(FaultKind::SwapDelay, 9), None);
    }

    #[test]
    fn summary_lists_only_fired_kinds() {
        let inj = FaultInjector::new(4).with(FaultKind::UpdaterPanic, 1.0);
        assert!(inj.summary().is_empty());
        inj.fires(FaultKind::UpdaterPanic, 0);
        assert_eq!(inj.summary(), vec![("updater_panic", 1)]);
        assert_eq!(inj.total_fired(), 1);
    }

    #[test]
    fn next_key_is_monotone() {
        let inj = FaultInjector::new(0);
        assert_eq!(inj.next_key(), 0);
        assert_eq!(inj.next_key(), 1);
    }
}

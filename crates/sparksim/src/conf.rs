//! Configuration knobs (paper Table IV) and the configuration search space.
//!
//! LITE tunes sixteen performance-critical Spark knobs. Each knob has a
//! typed domain; [`ConfSpace`] owns the knob definitions and provides
//! sampling, validation and the normalized `R^16` encoding every learning
//! component (NECS, GP, DDPG, random forest) consumes.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a tunable knob. The discriminant order is the canonical
/// feature order of the configuration vector `o_i` throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Knob {
    DefaultParallelism,
    DriverCores,
    DriverMaxResultSizeMb,
    DriverMemoryGb,
    DriverMemoryOverheadMb,
    ExecutorCores,
    ExecutorMemoryGb,
    ExecutorMemoryOverheadMb,
    ExecutorInstances,
    FilesMaxPartitionMb,
    MemoryFraction,
    MemoryStorageFraction,
    ReducerMaxSizeInFlightMb,
    ShuffleCompress,
    ShuffleFileBufferKb,
    ShuffleSpillCompress,
}

/// Number of knobs tuned by LITE (paper Table IV).
pub const NUM_KNOBS: usize = 16;

/// All knobs in canonical feature order.
pub const ALL_KNOBS: [Knob; NUM_KNOBS] = [
    Knob::DefaultParallelism,
    Knob::DriverCores,
    Knob::DriverMaxResultSizeMb,
    Knob::DriverMemoryGb,
    Knob::DriverMemoryOverheadMb,
    Knob::ExecutorCores,
    Knob::ExecutorMemoryGb,
    Knob::ExecutorMemoryOverheadMb,
    Knob::ExecutorInstances,
    Knob::FilesMaxPartitionMb,
    Knob::MemoryFraction,
    Knob::MemoryStorageFraction,
    Knob::ReducerMaxSizeInFlightMb,
    Knob::ShuffleCompress,
    Knob::ShuffleFileBufferKb,
    Knob::ShuffleSpillCompress,
];

impl Knob {
    /// The Spark property name, e.g. `spark.executor.cores`.
    pub fn spark_name(self) -> &'static str {
        match self {
            Knob::DefaultParallelism => "spark.default.parallelism",
            Knob::DriverCores => "spark.driver.cores",
            Knob::DriverMaxResultSizeMb => "spark.driver.maxResultSize",
            Knob::DriverMemoryGb => "spark.driver.memory",
            Knob::DriverMemoryOverheadMb => "spark.driver.memoryOverhead",
            Knob::ExecutorCores => "spark.executor.cores",
            Knob::ExecutorMemoryGb => "spark.executor.memory",
            Knob::ExecutorMemoryOverheadMb => "spark.executor.memoryOverhead",
            Knob::ExecutorInstances => "spark.executor.instances",
            Knob::FilesMaxPartitionMb => "spark.files.maxPartitionBytes",
            Knob::MemoryFraction => "spark.memory.fraction",
            Knob::MemoryStorageFraction => "spark.memory.storageFraction",
            Knob::ReducerMaxSizeInFlightMb => "spark.reducer.maxSizeInFlight",
            Knob::ShuffleCompress => "spark.shuffle.compress",
            Knob::ShuffleFileBufferKb => "spark.shuffle.file.buffer",
            Knob::ShuffleSpillCompress => "spark.shuffle.spill.compress",
        }
    }

    /// Index of this knob in the canonical feature order. `ALL_KNOBS`
    /// mirrors the declaration order, so the discriminant is the index
    /// (checked by a unit test).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Knob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spark_name())
    }
}

/// Value domain of a knob.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KnobDomain {
    /// Integer range `[min, max]` with a step (inclusive of both ends).
    Int { min: i64, max: i64, step: i64 },
    /// Continuous range `[min, max]`, discretized to `steps` grid points
    /// when enumerated.
    Frac { min: f64, max: f64 },
    /// Boolean flag (encoded as 0.0 / 1.0).
    Bool,
}

impl KnobDomain {
    /// Clamp and snap an arbitrary raw value into this domain.
    pub fn clamp(&self, v: f64) -> f64 {
        match *self {
            KnobDomain::Int { min, max, step } => {
                let v = v.clamp(min as f64, max as f64);
                let snapped = min + (((v - min as f64) / step as f64).round() as i64) * step;
                snapped.clamp(min, max) as f64
            }
            KnobDomain::Frac { min, max } => v.clamp(min, max),
            KnobDomain::Bool => {
                if v >= 0.5 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Map a domain value to `[0, 1]`.
    pub fn normalize(&self, v: f64) -> f64 {
        match *self {
            KnobDomain::Int { min, max, .. } => {
                if max == min {
                    0.0
                } else {
                    (v - min as f64) / (max - min) as f64
                }
            }
            KnobDomain::Frac { min, max } => (v - min) / (max - min),
            KnobDomain::Bool => v,
        }
    }

    /// Inverse of [`KnobDomain::normalize`]; snaps into the domain.
    pub fn denormalize(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match *self {
            KnobDomain::Int { min, max, .. } => self.clamp(min as f64 + u * (max - min) as f64),
            KnobDomain::Frac { min, max } => min + u * (max - min),
            KnobDomain::Bool => self.clamp(u),
        }
    }

    /// Uniformly sample a valid value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            KnobDomain::Int { min, max, step } => {
                let n = (max - min) / step;
                let k = rng.gen_range(0..=n);
                (min + k * step) as f64
            }
            KnobDomain::Frac { min, max } => rng.gen_range(min..=max),
            KnobDomain::Bool => {
                if rng.gen_bool(0.5) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Whether `v` is a valid member of the domain.
    pub fn contains(&self, v: f64) -> bool {
        match *self {
            KnobDomain::Int { min, max, step } => {
                let iv = v.round() as i64;
                (v - iv as f64).abs() < 1e-9 && iv >= min && iv <= max && (iv - min) % step == 0
            }
            KnobDomain::Frac { min, max } => v >= min - 1e-12 && v <= max + 1e-12,
            KnobDomain::Bool => v == 0.0 || v == 1.0,
        }
    }

    /// Number of distinct values when the domain is enumerated on a grid.
    pub fn cardinality(&self, frac_steps: usize) -> usize {
        match *self {
            KnobDomain::Int { min, max, step } => ((max - min) / step + 1) as usize,
            KnobDomain::Frac { .. } => frac_steps,
            KnobDomain::Bool => 2,
        }
    }
}

/// A concrete assignment of all sixteen knobs, in canonical order.
///
/// Values are stored as `f64` (integers and booleans are exact in `f64`
/// over these ranges), which keeps the type directly usable as the
/// configuration feature vector `o_i` of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparkConf {
    values: [f64; NUM_KNOBS],
}

impl SparkConf {
    /// Build from a raw value array in canonical knob order. Values are
    /// clamped into their domains by `space`.
    pub fn from_values(space: &ConfSpace, values: [f64; NUM_KNOBS]) -> Self {
        let mut out = values;
        for (i, k) in ALL_KNOBS.iter().enumerate() {
            out[i] = space.domain(*k).clamp(values[i]);
        }
        SparkConf { values: out }
    }

    /// Value of a knob.
    pub fn get(&self, k: Knob) -> f64 {
        self.values[k.index()]
    }

    /// Set a knob value (clamped into its domain).
    pub fn set(&mut self, space: &ConfSpace, k: Knob, v: f64) {
        self.values[k.index()] = space.domain(k).clamp(v);
    }

    /// The raw value vector in canonical order.
    pub fn values(&self) -> &[f64; NUM_KNOBS] {
        &self.values
    }

    /// Normalized `[0,1]^16` encoding used as model input.
    pub fn normalized(&self, space: &ConfSpace) -> [f64; NUM_KNOBS] {
        let mut out = [0.0; NUM_KNOBS];
        for (i, k) in ALL_KNOBS.iter().enumerate() {
            out[i] = space.domain(*k).normalize(self.values[i]);
        }
        out
    }

    /// Convenience accessors used pervasively by the executor.
    pub fn executor_cores(&self) -> u32 {
        self.get(Knob::ExecutorCores) as u32
    }
    /// Executor heap size in bytes.
    pub fn executor_memory_bytes(&self) -> u64 {
        (self.get(Knob::ExecutorMemoryGb) * crate::cluster::GB) as u64
    }
    /// Executor off-heap overhead in bytes.
    pub fn executor_overhead_bytes(&self) -> u64 {
        (self.get(Knob::ExecutorMemoryOverheadMb) * crate::cluster::MB) as u64
    }
    /// Requested executor count.
    pub fn executor_instances(&self) -> u32 {
        self.get(Knob::ExecutorInstances) as u32
    }
    /// Default parallelism (shuffle partition count).
    pub fn default_parallelism(&self) -> u32 {
        self.get(Knob::DefaultParallelism) as u32
    }
    /// Whether shuffle outputs are compressed.
    pub fn shuffle_compress(&self) -> bool {
        self.get(Knob::ShuffleCompress) >= 0.5
    }
    /// Whether spilled data is compressed.
    pub fn shuffle_spill_compress(&self) -> bool {
        self.get(Knob::ShuffleSpillCompress) >= 0.5
    }
}

impl fmt::Display for SparkConf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, k) in ALL_KNOBS.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}={}", k.spark_name(), self.values[i])?;
        }
        Ok(())
    }
}

/// The configuration search space: domains plus defaults for all knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfSpace {
    domains: [KnobDomain; NUM_KNOBS],
    defaults: [f64; NUM_KNOBS],
}

impl ConfSpace {
    /// The sixteen-knob space of paper Table IV with Spark-documentation
    /// defaults. Ranges follow common tuning-guide bounds for mid-size
    /// clusters.
    pub fn table_iv() -> Self {
        use Knob::*;
        use KnobDomain::*;
        let mut domains = [Bool; NUM_KNOBS];
        let mut defaults = [0.0; NUM_KNOBS];
        let mut def = |k: Knob, d: KnobDomain, v: f64| {
            domains[k.index()] = d;
            defaults[k.index()] = v;
        };
        def(DefaultParallelism, Int { min: 8, max: 512, step: 8 }, 64.0);
        def(DriverCores, Int { min: 1, max: 8, step: 1 }, 1.0);
        def(DriverMaxResultSizeMb, Int { min: 256, max: 4096, step: 256 }, 1024.0);
        def(DriverMemoryGb, Int { min: 1, max: 16, step: 1 }, 1.0);
        def(DriverMemoryOverheadMb, Int { min: 256, max: 4096, step: 256 }, 512.0);
        def(ExecutorCores, Int { min: 1, max: 16, step: 1 }, 4.0);
        def(ExecutorMemoryGb, Int { min: 1, max: 32, step: 1 }, 2.0);
        def(ExecutorMemoryOverheadMb, Int { min: 256, max: 4096, step: 256 }, 512.0);
        def(ExecutorInstances, Int { min: 1, max: 48, step: 1 }, 2.0);
        def(FilesMaxPartitionMb, Int { min: 16, max: 512, step: 16 }, 128.0);
        def(MemoryFraction, Frac { min: 0.3, max: 0.9 }, 0.6);
        def(MemoryStorageFraction, Frac { min: 0.1, max: 0.9 }, 0.5);
        def(ReducerMaxSizeInFlightMb, Int { min: 8, max: 128, step: 8 }, 48.0);
        def(ShuffleCompress, Bool, 1.0);
        def(ShuffleFileBufferKb, Int { min: 16, max: 256, step: 16 }, 32.0);
        def(ShuffleSpillCompress, Bool, 1.0);
        ConfSpace { domains, defaults }
    }

    /// Domain of a knob.
    pub fn domain(&self, k: Knob) -> &KnobDomain {
        &self.domains[k.index()]
    }

    /// The Spark default configuration.
    pub fn default_conf(&self) -> SparkConf {
        SparkConf { values: self.defaults }
    }

    /// Sample a uniformly random valid configuration.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SparkConf {
        let mut values = [0.0; NUM_KNOBS];
        for (i, d) in self.domains.iter().enumerate() {
            values[i] = d.sample(rng);
        }
        SparkConf { values }
    }

    /// Decode a normalized `[0,1]^16` point into a valid configuration.
    pub fn decode(&self, u: &[f64; NUM_KNOBS]) -> SparkConf {
        let mut values = [0.0; NUM_KNOBS];
        for (i, d) in self.domains.iter().enumerate() {
            values[i] = d.denormalize(u[i]);
        }
        SparkConf { values }
    }

    /// Whether every knob value of `conf` is a member of its domain.
    pub fn is_valid(&self, conf: &SparkConf) -> bool {
        self.domains.iter().zip(conf.values.iter()).all(|(d, v)| d.contains(*v))
    }

    /// Sample a configuration inside a per-knob box `[lo_i, hi_i]` given in
    /// *raw* knob units; used by Adaptive Candidate Generation. Boxes are
    /// intersected with the knob domains.
    pub fn sample_in_box<R: Rng + ?Sized>(
        &self,
        lo: &[f64; NUM_KNOBS],
        hi: &[f64; NUM_KNOBS],
        rng: &mut R,
    ) -> SparkConf {
        let mut values = [0.0; NUM_KNOBS];
        for (i, d) in self.domains.iter().enumerate() {
            let (l, h) = (lo[i].min(hi[i]), lo[i].max(hi[i]));
            let v = if h > l { rng.gen_range(l..=h) } else { l };
            values[i] = d.clamp(v);
        }
        SparkConf { values }
    }

    /// A Latin-hypercube sample of `n` configurations (used by the
    /// experimental-search baselines).
    pub fn latin_hypercube<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<SparkConf> {
        let mut strata: Vec<Vec<usize>> = (0..NUM_KNOBS)
            .map(|_| {
                let mut idx: Vec<usize> = (0..n).collect();
                // Fisher–Yates shuffle of stratum assignment per dimension.
                for i in (1..n).rev() {
                    let j = rng.gen_range(0..=i);
                    idx.swap(i, j);
                }
                idx
            })
            .collect();
        (0..n)
            .map(|s| {
                let mut u = [0.0; NUM_KNOBS];
                for (dim, item) in u.iter_mut().enumerate() {
                    let stratum = strata[dim].pop().unwrap_or(s);
                    *item = (stratum as f64 + rng.gen_range(0.0..1.0)) / n as f64;
                }
                self.decode(&u)
            })
            .collect()
    }

    /// An axis-aligned grid sample: `per_knob` evenly spaced values per
    /// knob, crossed at random (full cross product is `~10^16`).
    pub fn grid_sample<R: Rng + ?Sized>(
        &self,
        per_knob: usize,
        n: usize,
        rng: &mut R,
    ) -> Vec<SparkConf> {
        (0..n)
            .map(|_| {
                let mut u = [0.0; NUM_KNOBS];
                for item in u.iter_mut() {
                    let g = rng.gen_range(0..per_knob);
                    *item = if per_knob == 1 { 0.5 } else { g as f64 / (per_knob - 1) as f64 };
                }
                self.decode(&u)
            })
            .collect()
    }
}

impl Default for ConfSpace {
    fn default() -> Self {
        Self::table_iv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn space_has_sixteen_knobs_in_table_iv() {
        assert_eq!(ALL_KNOBS.len(), 16);
        let names: Vec<&str> = ALL_KNOBS.iter().map(|k| k.spark_name()).collect();
        assert!(names.contains(&"spark.default.parallelism"));
        assert!(names.contains(&"spark.shuffle.compress"));
        // Canonical order is stable: index roundtrips.
        for (i, k) in ALL_KNOBS.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn default_conf_is_valid() {
        let s = ConfSpace::table_iv();
        assert!(s.is_valid(&s.default_conf()));
        assert_eq!(s.default_conf().executor_cores(), 4);
        assert!(s.default_conf().shuffle_compress());
    }

    #[test]
    fn sampling_yields_valid_confs() {
        let s = ConfSpace::table_iv();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            assert!(s.is_valid(&c), "invalid sample: {c}");
        }
    }

    #[test]
    fn normalize_denormalize_roundtrip_on_grid_values() {
        let s = ConfSpace::table_iv();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let c = s.sample(&mut rng);
            let u = c.normalized(&s);
            let back = s.decode(&u);
            for (a, b) in c.values().iter().zip(back.values().iter()) {
                assert!((a - b).abs() < 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn clamp_snaps_to_step() {
        let d = KnobDomain::Int { min: 8, max: 512, step: 8 };
        assert_eq!(d.clamp(13.0), 16.0);
        assert_eq!(d.clamp(-5.0), 8.0);
        assert_eq!(d.clamp(9999.0), 512.0);
        assert!(d.contains(64.0));
        assert!(!d.contains(63.0));
    }

    #[test]
    fn bool_domain_encodes_zero_one() {
        let d = KnobDomain::Bool;
        assert_eq!(d.clamp(0.7), 1.0);
        assert_eq!(d.clamp(0.2), 0.0);
        assert_eq!(d.cardinality(10), 2);
    }

    #[test]
    fn latin_hypercube_covers_strata() {
        let s = ConfSpace::table_iv();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 16;
        let sample = s.latin_hypercube(n, &mut rng);
        assert_eq!(sample.len(), n);
        // For the continuous fraction knob, all strata are hit exactly once.
        let mut strata = vec![0usize; n];
        for c in &sample {
            let u = s.domain(Knob::MemoryFraction).normalize(c.get(Knob::MemoryFraction));
            let b = ((u * n as f64).floor() as usize).min(n - 1);
            strata[b] += 1;
        }
        assert!(strata.iter().all(|&c| c == 1), "strata counts {strata:?}");
    }

    #[test]
    fn sample_in_box_respects_bounds_and_domain() {
        let s = ConfSpace::table_iv();
        let mut rng = StdRng::seed_from_u64(5);
        let mut lo = *s.default_conf().values();
        let mut hi = lo;
        lo[Knob::ExecutorCores.index()] = 2.0;
        hi[Knob::ExecutorCores.index()] = 6.0;
        for _ in 0..100 {
            let c = s.sample_in_box(&lo, &hi, &mut rng);
            assert!(s.is_valid(&c));
            let v = c.get(Knob::ExecutorCores);
            assert!((2.0..=6.0).contains(&v));
        }
    }

    #[test]
    fn set_clamps_into_domain() {
        let s = ConfSpace::table_iv();
        let mut c = s.default_conf();
        c.set(&s, Knob::ExecutorMemoryGb, 500.0);
        assert_eq!(c.get(Knob::ExecutorMemoryGb), 32.0);
    }
}

//! # lite-sparksim — a discrete-event Spark execution simulator
//!
//! This crate is the execution substrate for the LITE reproduction. The
//! original paper runs spark-bench applications on three real clusters; this
//! crate replaces those clusters with a deterministic, seedable simulator
//! that preserves the properties LITE's learning problem depends on:
//!
//! * **Knob sensitivity** — the sixteen configuration knobs of Table IV all
//!   influence simulated execution time through a physically motivated cost
//!   model (task waves, shuffle transfers, unified-memory spills, GC
//!   pressure, driver bottlenecks, OOM failures).
//! * **Code dependence** — the *operator mix* of each stage determines which
//!   knobs matter (shuffle-heavy stages respond to `reducer.maxSizeInFlight`
//!   and compression, cache-heavy iterative stages to
//!   `memory.storageFraction`, CPU-heavy ML stages to `executor.cores`),
//!   reproducing challenge C1 of the paper.
//! * **Data scaling** — costs scale with input volume, so models trained on
//!   small inputs face the same extrapolation problem as the paper's
//!   small-to-large migration.
//!
//! The entry point is [`exec::simulate`], which takes a [`cluster::ClusterSpec`],
//! a [`conf::SparkConf`] and a [`plan::JobPlan`] and returns a
//! [`result::RunResult`] with per-stage timings and Spark-monitor-style
//! statistics.
//!
//! ```
//! use lite_sparksim::cluster::ClusterSpec;
//! use lite_sparksim::conf::ConfSpace;
//! use lite_sparksim::plan::JobPlan;
//! use lite_sparksim::exec::simulate;
//!
//! let cluster = ClusterSpec::cluster_a();
//! let conf = ConfSpace::table_iv().default_conf();
//! let plan = JobPlan::example_shuffle_job(64 << 20);
//! let result = simulate(&cluster, &conf, &plan, 42);
//! assert!(result.total_time_s > 0.0);
//! ```

pub mod cluster;
pub mod conf;
pub mod eventlog;
pub mod exec;
pub mod fault;
pub mod plan;
pub mod result;

pub use cluster::ClusterSpec;
pub use conf::{ConfSpace, Knob, KnobDomain, SparkConf};
pub use exec::{simulate, simulate_faulted, simulate_obs, SimMetrics, SimObs};
pub use fault::{FaultInjector, FaultKind};
pub use plan::{JobPlan, OpDag, OpKind, StagePlan};
pub use result::{FailureReason, RunResult, StageStats, TaskStats};

//! Cluster hardware descriptions (paper Table III) and derived rates.

use serde::{Deserialize, Serialize};

/// Hardware description of a Spark cluster.
///
/// These are the six environment-feature entries of paper Table II; the
/// three presets reproduce the evaluation clusters of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable name, e.g. `"cluster-a"`.
    pub name: String,
    /// Number of worker nodes.
    pub nodes: u32,
    /// Physical cores per node.
    pub cores_per_node: u32,
    /// CPU base frequency in GHz.
    pub cpu_ghz: f64,
    /// RAM per node in GB.
    pub mem_gb_per_node: f64,
    /// Memory transfer speed in MT/s (affects memory-bound compute).
    pub mem_mts: f64,
    /// Interconnect bandwidth in Gbit/s.
    pub net_gbps: f64,
}

impl ClusterSpec {
    /// Paper cluster A: a single large-memory node.
    pub fn cluster_a() -> Self {
        ClusterSpec {
            name: "cluster-a".to_string(),
            nodes: 1,
            cores_per_node: 16,
            cpu_ghz: 3.2,
            mem_gb_per_node: 64.0,
            mem_mts: 2400.0,
            net_gbps: 10.0,
        }
    }

    /// Paper cluster B: three large-memory nodes.
    pub fn cluster_b() -> Self {
        ClusterSpec {
            name: "cluster-b".to_string(),
            nodes: 3,
            cores_per_node: 16,
            cpu_ghz: 3.2,
            mem_gb_per_node: 64.0,
            mem_mts: 2400.0,
            net_gbps: 10.0,
        }
    }

    /// Paper cluster C: eight small-memory nodes on a slower network. The
    /// paper uses this cluster for the large-data test jobs.
    pub fn cluster_c() -> Self {
        ClusterSpec {
            name: "cluster-c".to_string(),
            nodes: 8,
            cores_per_node: 16,
            cpu_ghz: 2.9,
            mem_gb_per_node: 16.0,
            mem_mts: 2666.0,
            net_gbps: 1.0,
        }
    }

    /// All three evaluation clusters in paper order.
    pub fn all_evaluation_clusters() -> Vec<ClusterSpec> {
        vec![Self::cluster_a(), Self::cluster_b(), Self::cluster_c()]
    }

    /// Total cores across the cluster.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }

    /// Total memory across the cluster in bytes.
    pub fn total_mem_bytes(&self) -> u64 {
        (self.mem_gb_per_node * self.nodes as f64 * GB) as u64
    }

    /// Memory per node in bytes.
    pub fn mem_bytes_per_node(&self) -> u64 {
        (self.mem_gb_per_node * GB) as u64
    }

    /// Effective sequential disk scan rate in bytes/s. The simulator models
    /// node-local SSD storage; a faster memory bus gives marginally faster
    /// page-cache-assisted scans.
    pub fn disk_bytes_per_sec(&self) -> f64 {
        450e6 * (self.mem_mts / 2400.0).sqrt()
    }

    /// Memory bandwidth per node in bytes/s derived from MT/s on a 64-bit
    /// channel pair; bounds how much parallel compute a node sustains.
    pub fn mem_bandwidth_bytes_per_sec(&self) -> f64 {
        // 2 channels x 8 bytes per transfer.
        self.mem_mts * 1e6 * 16.0
    }

    /// Point-to-point network rate in bytes/s.
    pub fn net_bytes_per_sec(&self) -> f64 {
        self.net_gbps * 1e9 / 8.0
    }

    /// The environment feature vector of paper Table II:
    /// `[#nodes, #cores, frequency, memory size, memory speed, bandwidth]`.
    pub fn env_features(&self) -> [f64; 6] {
        [
            self.nodes as f64,
            self.cores_per_node as f64,
            self.cpu_ghz,
            self.mem_gb_per_node,
            self.mem_mts,
            self.net_gbps,
        ]
    }
}

/// One gibibyte in bytes, as f64 for rate arithmetic.
pub const GB: f64 = 1024.0 * 1024.0 * 1024.0;
/// One mebibyte in bytes, as f64 for rate arithmetic.
pub const MB: f64 = 1024.0 * 1024.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_iii() {
        let a = ClusterSpec::cluster_a();
        assert_eq!(a.nodes, 1);
        assert_eq!(a.total_cores(), 16);
        assert_eq!(a.mem_gb_per_node, 64.0);

        let b = ClusterSpec::cluster_b();
        assert_eq!(b.nodes, 3);
        assert_eq!(b.total_cores(), 48);

        let c = ClusterSpec::cluster_c();
        assert_eq!(c.nodes, 8);
        assert_eq!(c.total_cores(), 128);
        assert_eq!(c.mem_gb_per_node, 16.0);
        assert!(c.net_gbps < a.net_gbps);
    }

    #[test]
    fn env_features_have_six_entries_in_table_ii_order() {
        let c = ClusterSpec::cluster_c();
        let f = c.env_features();
        assert_eq!(f[0], 8.0);
        assert_eq!(f[1], 16.0);
        assert!((f[2] - 2.9).abs() < 1e-12);
        assert_eq!(f[3], 16.0);
        assert_eq!(f[4], 2666.0);
        assert_eq!(f[5], 1.0);
    }

    #[test]
    fn derived_rates_are_positive_and_ordered() {
        let a = ClusterSpec::cluster_a();
        assert!(a.disk_bytes_per_sec() > 0.0);
        // Memory is faster than disk, disk faster than a 1 Gbps link.
        assert!(a.mem_bandwidth_bytes_per_sec() > a.disk_bytes_per_sec());
        let c = ClusterSpec::cluster_c();
        assert!(c.net_bytes_per_sec() < c.disk_bytes_per_sec());
    }

    #[test]
    fn total_memory_scales_with_nodes() {
        let b = ClusterSpec::cluster_b();
        assert_eq!(b.total_mem_bytes(), 3 * b.mem_bytes_per_node());
    }
}

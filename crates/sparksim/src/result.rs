//! Simulation outcomes: per-stage statistics and job-level results.

use serde::{Deserialize, Serialize};

/// Why a simulated run failed. Failed runs are charged the 7200 s cap in
/// the paper's ETR metric (Eq. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureReason {
    /// No executor fits the requested cores/memory on any node.
    InfeasibleAllocation,
    /// A task's working set exceeded the executor heap beyond the spill
    /// safety margin and retries were exhausted.
    ExecutorOom,
    /// Collected results exceeded `spark.driver.maxResultSize`.
    ResultTooLarge,
    /// Collected results overwhelmed the driver heap.
    DriverOom,
}

impl FailureReason {
    /// Short human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FailureReason::InfeasibleAllocation => "infeasible-allocation",
            FailureReason::ExecutorOom => "executor-oom",
            FailureReason::ResultTooLarge => "result-too-large",
            FailureReason::DriverOom => "driver-oom",
        }
    }
}

/// Per-task statistics, recorded when the engine runs with task-level
/// observability enabled (see `exec::SimObs::collect_tasks`). These are the
/// payload of the SLOG v2 `TaskStart`/`TaskEnd` event-log records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskStats {
    /// Task index within its stage (launch order).
    pub index: u32,
    /// Scheduling wave the task launched in (`index / slots`).
    pub wave: u32,
    /// Simulated start time relative to the stage start, in seconds.
    pub start_s: f64,
    /// Simulated task duration in seconds.
    pub duration_s: f64,
    /// Bytes this task spilled to disk.
    pub spill_bytes: u64,
    /// Seconds this task lost to garbage collection.
    pub gc_time_s: f64,
    /// Shuffle bytes this task fetched over the network.
    pub shuffle_read_bytes: u64,
    /// Shuffle bytes this task wrote (post-compression).
    pub shuffle_write_bytes: u64,
}

/// Spark-monitor-UI-style statistics for one executed stage.
///
/// These are the "stage-level data statistics" the paper's `S`-feature
/// baselines consume; NECS itself deliberately does *not* use them (they
/// are only observable after running on the real input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage index within the job.
    pub stage_id: usize,
    /// Stage name from the plan.
    pub name: String,
    /// Wall-clock duration of the stage in seconds.
    pub duration_s: f64,
    /// Number of tasks launched.
    pub num_tasks: u32,
    /// Bytes read by the stage.
    pub input_bytes: u64,
    /// Bytes fetched over the network from the previous shuffle.
    pub shuffle_read_bytes: u64,
    /// Bytes written to shuffle files (post-compression).
    pub shuffle_write_bytes: u64,
    /// Bytes spilled to disk by sort/aggregate buffers.
    pub spill_bytes: u64,
    /// Estimated time lost to garbage collection, in seconds.
    pub gc_time_s: f64,
    /// Peak per-task execution-memory demand in bytes.
    pub peak_task_memory: u64,
    /// Fraction of the stage's cached output that actually fit in the
    /// storage pool (1.0 when not caching or fully cached).
    pub cached_fraction: f64,
    /// Per-task statistics. Empty unless the run was simulated with
    /// task-level observability enabled (the default `simulate` keeps this
    /// empty so dataset builds stay lean).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub tasks: Vec<TaskStats>,
}

/// Result of simulating one application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Total simulated wall-clock time in seconds (including scheduler and
    /// driver time). For failed runs this is the time until failure.
    pub total_time_s: f64,
    /// Per-stage statistics in execution order (stages actually started).
    pub stages: Vec<StageStats>,
    /// Failure, if any.
    pub failure: Option<FailureReason>,
    /// Number of executors the allocator granted.
    pub executors: u32,
    /// Task slots (`executors * executor.cores`).
    pub slots: u32,
}

impl RunResult {
    /// Whether the run completed successfully.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }

    /// Execution time with the paper's failure/time cap applied:
    /// failed or over-cap runs count as `cap_s` (7200 s in the paper).
    pub fn capped_time(&self, cap_s: f64) -> f64 {
        if self.failure.is_some() {
            cap_s
        } else {
            self.total_time_s.min(cap_s)
        }
    }

    /// The "inner status summary" vector used as DDPG state (mirrors the
    /// runtime metrics CDBTune-style tuners read from the engine):
    /// `[log-time, waves, spill-ratio, shuffle-ratio, gc-ratio, cache-hit,
    ///   slot-utilization, failure-flag]`.
    pub fn inner_status(&self) -> [f64; 8] {
        let total_input: u64 = self.stages.iter().map(|s| s.input_bytes).sum();
        let spill: u64 = self.stages.iter().map(|s| s.spill_bytes).sum();
        let shuffle: u64 = self.stages.iter().map(|s| s.shuffle_read_bytes).sum();
        let gc: f64 = self.stages.iter().map(|s| s.gc_time_s).sum();
        let dur: f64 = self.stages.iter().map(|s| s.duration_s).sum::<f64>().max(1e-9);
        let tasks: u32 = self.stages.iter().map(|s| s.num_tasks).sum();
        let waves = if self.slots > 0 { tasks as f64 / self.slots as f64 } else { 0.0 };
        let cache = if self.stages.is_empty() {
            1.0
        } else {
            self.stages.iter().map(|s| s.cached_fraction).sum::<f64>() / self.stages.len() as f64
        };
        [
            (1.0 + self.total_time_s).ln(),
            waves,
            spill as f64 / (total_input.max(1)) as f64,
            shuffle as f64 / (total_input.max(1)) as f64,
            gc / dur,
            cache,
            (tasks as f64 / (self.slots.max(1) as f64 * self.stages.len().max(1) as f64)).min(4.0),
            if self.failure.is_some() { 1.0 } else { 0.0 },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(duration_s: f64) -> StageStats {
        StageStats {
            stage_id: 0,
            name: "s".into(),
            duration_s,
            num_tasks: 8,
            input_bytes: 100,
            shuffle_read_bytes: 10,
            shuffle_write_bytes: 10,
            spill_bytes: 0,
            gc_time_s: 0.0,
            peak_task_memory: 1,
            cached_fraction: 1.0,
            tasks: Vec::new(),
        }
    }

    #[test]
    fn capped_time_applies_cap_on_failure() {
        let ok = RunResult {
            total_time_s: 100.0,
            stages: vec![stage(100.0)],
            failure: None,
            executors: 2,
            slots: 8,
        };
        assert_eq!(ok.capped_time(7200.0), 100.0);

        let failed = RunResult { failure: Some(FailureReason::ExecutorOom), ..ok.clone() };
        assert_eq!(failed.capped_time(7200.0), 7200.0);

        let slow = RunResult { total_time_s: 9000.0, ..ok };
        assert_eq!(slow.capped_time(7200.0), 7200.0);
    }

    #[test]
    fn inner_status_is_finite_and_flags_failure() {
        let r = RunResult {
            total_time_s: 42.0,
            stages: vec![stage(21.0), stage(21.0)],
            failure: Some(FailureReason::DriverOom),
            executors: 2,
            slots: 8,
        };
        let s = r.inner_status();
        assert!(s.iter().all(|v| v.is_finite()));
        assert_eq!(s[7], 1.0);
    }

    #[test]
    fn inner_status_handles_empty_run() {
        let r = RunResult {
            total_time_s: 0.0,
            stages: vec![],
            failure: Some(FailureReason::InfeasibleAllocation),
            executors: 0,
            slots: 0,
        };
        let s = r.inner_status();
        assert!(s.iter().all(|v| v.is_finite()));
    }
}

//! Histogram-binned gradient-boosted regression trees.
//!
//! The paper's strongest non-neural baseline is LightGBM. This module
//! implements the same family: squared-loss gradient boosting where each
//! round fits a depth-limited tree on feature histograms (256 bins,
//! gradient/count statistics per bin) with shrinkage and L2 leaf
//! regularization.

use serde::{Deserialize, Serialize};

/// GBDT hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds.
    pub num_rounds: usize,
    /// Shrinkage.
    pub learning_rate: f64,
    /// Maximum tree depth per round.
    pub max_depth: usize,
    /// Histogram bins per feature (≤ 256).
    pub num_bins: usize,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            num_rounds: 120,
            learning_rate: 0.1,
            max_depth: 5,
            num_bins: 64,
            lambda: 1.0,
            min_samples_leaf: 4,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, bin: u8, left: usize, right: usize },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict_binned(&self, bins: &[u8]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, bin, left, right } => {
                    cur = if bins[*feature] <= *bin { *left } else { *right };
                }
            }
        }
    }
}

/// A fitted GBDT ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtRegressor {
    base: f64,
    trees: Vec<Tree>,
    /// Per-feature bin upper edges (length `num_bins - 1`).
    edges: Vec<Vec<f64>>,
    config: GbdtConfig,
}

impl GbdtRegressor {
    /// Fit on row-major samples.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &GbdtConfig) -> GbdtRegressor {
        assert!(!x.is_empty(), "empty training set");
        assert_eq!(x.len(), y.len());
        assert!(config.num_bins >= 2 && config.num_bins <= 256);
        let num_features = x[0].len();
        let edges: Vec<Vec<f64>> =
            (0..num_features).map(|f| quantile_edges(x, f, config.num_bins)).collect();
        let binned: Vec<Vec<u8>> = x.iter().map(|row| bin_row(row, &edges)).collect();

        let base = y.iter().sum::<f64>() / y.len() as f64;
        let mut pred = vec![base; y.len()];
        let mut trees = Vec::with_capacity(config.num_rounds);
        for _ in 0..config.num_rounds {
            // Squared loss: negative gradient is the residual.
            let grad: Vec<f64> = y.iter().zip(pred.iter()).map(|(t, p)| t - p).collect();
            let idx: Vec<usize> = (0..y.len()).collect();
            let mut tree = Tree { nodes: Vec::new() };
            grow(&mut tree, &binned, &grad, idx, 0, config, num_features);
            for (p, b) in pred.iter_mut().zip(binned.iter()) {
                *p += config.learning_rate * tree.predict_binned(b);
            }
            trees.push(tree);
        }
        GbdtRegressor { base, trees, edges, config: *config }
    }

    /// Predict one sample.
    pub fn predict(&self, sample: &[f64]) -> f64 {
        let bins = bin_row(sample, &self.edges);
        self.base
            + self.config.learning_rate
                * self.trees.iter().map(|t| t.predict_binned(&bins)).sum::<f64>()
    }

    /// Number of boosting rounds fitted.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

fn quantile_edges(x: &[Vec<f64>], feature: usize, num_bins: usize) -> Vec<f64> {
    let mut vals: Vec<f64> = x.iter().map(|r| r[feature]).collect();
    vals.sort_by(f64::total_cmp);
    vals.dedup();
    let n_edges = num_bins - 1;
    if vals.len() <= 1 {
        return Vec::new();
    }
    (1..=n_edges)
        .map(|k| {
            let q = k as f64 / num_bins as f64;
            let pos = (q * (vals.len() - 1) as f64).round() as usize;
            vals[pos.min(vals.len() - 1)]
        })
        .collect()
}

fn bin_row(row: &[f64], edges: &[Vec<f64>]) -> Vec<u8> {
    row.iter().zip(edges.iter()).map(|(&v, e)| e.partition_point(|&edge| edge < v) as u8).collect()
}

fn grow(
    tree: &mut Tree,
    binned: &[Vec<u8>],
    grad: &[f64],
    idx: Vec<usize>,
    depth: usize,
    config: &GbdtConfig,
    num_features: usize,
) -> usize {
    let node_id = tree.nodes.len();
    let g_sum: f64 = idx.iter().map(|&i| grad[i]).sum();
    let n = idx.len() as f64;
    let leaf_value = g_sum / (n + config.lambda);
    if depth >= config.max_depth || idx.len() < 2 * config.min_samples_leaf {
        tree.nodes.push(Node::Leaf { value: leaf_value });
        return node_id;
    }

    // Histogram per feature: (grad sum, count) per bin; pick the split
    // maximizing the regularized gain.
    let parent_score = g_sum * g_sum / (n + config.lambda);
    let mut best: Option<(usize, u8, f64)> = None;
    // `f` indexes the second dimension of `binned[i][f]`, not `binned`
    // itself, so the iterator rewrite the lint suggests does not apply.
    #[allow(clippy::needless_range_loop)]
    for f in 0..num_features {
        let mut hist_g = [0.0f64; 256];
        let mut hist_n = [0u32; 256];
        let mut max_bin = 0usize;
        for &i in &idx {
            let b = binned[i][f] as usize;
            hist_g[b] += grad[i];
            hist_n[b] += 1;
            max_bin = max_bin.max(b);
        }
        let mut left_g = 0.0;
        let mut left_n = 0u32;
        for b in 0..max_bin {
            left_g += hist_g[b];
            left_n += hist_n[b];
            let right_n = idx.len() as u32 - left_n;
            if (left_n as usize) < config.min_samples_leaf
                || (right_n as usize) < config.min_samples_leaf
            {
                continue;
            }
            let right_g = g_sum - left_g;
            let score = left_g * left_g / (left_n as f64 + config.lambda)
                + right_g * right_g / (right_n as f64 + config.lambda);
            if score > parent_score + 1e-12 && best.is_none_or(|(_, _, s)| score > s) {
                best = Some((f, b as u8, score));
            }
        }
    }

    let Some((feature, bin, _)) = best else {
        tree.nodes.push(Node::Leaf { value: leaf_value });
        return node_id;
    };
    let (li, ri): (Vec<usize>, Vec<usize>) =
        idx.into_iter().partition(|&i| binned[i][feature] <= bin);
    tree.nodes.push(Node::Leaf { value: leaf_value });
    let left = grow(tree, binned, grad, li, depth + 1, config, num_features);
    let right = grow(tree, binned, grad, ri, depth + 1, config, num_features);
    tree.nodes[node_id] = Node::Split { feature, bin, left, right };
    node_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn nonlinear(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n).map(|_| (0..3).map(|_| rng.gen::<f64>()).collect()).collect();
        let y: Vec<f64> =
            x.iter().map(|v| (v[0] * 6.0).sin() * 3.0 + v[1] * v[1] * 4.0 - 2.0 * v[2]).collect();
        (x, y)
    }

    #[test]
    fn gbdt_fits_nonlinear_target() {
        let (x, y) = nonlinear(600, 1);
        let model = GbdtRegressor::fit(&x, &y, &GbdtConfig::default());
        let (tx, ty) = nonlinear(150, 2);
        let var = {
            let m = ty.iter().sum::<f64>() / ty.len() as f64;
            ty.iter().map(|v| (v - m).powi(2)).sum::<f64>()
        };
        let sse: f64 = tx.iter().zip(ty.iter()).map(|(v, t)| (model.predict(v) - t).powi(2)).sum();
        assert!(sse < 0.15 * var, "R2 too low: sse {sse} var {var}");
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let (x, y) = nonlinear(300, 3);
        let small = GbdtRegressor::fit(&x, &y, &GbdtConfig { num_rounds: 5, ..Default::default() });
        let large =
            GbdtRegressor::fit(&x, &y, &GbdtConfig { num_rounds: 100, ..Default::default() });
        let sse = |m: &GbdtRegressor| -> f64 {
            x.iter().zip(y.iter()).map(|(v, t)| (m.predict(v) - t).powi(2)).sum()
        };
        assert!(sse(&large) < sse(&small));
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![3.5; 20];
        let model = GbdtRegressor::fit(&x, &y, &GbdtConfig::default());
        assert!((model.predict(&[7.0]) - 3.5).abs() < 1e-9);
        assert!((model.predict(&[-100.0]) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn binning_handles_duplicate_values() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 2) as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| (i % 2) as f64 * 10.0).collect();
        let model = GbdtRegressor::fit(&x, &y, &GbdtConfig::default());
        assert!((model.predict(&[0.0]) - 0.0).abs() < 0.5);
        assert!((model.predict(&[1.0]) - 10.0).abs() < 0.5);
    }

    #[test]
    fn deterministic_fit() {
        let (x, y) = nonlinear(100, 4);
        let a = GbdtRegressor::fit(&x, &y, &GbdtConfig::default());
        let b = GbdtRegressor::fit(&x, &y, &GbdtConfig::default());
        let probe = vec![0.5, 0.5, 0.5];
        assert_eq!(a.predict(&probe), b.predict(&probe));
    }
}

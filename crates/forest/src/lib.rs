//! # lite-forest — tree-ensemble substrate
//!
//! Two of the paper's components need tree models:
//!
//! * **Adaptive Candidate Generation** fits one Random Forest Regression
//!   per knob mapping (application, input datasize) to a promising knob
//!   value (paper Eq. 6) — provided by [`rf::RandomForestRegressor`].
//! * The strongest non-neural baseline of Table VII is **LightGBM**; its
//!   stand-in here is [`gbdt::GbdtRegressor`], a histogram-binned,
//!   leaf-wise gradient-boosted tree ensemble of the same family.
//!
//! Both are built on [`cart::RegressionTree`], an exact variance-gain CART
//! learner. All models take explicit seeds and are deterministic.

pub mod cart;
pub mod gbdt;
pub mod rf;

pub use cart::RegressionTree;
pub use gbdt::GbdtRegressor;
pub use rf::RandomForestRegressor;

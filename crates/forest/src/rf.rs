//! Random-forest regression (bagged CART with feature subsampling).
//!
//! Adaptive Candidate Generation (paper Section IV-A) fits one of these
//! per knob: `RFR^d(app, datasize) → knob value`.

use crate::cart::{RegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for the forest.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree config (feature subsampling defaults to `sqrt(F)` when
    /// `max_features` is `None` here).
    pub tree: TreeConfig,
    /// Bootstrap sample fraction of the training set.
    pub sample_fraction: f64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            num_trees: 64,
            tree: TreeConfig { max_depth: 10, ..Default::default() },
            sample_fraction: 1.0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestRegressor {
    trees: Vec<RegressionTree>,
}

impl RandomForestRegressor {
    /// Fit with bootstrap bagging; deterministic per seed.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &ForestConfig, seed: u64) -> Self {
        assert!(!x.is_empty(), "empty training set");
        assert_eq!(x.len(), y.len());
        let num_features = x[0].len();
        let mut tree_cfg = config.tree;
        if tree_cfg.max_features.is_none() {
            tree_cfg.max_features = Some(((num_features as f64).sqrt().ceil() as usize).max(1));
        }
        let n_boot = ((x.len() as f64 * config.sample_fraction).round() as usize).max(1);
        let trees = (0..config.num_trees)
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 0x9e37));
                let mut bx = Vec::with_capacity(n_boot);
                let mut by = Vec::with_capacity(n_boot);
                for _ in 0..n_boot {
                    let i = rng.gen_range(0..x.len());
                    bx.push(x[i].clone());
                    by.push(y[i]);
                }
                RegressionTree::fit(&bx, &by, &tree_cfg, &mut rng)
            })
            .collect();
        RandomForestRegressor { trees }
    }

    /// Mean prediction over trees.
    pub fn predict(&self, sample: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(sample)).sum::<f64>() / self.trees.len() as f64
    }

    /// Per-tree predictions (for uncertainty diagnostics).
    pub fn predict_all(&self, sample: &[f64]) -> Vec<f64> {
        self.trees.iter().map(|t| t.predict(sample)).collect()
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn friedman_like(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n).map(|_| (0..4).map(|_| rng.gen::<f64>()).collect()).collect();
        let y: Vec<f64> =
            x.iter().map(|v| 10.0 * v[0] + 5.0 * (v[1] * v[2]) - 3.0 * v[3]).collect();
        (x, y)
    }

    #[test]
    fn forest_beats_mean_predictor() {
        let (x, y) = friedman_like(400, 1);
        let rf = RandomForestRegressor::fit(&x, &y, &ForestConfig::default(), 7);
        let (tx, ty) = friedman_like(100, 2);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let mut sse_rf = 0.0;
        let mut sse_mean = 0.0;
        for (v, t) in tx.iter().zip(ty.iter()) {
            sse_rf += (rf.predict(v) - t).powi(2);
            sse_mean += (mean - t).powi(2);
        }
        assert!(sse_rf < 0.25 * sse_mean, "rf {sse_rf} vs mean {sse_mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = friedman_like(100, 3);
        let a = RandomForestRegressor::fit(&x, &y, &ForestConfig::default(), 9);
        let b = RandomForestRegressor::fit(&x, &y, &ForestConfig::default(), 9);
        let c = RandomForestRegressor::fit(&x, &y, &ForestConfig::default(), 10);
        let probe = vec![0.3, 0.5, 0.2, 0.9];
        assert_eq!(a.predict(&probe), b.predict(&probe));
        assert_ne!(a.predict(&probe), c.predict(&probe));
    }

    #[test]
    fn prediction_is_mean_of_trees() {
        let (x, y) = friedman_like(80, 4);
        let rf = RandomForestRegressor::fit(
            &x,
            &y,
            &ForestConfig { num_trees: 8, ..Default::default() },
            5,
        );
        let probe = vec![0.1, 0.9, 0.4, 0.6];
        let all = rf.predict_all(&probe);
        assert_eq!(all.len(), 8);
        let mean = all.iter().sum::<f64>() / 8.0;
        assert!((mean - rf.predict(&probe)).abs() < 1e-12);
    }
}

//! CART regression trees with exact variance-gain splits.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for tree induction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Number of features examined per split (`None` = all).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 12, min_samples_split: 4, min_samples_leaf: 2, max_features: None }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A fitted regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl RegressionTree {
    /// Fit on row-major samples. `rng` drives feature subsampling when
    /// `config.max_features` is set; pass any seeded rng for determinism.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &TreeConfig, rng: &mut StdRng) -> RegressionTree {
        assert!(!x.is_empty(), "empty training set");
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        let num_features = x[0].len();
        let mut tree = RegressionTree { nodes: Vec::new(), num_features };
        let idx: Vec<usize> = (0..x.len()).collect();
        tree.grow(x, y, idx, 0, config, rng);
        tree
    }

    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: Vec<usize>,
        depth: usize,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> usize {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        let node_id = self.nodes.len();
        if depth >= config.max_depth || idx.len() < config.min_samples_split {
            self.nodes.push(Node::Leaf { value: mean });
            return node_id;
        }

        let mut features: Vec<usize> = (0..self.num_features).collect();
        if let Some(k) = config.max_features {
            features.shuffle(rng);
            features.truncate(k.max(1).min(self.num_features));
        }

        let best = best_split(x, y, &idx, &features, config.min_samples_leaf);
        let Some((feature, threshold)) = best else {
            self.nodes.push(Node::Leaf { value: mean });
            return node_id;
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.into_iter().partition(|&i| x[i][feature] <= threshold);
        // Reserve the split slot, grow children, then fill it.
        self.nodes.push(Node::Leaf { value: mean });
        let left = self.grow(x, y, left_idx, depth + 1, config, rng);
        let right = self.grow(x, y, right_idx, depth + 1, config, rng);
        self.nodes[node_id] = Node::Split { feature, threshold, left, right };
        node_id
    }

    /// Predict one sample.
    pub fn predict(&self, sample: &[f64]) -> f64 {
        assert_eq!(sample.len(), self.num_features, "feature count mismatch");
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    cur = if sample[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }
}

/// Exhaustive best split over candidate features by weighted-variance
/// (equivalently SSE) reduction. Returns `None` when no split satisfies
/// the leaf-size constraint or reduces impurity.
fn best_split(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &[usize],
    features: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64)> {
    let n = idx.len() as f64;
    let total_sum: f64 = idx.iter().map(|&i| y[i]).sum();
    let parent_sse_base = total_sum * total_sum / n;

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
    for &f in features {
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));
        let mut left_sum = 0.0;
        let mut left_n = 0.0;
        for w in 0..order.len() - 1 {
            let i = order[w];
            left_sum += y[i];
            left_n += 1.0;
            let xv = x[i][f];
            let xn = x[order[w + 1]][f];
            if xv == xn {
                continue; // can't split between equal values
            }
            let ln = w + 1;
            let rn = order.len() - ln;
            if ln < min_leaf || rn < min_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            // Maximizing sum-of-squares of child means == minimizing SSE.
            let score = left_sum * left_sum / left_n + right_sum * right_sum / (n - left_n);
            if score > parent_sse_base + 1e-12 && best.is_none_or(|(_, _, s)| score > s) {
                best = Some((f, (xv + xn) / 2.0, score));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fits_a_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng());
        assert!((tree.predict(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict(&[30.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..128).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let cfg = TreeConfig { max_depth: 2, ..Default::default() };
        let tree = RegressionTree::fit(&x, &y, &cfg, &mut rng());
        assert!(tree.num_leaves() <= 4, "{} leaves at depth 2", tree.num_leaves());
    }

    #[test]
    fn predictions_stay_in_target_hull() {
        let mut r = rng();
        use rand::Rng;
        let x: Vec<Vec<f64>> = (0..200).map(|_| vec![r.gen::<f64>(), r.gen::<f64>()]).collect();
        let y: Vec<f64> = x.iter().map(|v| v[0] * 3.0 - v[1]).collect();
        let (lo, hi) =
            y.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| (l.min(v), h.max(v)));
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng());
        for _ in 0..100 {
            let p = tree.predict(&[r.gen::<f64>() * 2.0 - 0.5, r.gen::<f64>() * 2.0 - 0.5]);
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 10];
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict(&[100.0]), 7.0);
    }

    #[test]
    fn min_samples_leaf_is_enforced() {
        let x: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let y = vec![0.0, 0.0, 0.0, 0.0, 0.0, 10.0];
        let cfg = TreeConfig { min_samples_leaf: 3, ..Default::default() };
        let tree = RegressionTree::fit(&x, &y, &cfg, &mut rng());
        // The only allowed split is 3/3; outlier can't be isolated.
        assert!(tree.num_leaves() <= 2);
    }

    #[test]
    fn ties_in_feature_values_do_not_split_between_equals() {
        let x: Vec<Vec<f64>> = vec![vec![1.0], vec![1.0], vec![2.0], vec![2.0]];
        let y = vec![0.0, 1.0, 10.0, 11.0];
        let tree = RegressionTree::fit(
            &x,
            &y,
            &TreeConfig { min_samples_leaf: 1, ..Default::default() },
            &mut rng(),
        );
        assert!((tree.predict(&[1.0]) - 0.5).abs() < 1e-9);
        assert!((tree.predict(&[2.0]) - 10.5).abs() < 1e-9);
    }
}

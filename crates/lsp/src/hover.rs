//! NECS-backed hover: predict the open document's runtime.
//!
//! Hover text answers the question a tuning engineer actually has while
//! editing stage code: *how long will this run under the best
//! configuration LITE would pick right now?* The pipeline is the paper's
//! cold-start path applied to the live buffer:
//!
//! 1. [`extract_stages`] recovers the document's stage templates
//!    statically (no run);
//! 2. each template is expanded to stage-level source and interned into a
//!    clone of the tuner's registry — NECS encodes unseen templates from
//!    their code, so an edited document needs no retraining;
//! 3. ACG samples candidate configurations and one **batched**
//!    [`score_candidates`] pass prices all of them plus the default
//!    configuration.
//!
//! Training the scorer is expensive, so it is built lazily on the first
//! hover and controlled by [`ScorerConfig`]: `LITE_LSP_QUICK=1` selects a
//! deliberately tiny dataset/epoch budget for smoke tests and first-run
//! latency; the default is a fuller (still single-cluster) setup.

use lite_analyze::extract::{extract_stages, ExtractOptions};
use lite_core::experiment::PredictionContext;
use lite_core::recommend::score_candidates;
use lite_core::{LiteTuner, NecsConfig};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::ConfSpace;
use lite_sparksim::plan::OpDag;
use lite_workloads::apps::AppId;
use lite_workloads::data::SizeTier;
use lite_workloads::instrument::StageCode;
use lite_workloads::srcgen::expand_stage_source;
use std::cell::OnceCell;

/// Offline-training budget for the hover scorer.
#[derive(Debug, Clone)]
pub struct ScorerConfig {
    /// Apps whose runs train NECS/ACG (and seed the vocabulary).
    pub apps: Vec<AppId>,
    /// Size tiers per app.
    pub tiers: Vec<SizeTier>,
    /// Sampled configurations per (app, cluster, tier) cell.
    pub confs_per_cell: usize,
    /// NECS training epochs.
    pub epochs: usize,
    /// Seed for sampling, training and candidate generation.
    pub seed: u64,
}

impl ScorerConfig {
    /// Tiny budget: two fast apps, one tier, two epochs. First hover
    /// trains in a few seconds; predictions are rough but well-formed.
    pub fn quick() -> ScorerConfig {
        ScorerConfig {
            apps: vec![AppId::Sort, AppId::Terasort],
            tiers: vec![SizeTier::Train(0)],
            confs_per_cell: 3,
            epochs: 2,
            seed: 0x11fe,
        }
    }

    /// Fuller budget: every app, two training tiers.
    pub fn full() -> ScorerConfig {
        ScorerConfig {
            apps: AppId::all().to_vec(),
            tiers: vec![SizeTier::Train(0), SizeTier::Train(1)],
            confs_per_cell: 6,
            epochs: 12,
            seed: 0x11fe,
        }
    }

    /// `LITE_LSP_QUICK=1` selects [`ScorerConfig::quick`].
    pub fn from_env() -> ScorerConfig {
        match std::env::var("LITE_LSP_QUICK") {
            Ok(v) if v == "1" => ScorerConfig::quick(),
            _ => ScorerConfig::full(),
        }
    }
}

/// Lazily trained scorer; the server owns one per process.
pub struct ScorerHandle {
    cfg: ScorerConfig,
    cell: OnceCell<HoverScorer>,
}

impl ScorerHandle {
    pub fn new(cfg: ScorerConfig) -> ScorerHandle {
        ScorerHandle { cfg, cell: OnceCell::new() }
    }

    /// Hover markdown for a document, or `None` when the document has no
    /// extractable stage plan (e.g. it does not parse).
    pub fn hover(&self, text: &str) -> Option<String> {
        self.cell.get_or_init(|| HoverScorer::train(&self.cfg)).hover(text)
    }
}

struct HoverScorer {
    tuner: LiteTuner,
    cluster: ClusterSpec,
}

impl HoverScorer {
    fn train(cfg: &ScorerConfig) -> HoverScorer {
        let cluster = ClusterSpec::cluster_a();
        let ds = lite_core::DatasetBuilder {
            apps: cfg.apps.clone(),
            clusters: vec![cluster.clone()],
            tiers: cfg.tiers.clone(),
            confs_per_cell: cfg.confs_per_cell,
            seed: cfg.seed,
        }
        .build();
        let necs = NecsConfig { epochs: cfg.epochs, seed: cfg.seed, ..NecsConfig::default() };
        let tuner = LiteTuner::from_dataset(&ds, necs, cfg.seed);
        HoverScorer { tuner, cluster }
    }

    fn hover(&self, text: &str) -> Option<String> {
        let ext = extract_stages(text, ExtractOptions::default()).ok()?;
        if ext.stages.is_empty() {
            return None;
        }
        // Anchor data-size/candidate sampling on the named corpus app when
        // the buffer names one; otherwise fall back to the generic
        // shuffle app. The *stage plan* always comes from the buffer.
        let app = ext
            .app_name
            .as_deref()
            .and_then(|n| AppId::all().iter().copied().find(|a| a.name() == n))
            .unwrap_or(AppId::Sort);
        let mut registry = self.tuner.registry.clone();
        let mut stages = Vec::new();
        for t in &ext.stages {
            let dag = OpDag::chain(&t.ops);
            let source = expand_stage_source(&dag, app.stage_closure(&t.template));
            let code = StageCode {
                template: t.template.clone(),
                dag,
                source,
                instances_per_run: t.instances_per_run.max(1),
            };
            let key = registry.intern(app, &code);
            stages.extend(std::iter::repeat_n(key, t.instances_per_run.max(1)));
        }
        let data = app.dataset(SizeTier::Test);
        let ctx = PredictionContext { app, data, env: self.cluster.env_features(), stages };
        let mut confs = self.tuner.acg.candidates_seeded(
            app,
            &ctx.data,
            &ctx.env,
            self.tuner.num_candidates,
            0x5eed,
        );
        let n_candidates = confs.len();
        confs.push(ConfSpace::table_iv().default_conf());
        let scores = score_candidates(
            &self.tuner.model,
            &registry,
            &ctx,
            &self.cluster,
            &confs,
            &self.tuner.tracer,
        );
        let default_s = *scores.last()?;
        let best_s = scores[..n_candidates].iter().copied().fold(f64::INFINITY, f64::min);
        let best_s = if best_s.is_finite() { best_s } else { default_s };
        Some(format!(
            "**NECS-predicted runtime: {best_s:.1} s** under the best of {n_candidates} \
             candidate configurations (default configuration: {default_s:.1} s).\n\n\
             Stage plan: {} template(s), {} instance(s) per run.",
            ext.stages.len(),
            ctx.stages.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hover_prices_a_plain_pipeline_document() {
        let handle = ScorerHandle::new(ScorerConfig::quick());
        let doc = "val sc = new SparkContext(sparkConf)\n\
                   val data = sc.textFile(p).map(x => x)\n\
                   val n = data.sortByKey(t).count\n";
        let text = handle.hover(doc).expect("hover produces a prediction");
        assert!(text.contains("NECS-predicted runtime"), "{text}");
        assert!(text.contains("candidate configurations"), "{text}");
        // A broken document yields no hover rather than a crash.
        assert!(handle.hover("val broken = sc.textFile(\n").is_none());
    }
}

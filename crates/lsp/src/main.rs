//! `lite-lsp` binary: stdio JSON-RPC loop around [`lite_lsp::LspServer`].
//!
//! Stdout carries only framed protocol messages (written through
//! [`lite_lsp::write_message`], never `println!` — the workspace denies
//! `print_stdout` and the protocol would corrupt anyway). Transport
//! errors go to stderr and terminate the process with a nonzero status;
//! a clean `exit` notification (or EOF) terminates with zero.

use std::io::{self, BufReader, Write};

fn main() {
    let mut server = lite_lsp::LspServer::default();
    let stdin = io::stdin();
    let mut reader = BufReader::new(stdin.lock());
    let stdout = io::stdout();
    let mut writer = stdout.lock();
    loop {
        let msg = match lite_lsp::read_message(&mut reader) {
            Ok(Some(m)) => m,
            Ok(None) => break, // EOF: client went away
            Err(e) => {
                let _ = writeln!(io::stderr(), "lite-lsp: transport error: {e}");
                std::process::exit(1);
            }
        };
        for out in server.handle(&msg) {
            if let Err(e) = lite_lsp::write_message(&mut writer, &out) {
                let _ = writeln!(io::stderr(), "lite-lsp: write failed: {e}");
                std::process::exit(1);
            }
        }
        if server.exited() {
            break;
        }
    }
}

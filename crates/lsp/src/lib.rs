//! lite-lsp: a dependency-free Language Server Protocol server exposing
//! the static analysis plane interactively.
//!
//! Three capabilities, all built on `lite-analyze`'s incremental layer:
//!
//! * **publishDiagnostics** — the five semantic lints plus `syntax-error`
//!   chunk diagnostics, re-run through the memoizing [`DocAnalyzer`] on
//!   every `didChange` (full-document sync);
//! * **codeAction** — machine-applicable quick fixes from the auto-fix
//!   engine (`insert .cache()`, drop single-use caches, `map` →
//!   `mapValues`), each delivered as a whole-document edit through the
//!   canonical pretty-printer, plus a fix-all action running the engine
//!   to its fixpoint;
//! * **hover** — the NECS-predicted runtime of the document's extracted
//!   stage plan under the current best candidate configuration (batched
//!   scorer; see [`hover`]).
//!
//! Transport is JSON-RPC 2.0 over stdio with `Content-Length` framing
//! ([`read_message`] / [`write_message`]), serialized with the
//! workspace's own [`lite_obs::json::Json`] — no external JSON or LSP
//! crates. The server core ([`LspServer::handle`]) is a pure
//! message-in/messages-out function, so the scripted session test drives
//! it through the real binary and stdio alone.

pub mod hover;

use lite_analyze::fix::{apply_fix, apply_fixes, plan_fixes};
use lite_analyze::lint::{Diagnostic, SYNTAX_ERROR};
use lite_analyze::parse::parse;
use lite_analyze::DocAnalyzer;
use lite_obs::json::Json;
use lite_obs::Registry;
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Read one `Content-Length`-framed JSON-RPC message. `Ok(None)` on a
/// clean EOF before any header.
pub fn read_message(r: &mut impl BufRead) -> io::Result<Option<Json>> {
    let mut len: Option<usize> = None;
    loop {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            if len.is_some() {
                break;
            }
            continue; // stray blank line between messages
        }
        if let Some(v) = trimmed.strip_prefix("Content-Length:") {
            len = v.trim().parse().ok();
        }
    }
    let n = len.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing length"))?;
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    let text = String::from_utf8(buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Json::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad JSON: {e:?}")))
}

/// Write one framed JSON-RPC message and flush.
pub fn write_message(w: &mut impl Write, msg: &Json) -> io::Result<()> {
    let body = msg.render();
    write!(w, "Content-Length: {}\r\n\r\n{body}", body.len())?;
    w.flush()
}

/// 0-based (line, character) of a byte offset, clamped to the text.
fn position_at(text: &str, byte: usize) -> (usize, usize) {
    let upto = &text.as_bytes()[..byte.min(text.len())];
    let line = upto.iter().filter(|&&b| b == b'\n').count();
    let col = upto.len() - upto.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    (line, col)
}

fn pos_json((line, character): (usize, usize)) -> Json {
    Json::obj(vec![("line", Json::UInt(line as u64)), ("character", Json::UInt(character as u64))])
}

fn range_json(start: (usize, usize), end: (usize, usize)) -> Json {
    Json::obj(vec![("start", pos_json(start)), ("end", pos_json(end))])
}

fn diag_json(text: &str, d: &Diagnostic) -> Json {
    // Lint spans carry a 1-based start line/col plus byte offsets; the
    // end position only exists as a byte offset.
    let start = if d.span.line > 0 {
        (d.span.line as usize - 1, d.span.col.saturating_sub(1) as usize)
    } else {
        position_at(text, d.span.start)
    };
    let end = if d.span.end > d.span.start { position_at(text, d.span.end) } else { start };
    let severity = if d.rule == SYNTAX_ERROR { 1 } else { 2 };
    Json::obj(vec![
        ("range", range_json(start, end)),
        ("severity", Json::Int(severity)),
        ("code", Json::Str(d.rule.to_string())),
        ("source", Json::Str("lite".to_string())),
        ("message", Json::Str(d.message.clone())),
    ])
}

/// One open document: current text plus its memoizing analyzer.
struct DocState {
    text: String,
    analyzer: DocAnalyzer,
    diagnostics: Vec<Diagnostic>,
}

/// The server core. Feed it decoded messages; it returns the framed-ready
/// replies (responses and notifications) in order.
pub struct LspServer {
    docs: HashMap<String, DocState>,
    scorer: hover::ScorerHandle,
    metrics: Registry,
    exited: bool,
}

impl Default for LspServer {
    fn default() -> Self {
        Self::new(hover::ScorerConfig::from_env())
    }
}

impl LspServer {
    pub fn new(scorer_cfg: hover::ScorerConfig) -> LspServer {
        LspServer {
            docs: HashMap::new(),
            scorer: hover::ScorerHandle::new(scorer_cfg),
            metrics: Registry::new(),
            exited: false,
        }
    }

    /// True once an `exit` notification arrived; the stdio loop stops.
    pub fn exited(&self) -> bool {
        self.exited
    }

    /// Metrics registry backing the `lsp.*` series.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Process one incoming message; returns outgoing messages in order.
    pub fn handle(&mut self, msg: &Json) -> Vec<Json> {
        self.metrics.counter("lsp.requests").inc();
        let method = msg.get("method").and_then(|m| m.as_str()).unwrap_or("").to_string();
        let id = msg.get("id").cloned();
        let params = msg.get("params").cloned().unwrap_or(Json::Null);
        match method.as_str() {
            "initialize" => vec![response(id, capabilities())],
            "initialized" | "$/cancelRequest" | "textDocument/didSave" => vec![],
            "textDocument/didOpen" => {
                let doc = params.get("textDocument").cloned().unwrap_or(Json::Null);
                let uri = str_field(&doc, "uri");
                let text = str_field(&doc, "text");
                self.update_doc(&uri, text)
            }
            "textDocument/didChange" => {
                let uri =
                    str_field(&params.get("textDocument").cloned().unwrap_or(Json::Null), "uri");
                // Full sync: the last content change wins.
                let text = params
                    .get("contentChanges")
                    .and_then(|c| c.as_arr())
                    .and_then(|a| a.last())
                    .map(|c| str_field(c, "text"))
                    .unwrap_or_default();
                self.update_doc(&uri, text)
            }
            "textDocument/didClose" => {
                let uri =
                    str_field(&params.get("textDocument").cloned().unwrap_or(Json::Null), "uri");
                self.docs.remove(&uri);
                vec![publish(&uri, Json::Arr(Vec::new()))]
            }
            "textDocument/hover" => {
                self.metrics.counter("lsp.hover").inc();
                let uri =
                    str_field(&params.get("textDocument").cloned().unwrap_or(Json::Null), "uri");
                let result = self
                    .docs
                    .get(&uri)
                    .and_then(|d| self.scorer.hover(&d.text))
                    .map(|value| {
                        Json::obj(vec![(
                            "contents",
                            Json::obj(vec![
                                ("kind", Json::Str("markdown".to_string())),
                                ("value", Json::Str(value)),
                            ]),
                        )])
                    })
                    .unwrap_or(Json::Null);
                vec![response(id, result)]
            }
            "textDocument/codeAction" => {
                let uri =
                    str_field(&params.get("textDocument").cloned().unwrap_or(Json::Null), "uri");
                let actions = self.code_actions(&uri);
                self.metrics.counter("lsp.code_actions").add(actions.len() as u64);
                vec![response(id, Json::Arr(actions))]
            }
            "shutdown" => vec![response(id, Json::Null)],
            "exit" => {
                self.exited = true;
                vec![]
            }
            _ if id.is_some() => vec![error_response(id, -32601, "method not found")],
            _ => vec![],
        }
    }

    fn update_doc(&mut self, uri: &str, text: String) -> Vec<Json> {
        let entry = self.docs.entry(uri.to_string()).or_insert_with(|| DocState {
            text: String::new(),
            analyzer: DocAnalyzer::new(),
            diagnostics: Vec::new(),
        });
        let t0 = Instant::now();
        let analysis = entry.analyzer.update(&text);
        self.metrics.histogram("lsp.update_us").record(t0.elapsed().as_micros() as u64);
        entry.text = text;
        entry.diagnostics = analysis.diagnostics;
        let payload =
            Json::Arr(entry.diagnostics.iter().map(|d| diag_json(&entry.text, d)).collect());
        self.metrics.counter("lsp.diagnostics_published").add(entry.diagnostics.len() as u64);
        vec![publish(uri, payload)]
    }

    /// Quick-fix actions for a document: one per planned fix, plus a
    /// fix-all running the engine to its fixpoint. Every edit is a
    /// whole-document replacement through the canonical printer — the
    /// only edit shape whose result is guaranteed to re-parse.
    fn code_actions(&self, uri: &str) -> Vec<Json> {
        let Some(doc) = self.docs.get(uri) else { return Vec::new() };
        let Ok(prog) = parse(&doc.text) else { return Vec::new() };
        let flow = lite_analyze::dataflow::analyze(&prog);
        let fixes = plan_fixes(&prog, &flow);
        let mut actions = Vec::new();
        for f in &fixes {
            let mut patched = prog.clone();
            if !apply_fix(&mut patched, f) {
                continue;
            }
            actions.push(action_json(uri, &doc.text, &f.title, &patched.pretty()));
        }
        if fixes.len() > 1 {
            if let Ok(out) = apply_fixes(&doc.text) {
                if !out.applied.is_empty() {
                    let title = format!("Fix all ({} fixes)", out.applied.len());
                    actions.push(action_json(uri, &doc.text, &title, &out.source));
                }
            }
        }
        actions
    }
}

fn str_field(obj: &Json, key: &str) -> String {
    obj.get(key).and_then(|v| v.as_str()).unwrap_or("").to_string()
}

fn response(id: Option<Json>, result: Json) -> Json {
    Json::obj(vec![
        ("jsonrpc", Json::Str("2.0".to_string())),
        ("id", id.unwrap_or(Json::Null)),
        ("result", result),
    ])
}

fn error_response(id: Option<Json>, code: i64, message: &str) -> Json {
    Json::obj(vec![
        ("jsonrpc", Json::Str("2.0".to_string())),
        ("id", id.unwrap_or(Json::Null)),
        (
            "error",
            Json::obj(vec![("code", Json::Int(code)), ("message", Json::Str(message.to_string()))]),
        ),
    ])
}

fn publish(uri: &str, diagnostics: Json) -> Json {
    Json::obj(vec![
        ("jsonrpc", Json::Str("2.0".to_string())),
        ("method", Json::Str("textDocument/publishDiagnostics".to_string())),
        (
            "params",
            Json::obj(vec![("uri", Json::Str(uri.to_string())), ("diagnostics", diagnostics)]),
        ),
    ])
}

fn capabilities() -> Json {
    Json::obj(vec![(
        "capabilities",
        Json::obj(vec![
            ("textDocumentSync", Json::Int(1)), // full-document sync
            ("hoverProvider", Json::Bool(true)),
            ("codeActionProvider", Json::Bool(true)),
        ]),
    )])
}

fn action_json(uri: &str, old_text: &str, title: &str, new_text: &str) -> Json {
    let full = range_json((0, 0), position_at(old_text, old_text.len()));
    let edit = Json::obj(vec![(
        "changes",
        Json::Obj(vec![(
            uri.to_string(),
            Json::Arr(vec![Json::obj(vec![
                ("range", full),
                ("newText", Json::Str(new_text.to_string())),
            ])]),
        )]),
    )]);
    Json::obj(vec![
        ("title", Json::Str(title.to_string())),
        ("kind", Json::Str("quickfix".to_string())),
        ("edit", edit),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: i64, method: &str, params: Json) -> Json {
        Json::obj(vec![
            ("jsonrpc", Json::Str("2.0".to_string())),
            ("id", Json::Int(id)),
            ("method", Json::Str(method.to_string())),
            ("params", params),
        ])
    }

    fn notif(method: &str, params: Json) -> Json {
        Json::obj(vec![
            ("jsonrpc", Json::Str("2.0".to_string())),
            ("method", Json::Str(method.to_string())),
            ("params", params),
        ])
    }

    fn open(uri: &str, text: &str) -> Json {
        notif(
            "textDocument/didOpen",
            Json::obj(vec![(
                "textDocument",
                Json::obj(vec![
                    ("uri", Json::Str(uri.to_string())),
                    ("text", Json::Str(text.to_string())),
                ]),
            )]),
        )
    }

    const DEFECT: &str = "val sc = new SparkContext(sparkConf)\n\
                          val parsed = sc.textFile(p).map(x => x)\n\
                          val a = parsed.count\n\
                          val b = parsed.count\n";

    #[test]
    fn framing_round_trips() {
        let msg = req(7, "shutdown", Json::Null);
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let back = read_message(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back.render(), msg.render());
        // EOF is a clean None.
        assert!(read_message(&mut &b""[..]).unwrap().is_none());
    }

    #[test]
    fn did_open_publishes_lint_diagnostics_with_zero_based_ranges() {
        let mut srv = LspServer::new(hover::ScorerConfig::quick());
        let out = srv.handle(&open("file:///a.scala", DEFECT));
        assert_eq!(out.len(), 1);
        let diags = out[0].get("params").unwrap().get("diagnostics").unwrap().as_arr().unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].get("code").unwrap().as_str(), Some("uncached-reuse"));
        // `parsed` is defined on 1-based line 2 → LSP line 1.
        let start = diags[0].get("range").unwrap().get("start").unwrap();
        assert_eq!(start.get("line").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn code_actions_resolve_the_diagnostic_they_fix() {
        let mut srv = LspServer::new(hover::ScorerConfig::quick());
        let uri = "file:///a.scala";
        srv.handle(&open(uri, DEFECT));
        let out = srv.handle(&req(
            2,
            "textDocument/codeAction",
            Json::obj(vec![("textDocument", Json::obj(vec![("uri", Json::Str(uri.to_string()))]))]),
        ));
        let actions = out[0].get("result").unwrap().as_arr().unwrap();
        assert_eq!(actions.len(), 1, "one planned fix, no fix-all for a single fix");
        let Json::Obj(changes) = actions[0].get("edit").unwrap().get("changes").unwrap() else {
            panic!("changes must be an object keyed by uri");
        };
        let new_text = changes[0].1.as_arr().unwrap()[0].get("newText").unwrap().as_str().unwrap();
        assert!(new_text.contains(".cache()"));
        // Applying the edit clears the diagnostic.
        let out = srv.handle(&notif(
            "textDocument/didChange",
            Json::obj(vec![
                ("textDocument", Json::obj(vec![("uri", Json::Str(uri.to_string()))])),
                (
                    "contentChanges",
                    Json::Arr(vec![Json::obj(vec![("text", Json::Str(new_text.to_string()))])]),
                ),
            ]),
        ));
        let diags = out[0].get("params").unwrap().get("diagnostics").unwrap().as_arr().unwrap();
        assert!(diags.is_empty(), "fix left diagnostics: {}", out[0].render());
    }

    #[test]
    fn broken_documents_publish_syntax_errors_not_crashes() {
        let mut srv = LspServer::new(hover::ScorerConfig::quick());
        let out = srv.handle(&open("file:///b.scala", "val broken = sc.textFile(\n"));
        let diags = out[0].get("params").unwrap().get("diagnostics").unwrap().as_arr().unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].get("code").unwrap().as_str(), Some("syntax-error"));
        assert_eq!(diags[0].get("severity").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn lsp_metric_series_are_registered() {
        let mut srv = LspServer::new(hover::ScorerConfig::quick());
        srv.handle(&open("file:///a.scala", DEFECT));
        srv.handle(&req(1, "textDocument/codeAction", Json::Null));
        srv.handle(&req(2, "textDocument/hover", Json::Null));
        let snap = srv.metrics().snapshot();
        let counters: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        for name in ["lsp.requests", "lsp.diagnostics_published", "lsp.hover", "lsp.code_actions"] {
            assert!(counters.contains(&name), "missing counter {name}: {counters:?}");
        }
        assert!(snap.histograms.iter().any(|(n, _)| n == "lsp.update_us"));
    }

    #[test]
    fn unknown_requests_get_method_not_found_and_exit_stops_the_loop() {
        let mut srv = LspServer::new(hover::ScorerConfig::quick());
        let out = srv.handle(&req(9, "textDocument/definition", Json::Null));
        let err = out[0].get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_f64(), Some(-32601.0));
        assert!(!srv.exited());
        srv.handle(&notif("exit", Json::Null));
        assert!(srv.exited());
    }
}

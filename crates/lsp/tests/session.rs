//! Scripted end-to-end LSP session against the real `lite-lsp` binary
//! over stdio — the same transport an editor uses.
//!
//! The script: open a document seeded with all five lint violations,
//! check every rule is published; request code actions and apply the
//! fix-all edit; check only the non-mechanically-fixable rules remain and
//! no further quick fixes are offered; hover for the NECS-predicted
//! runtime; break the document and check a `syntax-error` diagnostic;
//! shut down cleanly.

use lite_lsp::{read_message, write_message};
use lite_obs::json::Json;
use std::collections::VecDeque;
use std::io::BufReader;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

const URI: &str = "file:///defects.scala";

/// Seeds all five rules: R1 on `parsed`, R2 on the `groupByKey` inside
/// `sums`, R3 on `all`, R4 on `bumped`, R5 on `data`. R1/R4/R5 are
/// mechanically fixable; R2/R3 are not.
const DEFECTS: &str = "\
val sc = new SparkContext(sparkConf)
val parsed = sc.textFile(p).map(x => x)
val a = parsed.count
val b = parsed.count
val sums = sc.textFile(q).map(x => x).groupByKey().mapValues(v => v)
val c = sums.count
val all = sc.textFile(r).map(x => x).collect()
val part = sc.textFile(s).keyBy(f).partitionBy(h)
val bumped = part.map { case (k, v) => (k, g(v)) }
val out = bumped.reduceByKey(g2).count
val data = sc.textFile(t).map(x => x).cache()
val n = data.count
";

struct Session {
    child: Child,
    stdin: ChildStdin,
    reader: BufReader<ChildStdout>,
    pending: VecDeque<Json>,
    next_id: i64,
}

impl Session {
    fn spawn() -> Session {
        let mut child = Command::new(env!("CARGO_BIN_EXE_lite-lsp"))
            .env("LITE_LSP_QUICK", "1")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn lite-lsp");
        let stdin = child.stdin.take().expect("piped stdin");
        let reader = BufReader::new(child.stdout.take().expect("piped stdout"));
        Session { child, stdin, reader, pending: VecDeque::new(), next_id: 0 }
    }

    fn notify(&mut self, method: &str, params: Json) {
        let msg = Json::obj(vec![
            ("jsonrpc", Json::Str("2.0".to_string())),
            ("method", Json::Str(method.to_string())),
            ("params", params),
        ]);
        write_message(&mut self.stdin, &msg).expect("write notification");
    }

    /// Send a request and block until its response arrives; interleaved
    /// notifications are queued for later inspection.
    fn request(&mut self, method: &str, params: Json) -> Json {
        self.next_id += 1;
        let id = self.next_id;
        let msg = Json::obj(vec![
            ("jsonrpc", Json::Str("2.0".to_string())),
            ("id", Json::Int(id)),
            ("method", Json::Str(method.to_string())),
            ("params", params),
        ]);
        write_message(&mut self.stdin, &msg).expect("write request");
        loop {
            let incoming = self.read();
            if incoming.get("id").and_then(|v| v.as_u64()) == Some(id as u64) {
                return incoming;
            }
            self.pending.push_back(incoming);
        }
    }

    fn read(&mut self) -> Json {
        read_message(&mut self.reader).expect("read from server").expect("server closed stream")
    }

    /// Next `publishDiagnostics` for [`URI`]: the queued one if a request
    /// already drained it, else the next message on the wire.
    fn diagnostics(&mut self) -> Vec<Json> {
        let msg = self.pending.pop_front().unwrap_or_else(|| self.read());
        assert_eq!(
            msg.get("method").and_then(|m| m.as_str()),
            Some("textDocument/publishDiagnostics"),
            "expected publishDiagnostics, got: {}",
            msg.render()
        );
        let params = msg.get("params").expect("params");
        assert_eq!(params.get("uri").and_then(|u| u.as_str()), Some(URI));
        params.get("diagnostics").and_then(|d| d.as_arr()).expect("diagnostics array").to_vec()
    }

    fn change(&mut self, text: &str) {
        self.notify(
            "textDocument/didChange",
            Json::obj(vec![
                ("textDocument", Json::obj(vec![("uri", Json::Str(URI.to_string()))])),
                (
                    "contentChanges",
                    Json::Arr(vec![Json::obj(vec![("text", Json::Str(text.to_string()))])]),
                ),
            ]),
        );
    }

    fn code_actions(&mut self) -> Vec<Json> {
        let resp = self.request(
            "textDocument/codeAction",
            Json::obj(vec![("textDocument", Json::obj(vec![("uri", Json::Str(URI.to_string()))]))]),
        );
        resp.get("result").and_then(|r| r.as_arr()).expect("actions array").to_vec()
    }
}

fn codes(diags: &[Json]) -> Vec<String> {
    let mut out: Vec<String> = diags
        .iter()
        .map(|d| d.get("code").and_then(|c| c.as_str()).expect("code").to_string())
        .collect();
    out.sort();
    out
}

#[test]
fn scripted_editor_session_end_to_end() {
    let mut s = Session::spawn();

    // Handshake.
    let init = s.request("initialize", Json::obj(vec![]));
    let caps = init.get("result").and_then(|r| r.get("capabilities")).expect("capabilities");
    assert_eq!(caps.get("hoverProvider").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(caps.get("codeActionProvider").and_then(|v| v.as_bool()), Some(true));
    s.notify("initialized", Json::obj(vec![]));

    // Open the seeded document: all five rules must be published.
    s.notify(
        "textDocument/didOpen",
        Json::obj(vec![(
            "textDocument",
            Json::obj(vec![
                ("uri", Json::Str(URI.to_string())),
                ("languageId", Json::Str("scala".to_string())),
                ("version", Json::Int(1)),
                ("text", Json::Str(DEFECTS.to_string())),
            ]),
        )]),
    );
    let opened = s.diagnostics();
    assert_eq!(
        codes(&opened),
        vec![
            "collect-unreduced",
            "partitioner-loss",
            "redundant-shuffle",
            "single-use-cache",
            "uncached-reuse",
        ],
        "all five rules fire on the seeded document"
    );

    // Three fixable diagnostics → three quick fixes plus a fix-all.
    let actions = s.code_actions();
    let titles: Vec<&str> =
        actions.iter().map(|a| a.get("title").and_then(|t| t.as_str()).unwrap()).collect();
    assert_eq!(actions.len(), 4, "3 quick fixes + fix-all, got: {titles:?}");
    let fix_all = actions
        .iter()
        .find(|a| a.get("title").and_then(|t| t.as_str()).is_some_and(|t| t.starts_with("Fix all")))
        .expect("fix-all action");
    let Json::Obj(changes) = fix_all.get("edit").and_then(|e| e.get("changes")).expect("edit")
    else {
        panic!("changes must be an object keyed by uri")
    };
    assert_eq!(changes[0].0, URI);
    let fixed_text = changes[0].1.as_arr().unwrap()[0]
        .get("newText")
        .and_then(|t| t.as_str())
        .expect("newText")
        .to_string();

    // Apply the edit: only the non-fixable rules survive, and the server
    // offers no further quick fixes (the fix engine hit its fixpoint).
    s.change(&fixed_text);
    let after = s.diagnostics();
    assert_eq!(codes(&after), vec!["collect-unreduced", "redundant-shuffle"]);
    assert!(s.code_actions().is_empty(), "no quick fixes after fixing");

    // Hover prices the document's stage plan with NECS.
    let hover = s.request(
        "textDocument/hover",
        Json::obj(vec![
            ("textDocument", Json::obj(vec![("uri", Json::Str(URI.to_string()))])),
            ("position", Json::obj(vec![("line", Json::Int(0)), ("character", Json::Int(0))])),
        ]),
    );
    let value = hover
        .get("result")
        .and_then(|r| r.get("contents"))
        .and_then(|c| c.get("value"))
        .and_then(|v| v.as_str())
        .expect("hover markdown");
    assert!(value.contains("NECS-predicted runtime"), "hover text: {value}");

    // Break the document: a span-carrying syntax-error diagnostic, not a
    // dead server.
    s.change("val broken = sc.textFile(\n");
    let broken = s.diagnostics();
    assert_eq!(codes(&broken), vec!["syntax-error"]);
    assert_eq!(broken[0].get("severity").and_then(|v| v.as_u64()), Some(1));

    // Clean shutdown.
    let bye = s.request("shutdown", Json::obj(vec![]));
    assert_eq!(bye.get("result"), Some(&Json::Null));
    s.notify("exit", Json::obj(vec![]));
    let status = s.child.wait().expect("wait for server");
    assert!(status.success(), "server exited with {status}");
}

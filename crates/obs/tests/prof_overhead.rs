//! Pins the cost of the sampling profiler on an instrumented hot path:
//! entering/leaving tag frames while the sampler thread sweeps must stay
//! within 5% of the same code running against a disabled profiler (whose
//! guards are a single branch).
//!
//! Wall-clock comparisons are noisy, so the test interleaves the two
//! paths batch by batch and compares the *median of per-batch ratios*
//! (clock drift and scheduler hiccups hit adjacent batches equally and
//! cancel out), then takes the smallest median over up to three attempts
//! — noise can inflate one attempt, but it cannot make a genuinely slow
//! path measure fast repeatedly.

use lite_obs::Profiler;
use std::time::{Duration, Instant};

const BATCHES: usize = 41;
const RUNS_PER_BATCH: u64 = 10;

/// ~10 µs of register-only arithmetic: enough that one enter/exit pair
/// (a handful of relaxed/release stores) is a rounding error, small
/// enough that a sampler sweep lands inside it regularly.
fn work(seed: u64) -> u64 {
    let mut z = seed;
    let mut acc = 0u64;
    for _ in 0..8_000 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        acc ^= x ^ (x >> 31);
    }
    acc
}

/// Median of per-batch wall-clock ratios `probe / base`; the closures run
/// back to back inside every batch so machine-speed drift cancels.
fn median_paired_ratio(attempt: u64, base: &dyn Fn(u64), probe: &dyn Fn(u64)) -> f64 {
    let mut ratios = Vec::with_capacity(BATCHES);
    for b in 0..BATCHES as u64 {
        let seed0 = (attempt * BATCHES as u64 + b) * RUNS_PER_BATCH;
        let t0 = Instant::now();
        for i in 0..RUNS_PER_BATCH {
            base(seed0 + i);
        }
        let base_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        for i in 0..RUNS_PER_BATCH {
            probe(seed0 + i);
        }
        ratios.push(t1.elapsed().as_secs_f64() / base_s);
    }
    ratios.sort_by(f64::total_cmp);
    ratios[BATCHES / 2]
}

/// Smallest paired-ratio median over up to three attempts.
fn robust_ratio(base: &dyn Fn(u64), probe: &dyn Fn(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for attempt in 0..3 {
        best = best.min(median_paired_ratio(attempt, base, probe));
        if best < 1.04 {
            break;
        }
    }
    best
}

#[test]
fn profiler_overhead_is_below_five_percent() {
    let disabled = Profiler::disabled();
    let enabled = Profiler::new(Duration::from_micros(250));
    enabled.start();

    // Warm both paths (interning, thread-slot registration, caches).
    for i in 0..50 {
        let _t = disabled.enter("prof.bench.outer");
        std::hint::black_box(work(i));
        let _u = enabled.enter("prof.bench.outer");
        std::hint::black_box(work(i));
    }

    let ratio = robust_ratio(
        &|seed| {
            let _outer = disabled.enter("prof.bench.outer");
            let _inner = disabled.enter("prof.bench.inner");
            std::hint::black_box(work(seed));
        },
        &|seed| {
            let _outer = enabled.enter("prof.bench.outer");
            let _inner = enabled.enter("prof.bench.inner");
            std::hint::black_box(work(seed));
        },
    );
    enabled.stop();
    assert!(
        ratio < 1.05,
        "profiled path is {:.1}% slower than disabled guards (median paired batch ratio \
         {ratio:.4}); the budget is 5%",
        (ratio - 1.0) * 100.0,
    );
    // Sanity: the sampler actually swept while the probe ran.
    let report = enabled.report(4);
    assert!(report.sweeps > 0, "sampler never swept: {report:?}");
}

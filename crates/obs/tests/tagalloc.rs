//! Integration test with [`lite_obs::TagAlloc`] installed as the real
//! global allocator: every allocation in this binary flows through the
//! attribution hook, so this proves the hook attributes bytes to the
//! current tag, the reentrancy guard turns nested hook entries into
//! counted no-ops (never double-books), and a live sampler thread — which
//! itself allocates while recording stacks — cannot deadlock against it.

use std::time::Duration;

use lite_obs::prof::{alloc_stats_named, note_alloc_reentrant, reentrant_allocs, TagAlloc};
use lite_obs::Profiler;

#[global_allocator]
static ALLOC: TagAlloc<std::alloc::System> = TagAlloc::new(std::alloc::System);

#[test]
fn allocations_attribute_to_the_current_tag() {
    let prof = Profiler::new(Duration::from_millis(1));
    let _tag = prof.enter("alloctest.scope");
    let block: Vec<u8> = Vec::with_capacity(4096);
    let (bytes, count) = alloc_stats_named("alloctest.scope");
    assert!(bytes >= 4096, "expected >= 4096 attributed bytes, got {bytes}");
    assert!(count >= 1);
    drop(block);

    // Deallocation is not an attribution event: freeing the block must
    // not change the tag's byte total.
    let (after_free, _) = alloc_stats_named("alloctest.scope");
    assert!(after_free >= bytes);
}

#[test]
fn reentrancy_guard_skips_and_counts_instead_of_double_booking() {
    let prof = Profiler::new(Duration::from_millis(1));
    // First entry interns the tag and registers this thread's slot; those
    // one-time allocations land on the *enclosing* tag, not this one.
    drop(prof.enter("alloctest.reentrant"));
    // Snapshot while untagged: `alloc_stats_named` itself allocates, and
    // those reads must not perturb the row under test.
    let before = alloc_stats_named("alloctest.reentrant");
    let skipped_before = reentrant_allocs();

    {
        // An allocation arriving while the hook is already on the stack
        // must be skipped (false) and counted, and not touch any tag row.
        let _tag = prof.enter("alloctest.reentrant");
        assert!(!note_alloc_reentrant(512));
    }
    assert!(reentrant_allocs() > skipped_before);
    assert_eq!(alloc_stats_named("alloctest.reentrant"), before, "skip must not attribute");
}

/// The deadlock case the guard exists for: the sampler thread allocates
/// (stack snapshots, report maps) while worker threads allocate inside tag
/// frames. With `TagAlloc` installed globally, every one of those passes
/// through the hook; the test passing at all is the proof of no deadlock.
#[test]
fn sampler_allocating_under_tagalloc_does_not_deadlock() {
    let prof = Profiler::new(Duration::from_micros(200));
    prof.start();
    let workers: Vec<_> = (0..3)
        .map(|w| {
            let prof = prof.clone();
            std::thread::spawn(move || {
                let mut kept = Vec::new();
                for i in 0..200 {
                    let _outer = prof.enter("alloctest.churn");
                    let _inner = prof.enter("alloctest.churn.inner");
                    kept.push(vec![w as u8; 64 + i]);
                    if kept.len() > 8 {
                        kept.clear();
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker finished");
    }
    prof.stop();
    let report = prof.report(8);
    assert!(report.sweeps > 0, "sampler never ran: {report:?}");
    let (bytes, count) = alloc_stats_named("alloctest.churn");
    let (inner_bytes, _) = alloc_stats_named("alloctest.churn.inner");
    assert!(bytes + inner_bytes > 0 && count > 0, "worker churn must be attributed");
}

//! Property tests for the SLO rollup plane: [`TimeBucket::merge`] is a
//! commutative monoid (associative, commutative, `empty` as identity) and
//! agrees exactly with recording into one bucket, so windowed quantiles
//! from a [`RollupRing`] match the whole-sketch answer no matter how the
//! observations were split across buckets — and both stay within the
//! sketch's documented relative error of the true order statistic.

use lite_obs::{Registry, RollupRing, Slo, SloConfig, TimeBucket};
use proptest::prelude::*;
use std::time::Duration;

/// Sketch sub-bucket resolution: quantiles are conservative (never below
/// the true value) and within `1/32` relative error above it.
const REL_ERR: f64 = 1.0 / 32.0;

fn bucket_of(values: &[u64]) -> TimeBucket {
    let mut b = TimeBucket::empty();
    for &v in values {
        b.record(v);
    }
    b
}

/// True order statistic with the sketch's rounding rule (index by
/// `ceil(q * count)`, clamped).
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn values() -> impl Strategy<Value = Vec<u64>> {
    // Nanosecond-ish magnitudes spanning the exact region (< 64) through
    // seven octaves of the log-linear region.
    prop::collection::vec(1u64..100_000_000, 0..120)
}

proptest! {
    #[test]
    fn merge_is_a_commutative_monoid(a in values(), b in values(), c in values()) {
        let (ba, bb, bc) = (bucket_of(&a), bucket_of(&b), bucket_of(&c));
        prop_assert_eq!(ba.merge(&bb), bb.merge(&ba));
        prop_assert_eq!(ba.merge(&bb).merge(&bc), ba.merge(&bb.merge(&bc)));
        prop_assert_eq!(ba.merge(&TimeBucket::empty()), ba.clone());
        prop_assert_eq!(TimeBucket::empty().merge(&ba), ba);
    }

    #[test]
    fn merge_matches_recording_into_one_bucket(a in values(), b in values()) {
        let merged = bucket_of(&a).merge(&bucket_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, bucket_of(&all));
    }

    /// Split a stream across ring buckets arbitrarily: the windowed
    /// quantile must equal the whole-sketch quantile exactly, and both
    /// must sit in `[true_q, true_q * (1 + 1/32)]` (plus one count of
    /// integer-rounding slack).
    #[test]
    fn windowed_quantiles_agree_with_whole_sketch(
        chunks in prop::collection::vec(values(), 1..6),
    ) {
        let registry = Registry::new();
        let hist = registry.histogram("prop.latency_ns");
        let mut ring = RollupRing::new(Duration::from_secs(1), chunks.len());
        let mut all: Vec<u64> = Vec::new();
        for chunk in &chunks {
            for &v in chunk {
                hist.record(v);
                all.push(v);
            }
            ring.tick(&hist);
        }
        all.sort_unstable();

        let window = ring.window(chunks.len());
        prop_assert_eq!(window.count, all.len() as u64);
        prop_assert_eq!(window.sum, all.iter().sum::<u64>());

        let whole = bucket_of(&all);
        for (q, got) in [(0.5, window.p50), (0.9, window.p90), (0.99, window.p99)] {
            prop_assert_eq!(got, whole.quantile(q), "window vs whole sketch at q={}", q);
            let truth = true_quantile(&all, q);
            prop_assert!(got >= truth, "q={}: sketch {} below true {}", q, got, truth);
            let bound = (truth as f64 * (1.0 + REL_ERR)).ceil() + 1.0;
            prop_assert!(
                (got as f64) <= bound,
                "q={}: sketch {} above error bound {} (true {})", q, got, bound, truth
            );
        }
    }

    /// Burn-rate evaluation is a pure function of how traffic splits over
    /// the objective: all-bad buckets must alert, all-good must not.
    #[test]
    fn alert_iff_burn_exceeds_both_windows(
        bad in 1u64..40,
        good in 1u64..40,
    ) {
        let config = SloConfig {
            objective_ns: 1_000_000,
            target: 0.999,
            bucket: Duration::from_secs(1),
            fast_buckets: 1,
            slow_buckets: 2,
            ..Default::default()
        };
        let registry = Registry::new();
        let hist = registry.histogram("prop.slo_latency_ns");
        let mut slo = Slo::new(config.clone());
        // One bucket of all-bad traffic (10x the objective).
        for _ in 0..bad {
            hist.record(10_000_000);
        }
        let fired = slo.tick(&hist).clone();
        prop_assert!(fired.alert, "all-bad bucket must alert: {:?}", fired);
        prop_assert!(fired.burn_fast >= config.fast_burn);
        // One bucket of all-good traffic clears the fast window.
        for _ in 0..good {
            hist.record(1_000);
        }
        let cleared = slo.tick(&hist).clone();
        prop_assert!(!cleared.alert, "all-good bucket must clear: {:?}", cleared);
        prop_assert_eq!(cleared.alert_ticks, 0);
    }
}

//! Property tests for the exporters: Prometheus exposition never emits an
//! invalid line, and Chrome trace output always parses back through
//! `obs::json` with strictly nested begin/end pairs — across randomly
//! shaped registries and span forests (including orphaned parents and
//! inverted/out-of-parent timestamp edges, which the renderer must clamp).

use lite_obs::export::{chrome_trace, prometheus_text, prometheus_text_with_exemplars};
use lite_obs::span::AttrValue;
use lite_obs::{Json, Registry, SpanRecord};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// A small exposition-format line parser (the validation oracle)

fn is_valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn is_valid_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok_and(|v| v.is_finite())
}

/// Validate one `key="value"` label pair list (without braces); returns the
/// parsed pairs or an error description.
fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = &rest[..eq];
        if !is_valid_metric_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        rest = rest[eq + 1..].strip_prefix('"').ok_or("label value not quoted")?;
        // Scan the escaped value.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let end = loop {
            let (i, c) = chars.next().ok_or("unterminated label value")?;
            match c {
                '"' => break i,
                '\\' => match chars.next().ok_or("dangling backslash")?.1 {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => return Err(format!("invalid escape \\{other}")),
                },
                '\n' => return Err("raw newline in label value".into()),
                c => value.push(c),
            }
        };
        pairs.push((key.to_string(), value));
        rest = &rest[end + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    Ok(pairs)
}

enum Line {
    Type { name: String, kind: String },
    Sample { name: String, labels: Vec<(String, String)>, value: String },
    Exemplar { name: String },
}

fn parse_line(line: &str) -> Result<Line, String> {
    if let Some(rest) = line.strip_prefix("# TYPE ") {
        let mut it = rest.split(' ');
        let name = it.next().unwrap_or("");
        let kind = it.next().ok_or("TYPE without kind")?;
        if it.next().is_some() {
            return Err("trailing tokens after TYPE".into());
        }
        if !is_valid_metric_name(name) {
            return Err(format!("invalid TYPE name {name:?}"));
        }
        if !matches!(kind, "counter" | "gauge" | "histogram") {
            return Err(format!("unknown TYPE kind {kind:?}"));
        }
        return Ok(Line::Type { name: name.to_string(), kind: kind.to_string() });
    }
    if let Some(rest) = line.strip_prefix("# trace_id ") {
        // Tail-forensics exemplar annotation: `# trace_id <metric> <id> <value>`.
        let parts: Vec<&str> = rest.split(' ').collect();
        if parts.len() != 3 {
            return Err(format!("malformed trace_id comment {rest:?}"));
        }
        if !is_valid_metric_name(parts[0]) {
            return Err(format!("invalid exemplar metric {:?}", parts[0]));
        }
        for tok in &parts[1..] {
            if tok.parse::<u64>().is_err() {
                return Err(format!("non-integer exemplar token {tok:?}"));
            }
        }
        return Ok(Line::Exemplar { name: parts[0].to_string() });
    }
    if line.starts_with('#') {
        return Err("unexpected comment line".into());
    }
    // `name value` or `name{labels} value`.
    let (name_part, value_part) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unclosed label brace")?;
            let labels = parse_labels(&line[brace + 1..close])?;
            let value = line[close + 1..].strip_prefix(' ').ok_or("no space before value")?;
            return Ok(Line::Sample {
                name: {
                    let n = &line[..brace];
                    if !is_valid_metric_name(n) {
                        return Err(format!("invalid sample name {n:?}"));
                    }
                    n.to_string()
                },
                labels,
                value: {
                    if !is_valid_value(value) {
                        return Err(format!("invalid value {value:?}"));
                    }
                    value.to_string()
                },
            });
        }
        None => {
            let sp = line.find(' ').ok_or("sample without value")?;
            (&line[..sp], &line[sp + 1..])
        }
    };
    if !is_valid_metric_name(name_part) {
        return Err(format!("invalid sample name {name_part:?}"));
    }
    if !is_valid_value(value_part) {
        return Err(format!("invalid value {value_part:?}"));
    }
    Ok(Line::Sample { name: name_part.to_string(), labels: Vec::new(), value: value_part.into() })
}

proptest! {
    #[test]
    fn prometheus_exposition_never_emits_an_invalid_line(
        counters in prop::collection::vec(("[a-z .-]{0,24}", any::<u64>()), 0..6usize),
        gauges in prop::collection::vec(("[a-z .-]{0,24}", any::<f64>()), 0..6usize),
        hists in prop::collection::vec(
            ("[a-z .-]{0,24}", prop::collection::vec(any::<u64>(), 0..32usize)),
            0..4usize,
        ),
        exemplars in prop::collection::vec(
            ("[a-z .-]{0,24}", any::<u64>(), any::<u64>()),
            0..4usize,
        ),
    ) {
        let reg = Registry::new();
        for (name, v) in &counters {
            reg.counter(name).add(*v);
        }
        for (name, v) in &gauges {
            reg.gauge(name).set(*v);
        }
        for (name, values) in &hists {
            let h = reg.histogram(name);
            for &v in values {
                h.record(v);
            }
        }
        let snapshot = reg.snapshot();
        let text = prometheus_text_with_exemplars(&snapshot, &exemplars);
        // The `# trace_id` annotations are pure comments: stripping them
        // recovers the plain exposition byte-for-byte.
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("# trace_id"))
            .map(|l| format!("{l}\n"))
            .collect();
        prop_assert_eq!(&stripped, &prometheus_text(&snapshot));
        let mut exemplar_lines = 0usize;

        let mut declared: BTreeMap<String, String> = BTreeMap::new();
        // Per histogram family: cumulative bucket counts and le bounds as
        // they appear, to check ordering and consistency.
        let mut bucket_series: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for raw in text.lines() {
            let line = parse_line(raw).unwrap_or_else(|e| panic!("{e}\n  line: {raw:?}"));
            match line {
                Line::Type { name, kind } => {
                    declared.insert(name, kind);
                }
                Line::Exemplar { name } => {
                    prop_assert!(is_valid_metric_name(&name));
                    exemplar_lines += 1;
                }
                Line::Sample { name, labels, value } => {
                    // Every sample belongs to a declared family.
                    let family = declared.iter().find(|(base, kind)| match kind.as_str() {
                        "histogram" => {
                            name == format!("{base}_sum")
                                || name == format!("{base}_count")
                                || name == format!("{base}_bucket")
                        }
                        _ => &name == *base,
                    });
                    let (base, kind) =
                        family.unwrap_or_else(|| panic!("sample {name} has no TYPE line"));
                    if kind == "histogram" && name.ends_with("_bucket") {
                        let le = labels
                            .iter()
                            .find(|(k, _)| k == "le")
                            .map(|(_, v)| v.as_str())
                            .expect("bucket without le label");
                        let le = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap() };
                        bucket_series
                            .entry(base.clone())
                            .or_default()
                            .push((le, value.parse().unwrap()));
                    } else if kind == "histogram" && name.ends_with("_count") {
                        counts.insert(base.clone(), value.parse().unwrap());
                    } else {
                        prop_assert!(labels.is_empty(), "unexpected labels on {name}");
                    }
                }
            }
        }
        for (base, series) in &bucket_series {
            prop_assert!(
                series.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1),
                "{base}: le not increasing / counts not cumulative: {series:?}"
            );
            let (last_le, last_count) = *series.last().expect("at least +Inf");
            prop_assert!(last_le.is_infinite(), "{base}: missing +Inf bucket");
            prop_assert_eq!(Some(&last_count), counts.get(base), "{}_count mismatch", base);
        }
        // Every histogram family emitted a bucket series (even when empty).
        for (base, kind) in &declared {
            if kind == "histogram" {
                prop_assert!(bucket_series.contains_key(base), "{base}: no buckets");
            }
        }
        // No exemplar annotation is silently dropped.
        prop_assert_eq!(exemplar_lines, exemplars.len());
    }
}

// ---------------------------------------------------------------------------
// Chrome trace: parseable and strictly nested

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Build a random span forest. `i`-th span gets id `i+1`; parents point at
/// earlier spans, nothing (root), or a missing id (orphan → treated as
/// root). Timestamps are unconstrained — children may stick out of their
/// parents and `end < start` happens — the renderer must clamp.
fn build_spans(shape: &[(u64, u64, u64)]) -> Vec<SpanRecord> {
    shape
        .iter()
        .enumerate()
        .map(|(i, &(p, a, b))| {
            let parent = match p % (i as u64 + 3) {
                0 => None,
                v if v <= i as u64 => Some(v),
                _ => Some(10_000 + i as u64), // never a real id
            };
            SpanRecord {
                id: i as u64 + 1,
                parent,
                name: NAMES[(a % NAMES.len() as u64) as usize],
                start_us: a % 1_000,
                end_us: b % 1_000,
                attrs: vec![("k", AttrValue::U64(b))],
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn chrome_trace_parses_with_strictly_nested_pairs(
        shape in prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>()),
            0..24usize,
        ),
    ) {
        let spans = build_spans(&shape);
        let trace = chrome_trace(&spans);
        // Round-trips through the JSON parser bit-for-bit (all values in
        // the document are strings/uints/bools).
        let parsed = Json::parse(&trace.render()).expect("trace renders to parseable JSON");
        prop_assert_eq!(&parsed, &trace);

        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        prop_assert_eq!(events.len(), spans.len() * 2, "one B and one E per span");

        // Stack machine per tid: B pushes, E must match the top by name,
        // child intervals sit inside parents, and a parent never ends
        // before a child.
        struct Frame {
            name: String,
            begin: u64,
            max_child_end: u64,
        }
        let mut stacks: BTreeMap<u64, Vec<Frame>> = BTreeMap::new();
        let mut seen_ids: BTreeSet<u64> = BTreeSet::new();
        for ev in events {
            let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
            let ts = ev.get("ts").and_then(Json::as_u64).expect("ts");
            let tid = ev.get("tid").and_then(Json::as_u64).expect("tid");
            let name = ev.get("name").and_then(Json::as_str).expect("name").to_string();
            let stack = stacks.entry(tid).or_default();
            match ph {
                "B" => {
                    let id = ev
                        .get("args")
                        .and_then(|a| a.get("span_id"))
                        .and_then(Json::as_u64)
                        .expect("span_id arg");
                    prop_assert!(seen_ids.insert(id), "span {id} began twice");
                    if let Some(parent) = stack.last() {
                        prop_assert!(ts >= parent.begin, "child begins before parent");
                    }
                    stack.push(Frame { name, begin: ts, max_child_end: ts });
                }
                "E" => {
                    let frame = stack.pop().expect("E without matching B");
                    prop_assert_eq!(&frame.name, &name, "E closes a different span");
                    prop_assert!(ts >= frame.begin, "span ends before it begins");
                    prop_assert!(ts >= frame.max_child_end, "parent ends before a child");
                    if let Some(parent) = stack.last_mut() {
                        parent.max_child_end = parent.max_child_end.max(ts);
                    }
                }
                other => prop_assert!(false, "unexpected phase {other:?}"),
            }
        }
        for (tid, stack) in &stacks {
            prop_assert!(stack.is_empty(), "tid {tid}: unclosed spans");
        }
        prop_assert_eq!(seen_ids.len(), spans.len(), "every span appears exactly once");
    }
}

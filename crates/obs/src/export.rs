//! Exporters: Prometheus text exposition and Chrome trace-event JSON.
//!
//! Both renderers are pure functions over already-captured data
//! ([`MetricsSnapshot`], `&[SpanRecord]`) so they can run anywhere — an
//! admin op handler, a bench binary writing artifacts, a test — without
//! touching the live registries.
//!
//! The Prometheus renderer emits text exposition format version 0.0.4:
//! one `# TYPE` line per metric, histograms as cumulative
//! `_bucket{le="..."}` series plus `_sum`/`_count`. Metric names are
//! sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` (the registry's dotted names
//! become underscored) and label values are escaped per the spec.
//!
//! The Chrome renderer produces the trace-event JSON object format
//! (`{"traceEvents": [...]}`) loadable in Perfetto / `chrome://tracing`:
//! every span becomes a `B`/`E` duration pair, nested via the span's
//! parent chain, with attributes as `args`.
//!
//! Two tail-forensics companions: [`prometheus_text_with_exemplars`]
//! annotates histogram series with `# trace_id` comment lines linking a
//! latency bucket back to the slow request that fed it, and
//! [`chrome_trace_exemplars`] renders captured [`Exemplar`]s as one
//! Perfetto track per slow request.

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::span::{AttrValue, SpanRecord};
use crate::trace::Exemplar;
use std::fmt::Write as _;

/// Sanitize a registry metric name into a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other invalid characters become
/// underscores, and a leading digit gets an underscore prefix. Empty input
/// becomes `"_"`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        if ok {
            out.push(ch);
        } else if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline get backslash escapes.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Render a float the way the exposition format expects (`+Inf`, `-Inf`,
/// `NaN` spellings for the non-finite values).
fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render a [`MetricsSnapshot`] as Prometheus text exposition (format
/// 0.0.4). Counters and gauges become single samples; histograms become
/// cumulative `_bucket{le="..."}` series (one per non-empty sketch bucket,
/// plus `+Inf`) with `_sum` and `_count`. The `+Inf` bucket and `_count`
/// both report the bucket total so the series is internally consistent
/// even when racing writers make the shard count differ transiently.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    prometheus_text_with_exemplars(snapshot, &[])
}

/// A tail-forensics exemplar annotation for one metric: `(metric name,
/// trace id, observed value)`. The metric name is sanitized the same way
/// as registry names before matching.
pub type PromExemplar = (String, u64, u64);

/// [`prometheus_text`] plus `# trace_id <metric> <id> <value>` annotation
/// comment lines after the histogram series each exemplar belongs to —
/// exemplar-style links from a latency histogram back to the slow request
/// that fed it. They are plain comments, so any 0.0.4 scraper ignores
/// them; exemplars naming a metric absent from the snapshot are appended
/// at the end rather than silently dropped.
pub fn prometheus_text_with_exemplars(
    snapshot: &MetricsSnapshot,
    exemplars: &[PromExemplar],
) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", render_value(*value));
    }
    let mut matched = vec![false; exemplars.len()];
    for (name, h) in &snapshot.histograms {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for &(upper, count) in &h.buckets {
            cumulative += count;
            let _ = writeln!(out, "{n}_bucket{{le=\"{upper}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {cumulative}");
        for (i, (metric, trace_id, value)) in exemplars.iter().enumerate() {
            if !matched[i] && sanitize_metric_name(metric) == n {
                matched[i] = true;
                let _ = writeln!(out, "# trace_id {n} {trace_id} {value}");
            }
        }
    }
    for (i, (metric, trace_id, value)) in exemplars.iter().enumerate() {
        if !matched[i] {
            let _ = writeln!(out, "# trace_id {} {trace_id} {value}", sanitize_metric_name(metric));
        }
    }
    out
}

/// Unsigned value in the parser's preferred representation (`Int` while it
/// fits, `UInt` above `i64::MAX`), so a rendered trace round-trips through
/// `Json::parse` to a structurally equal document.
fn uint_json(v: u64) -> Json {
    i64::try_from(v).map_or(Json::UInt(v), Json::Int)
}

fn attr_json(v: &AttrValue) -> Json {
    match v {
        AttrValue::I64(x) => Json::Int(*x),
        AttrValue::U64(x) => uint_json(*x),
        AttrValue::F64(x) => Json::Num(*x),
        AttrValue::Bool(x) => Json::Bool(*x),
        AttrValue::Str(x) => Json::Str(x.clone()),
    }
}

fn trace_event(ph: &str, span: &SpanRecord, ts: u64, tid: u64) -> Json {
    let mut pairs = vec![
        ("name", Json::Str(span.name.to_string())),
        ("ph", Json::Str(ph.to_string())),
        ("ts", uint_json(ts)),
        ("pid", Json::Int(1)),
        ("tid", uint_json(tid)),
    ];
    if ph == "B" {
        let mut args = vec![("span_id".to_string(), uint_json(span.id))];
        if let Some(p) = span.parent {
            args.push(("parent_id".to_string(), uint_json(p)));
        }
        for (k, v) in &span.attrs {
            args.push((k.to_string(), attr_json(v)));
        }
        pairs.push(("args", Json::Obj(args)));
    }
    Json::obj(pairs)
}

/// Render finished spans as a Chrome trace-event JSON object
/// (`{"traceEvents": [...]}`, loadable in Perfetto).
///
/// Each span becomes a `B`/`E` pair. Events are emitted by depth-first
/// walk of the parent/child forest, so within a track the begin/end pairs
/// are strictly stack-nested even when microsecond timestamps tie. Every
/// root span (no parent, or parent not present in the slice) gets its own
/// `tid` — its descendants share it, so one logical call tree renders as
/// one track. Span attributes appear as `args` on the `B` event along
/// with `span_id`/`parent_id`.
pub fn chrome_trace(spans: &[SpanRecord]) -> Json {
    use std::collections::{BTreeMap, BTreeSet};
    let ids: BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    // Children grouped by parent; roots are spans whose parent is absent.
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in spans {
        match s.parent {
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(s),
            _ => roots.push(s),
        }
    }
    let by_start =
        |a: &&SpanRecord, b: &&SpanRecord| a.start_us.cmp(&b.start_us).then(a.id.cmp(&b.id));
    roots.sort_by(by_start);
    for v in children.values_mut() {
        v.sort_by(by_start);
    }
    let mut events: Vec<Json> = Vec::with_capacity(spans.len() * 2);
    // Iterative DFS. Each stack entry carries the span's *effective*
    // interval — its timestamps clamped inside the parent's effective
    // interval — so emitted B/E pairs nest strictly even if clock reads
    // raced at span edges.
    struct Frame<'a> {
        span: &'a SpanRecord,
        next_child: usize,
        begin: u64,
        end: u64,
    }
    for root in roots {
        let tid = root.id;
        let begin = root.start_us;
        let end = root.end_us.max(begin);
        events.push(trace_event("B", root, begin, tid));
        let mut stack: Vec<Frame<'_>> = vec![Frame { span: root, next_child: 0, begin, end }];
        while let Some(top) = stack.last_mut() {
            let kids = children.get(&top.span.id).map(|v| v.as_slice()).unwrap_or(&[]);
            if top.next_child < kids.len() {
                let child = kids[top.next_child];
                top.next_child += 1;
                let begin = child.start_us.clamp(top.begin, top.end);
                let end = child.end_us.clamp(begin, top.end);
                events.push(trace_event("B", child, begin, tid));
                stack.push(Frame { span: child, next_child: 0, begin, end });
            } else {
                let frame = stack.pop().expect("stack non-empty");
                events.push(trace_event("E", frame.span, frame.end, tid));
            }
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
}

/// Render tail-forensics [`Exemplar`]s as a Chrome trace-event JSON
/// object. Each exemplar's phase spans become `X` (complete) events on a
/// track keyed by the trace id, so one slow request reads as one lane in
/// Perfetto with its phases laid end to end. Queue depth and the
/// swap-in-progress flag ride along as `args`.
pub fn chrome_trace_exemplars(exemplars: &[Exemplar]) -> Json {
    // Nanoseconds as (possibly fractional) trace-event microseconds, in
    // the parser's preferred representation so documents round-trip:
    // whole microseconds render as integers, sub-µs remainders as floats.
    fn us_json(ns: u64) -> Json {
        if ns.is_multiple_of(1_000) {
            uint_json(ns / 1_000)
        } else {
            Json::Num(ns as f64 / 1_000.0)
        }
    }
    let mut events: Vec<Json> = Vec::new();
    for e in exemplars {
        for s in &e.spans {
            let mut args = vec![
                ("trace_id".to_string(), uint_json(s.trace_id)),
                ("queue_depth".to_string(), uint_json(u64::from(s.queue_depth))),
            ];
            if s.swap_in_progress {
                args.push(("swap_in_progress".to_string(), Json::Bool(true)));
            }
            events.push(Json::obj(vec![
                ("name", Json::Str(s.phase.name().to_string())),
                ("ph", Json::Str("X".to_string())),
                ("ts", us_json(s.start_ns)),
                ("dur", us_json(s.duration_ns())),
                ("pid", Json::Int(1)),
                ("tid", uint_json(e.trace_id)),
                ("args", Json::Obj(args)),
            ]));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::span::Tracer;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_metric_name("serve.latency_ns"), "serve_latency_ns");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("ok_name:x1"), "ok_name:x1");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
    }

    #[test]
    fn exposition_renders_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("req.total").add(3);
        reg.gauge("cache.hit_rate").set(0.5);
        reg.gauge("weird.gauge").set(f64::INFINITY);
        let h = reg.histogram("lat.ns");
        h.record(10);
        h.record(10);
        h.record(1000);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE req_total counter\nreq_total 3\n"), "{text}");
        assert!(text.contains("# TYPE cache_hit_rate gauge\ncache_hit_rate 0.5\n"), "{text}");
        assert!(text.contains("weird_gauge +Inf\n"), "{text}");
        assert!(text.contains("# TYPE lat_ns histogram\n"), "{text}");
        // Cumulative buckets: the value-10 bucket holds 2, then 3 total.
        assert!(text.contains("lat_ns_bucket{le=\"10\"} 2\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("lat_ns_sum 1020\n"), "{text}");
        assert!(text.contains("lat_ns_count 3\n"), "{text}");
        // Bucket uppers increase along the series.
        let uppers: Vec<u64> = text
            .lines()
            .filter_map(|l| l.strip_prefix("lat_ns_bucket{le=\""))
            .filter_map(|l| l.split('"').next())
            .filter_map(|s| s.parse().ok())
            .collect();
        assert!(uppers.windows(2).all(|w| w[0] < w[1]), "{uppers:?}");
    }

    #[test]
    fn chrome_trace_nests_children_under_roots() {
        let tracer = Tracer::new();
        {
            let _run = tracer.span("run");
            let _stage = tracer.span("stage");
        }
        let spans = tracer.finished();
        assert_eq!(spans.len(), 2);
        let trace = chrome_trace(&spans);
        let events = trace.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        // DFS order: B(run) B(stage) E(stage) E(run).
        let phases: Vec<&str> =
            events.iter().map(|e| e.get("ph").and_then(|p| p.as_str()).unwrap()).collect();
        assert_eq!(phases, ["B", "B", "E", "E"]);
        let names: Vec<&str> =
            events.iter().map(|e| e.get("name").and_then(|p| p.as_str()).unwrap()).collect();
        assert_eq!(names, ["run", "stage", "stage", "run"]);
        // All four events share the root's tid.
        let tids: Vec<u64> =
            events.iter().map(|e| e.get("tid").and_then(|t| t.as_u64()).unwrap()).collect();
        assert!(tids.iter().all(|&t| t == tids[0]), "{tids:?}");
        // The child's B carries parent_id.
        assert!(events[1].get("args").and_then(|a| a.get("parent_id")).is_some());
        // The rendered document parses back.
        assert_eq!(Json::parse(&trace.render()).unwrap(), trace);
    }

    #[test]
    fn orphan_spans_become_roots() {
        let spans = vec![
            SpanRecord {
                id: 7,
                parent: Some(99), // parent never finished / not in slice
                name: "orphan",
                start_us: 5,
                end_us: 9,
                attrs: Vec::new(),
            },
            SpanRecord { id: 3, parent: None, name: "root", start_us: 0, end_us: 4, attrs: vec![] },
        ];
        let trace = chrome_trace(&spans);
        let events = trace.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(events.len(), 4);
        // Sorted by start: root first, then the orphan on its own track.
        let tids: Vec<u64> =
            events.iter().map(|e| e.get("tid").and_then(|t| t.as_u64()).unwrap()).collect();
        assert_eq!(tids, [3, 3, 7, 7]);
    }

    #[test]
    fn exemplar_comments_follow_their_histogram() {
        let reg = Registry::new();
        let h = reg.histogram("serve.phase.score_ns");
        h.record(1_000);
        let text = prometheus_text_with_exemplars(
            &reg.snapshot(),
            &[
                ("serve.phase.score_ns".to_string(), 0xABCD, 1_000),
                ("serve.phase.write_ns".to_string(), 7, 9), // no such histogram
            ],
        );
        // The matching exemplar sits inside the exposition, after its block.
        let lines: Vec<&str> = text.lines().collect();
        let hist = lines.iter().position(|l| l.starts_with("# TYPE serve_phase_score_ns"));
        let ex = lines.iter().position(|l| *l == "# trace_id serve_phase_score_ns 43981 1000");
        assert!(hist.unwrap() < ex.unwrap(), "{text}");
        // The unmatched one still surfaces, at the end.
        assert_eq!(*lines.last().unwrap(), "# trace_id serve_phase_write_ns 7 9");
        // Annotations never perturb the plain exposition.
        let plain = prometheus_text(&reg.snapshot());
        let stripped: String = text.lines().filter(|l| !l.starts_with("# trace_id")).fold(
            String::new(),
            |mut s, l| {
                s.push_str(l);
                s.push('\n');
                s
            },
        );
        assert_eq!(stripped, plain);
    }

    #[test]
    fn exemplars_render_as_complete_events_per_trace() {
        use crate::trace::{Phase, PhaseSpan};
        let span = |phase, start_ns, end_ns| PhaseSpan {
            trace_id: 99,
            phase,
            start_ns,
            end_ns,
            queue_depth: 4,
            swap_in_progress: phase == Phase::Score,
        };
        let ex = Exemplar {
            trace_id: 99,
            total_ns: 5_000,
            spans: vec![span(Phase::Parse, 0, 1_500), span(Phase::Score, 1_500, 5_000)],
        };
        let trace = chrome_trace_exemplars(&[ex]);
        let events = trace.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(events.len(), 2);
        for ev in events {
            assert_eq!(ev.get("ph").and_then(|p| p.as_str()), Some("X"));
            assert_eq!(ev.get("tid").and_then(|t| t.as_u64()), Some(99));
        }
        assert_eq!(events[0].get("name").and_then(|n| n.as_str()), Some("parse"));
        assert_eq!(
            events[1].get("args").and_then(|a| a.get("swap_in_progress")),
            Some(&Json::Bool(true))
        );
        // The rendered document parses back.
        assert_eq!(Json::parse(&trace.render()).unwrap(), trace);
    }

    #[test]
    fn empty_inputs_render_cleanly() {
        assert_eq!(prometheus_text(&MetricsSnapshot::default()), "");
        let trace = chrome_trace(&[]);
        assert_eq!(trace.get("traceEvents"), Some(&Json::Arr(Vec::new())));
    }
}

//! Request-scoped tracing: phase spans, per-thread rings, tail exemplars.
//!
//! The serve plane's endpoint histograms say *that* p99 is slow; this
//! module exists to say *where*. Every hop of a request — accept, frame
//! read, parse, enqueue, queue wait, dequeue, snapshot load, cache lookup,
//! scoring, reply handoff, serialization, socket write — records a
//! [`PhaseSpan`] carrying
//! the request's [`TraceId`] and nanosecond timestamps on the shared
//! process epoch ([`crate::span::epoch_ns`]), so spans from the listener
//! thread and a worker thread lie on one time axis.
//!
//! Three consumers, three cost tiers:
//!
//! 1. **Rings** — each recording thread owns a fixed [`RING_CAPACITY`]-slot
//!    ring of seqlock slots. A record is a handful of relaxed stores plus
//!    one release store; no lock, no allocation after the ring exists.
//! 2. **Histograms** — [`PhaseHistograms`] maps each phase to a quantile
//!    sketch histogram named by [`Phase::metric_name`], giving `stats` the
//!    per-phase p50/p99 attribution directly.
//! 3. **Exemplars** — when a request *completes*, [`TraceSink::complete`]
//!    checks its end-to-end latency against a threshold and a top-K
//!    reservoir. Only then does it scan the rings for that trace's spans
//!    and take the reservoir lock: the slow path pays for forensics, the
//!    fast path pays two atomic loads.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

pub use crate::span::epoch_ns;

/// Slots per per-thread ring. At ~12 phases per request a ring remembers
/// the last ~90 requests a thread touched — far beyond one request's
/// lifetime, so a slow request's spans are still resident when its
/// completion triggers exemplar capture. 5 words × 1024 = 40 KiB/thread.
pub const RING_CAPACITY: usize = 1024;

/// One hop of the request path. `ALL` is ordered by position in the path.
///
/// Every variant's [`Phase::metric_name`] must be the `"serve.phase."`
/// prefix plus [`Phase::name`] plus `"_ns"` — `scripts/lint.sh` checks the
/// pairing textually in this file, so keep both literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Connection accepted / request picked up by the connection thread.
    Accept = 0,
    /// Blocking read of the length-prefixed frame from the socket.
    FrameRead = 1,
    /// UTF-8 validation + JSON parse of the payload.
    Parse = 2,
    /// Admission into the bounded request queue.
    Enqueue = 3,
    /// Shard routing: picking the worker shard a request hashes to and
    /// handing the job to its queue (the sharded-dispatch hop).
    Dispatch = 4,
    /// Time spent queued before a worker picked the job up.
    QueueWait = 5,
    /// Worker-side dequeue + deadline check.
    Dequeue = 6,
    /// Loading the current model snapshot (arc-swap read + clone).
    SnapshotLoad = 7,
    /// Recommendation cache probe.
    CacheLookup = 8,
    /// NECS candidate scoring (the model inference).
    Score = 9,
    /// Reply handoff: from the worker sending the finished response to
    /// the submitting thread picking it up (thread wakeup latency — a
    /// dominant tail term on oversubscribed machines).
    Respond = 10,
    /// Rendering the response document to JSON text.
    Serialize = 11,
    /// Writing the response frame to the socket.
    Write = 12,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 13;

    /// Every phase, in request-path order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Accept,
        Phase::FrameRead,
        Phase::Parse,
        Phase::Enqueue,
        Phase::Dispatch,
        Phase::QueueWait,
        Phase::Dequeue,
        Phase::SnapshotLoad,
        Phase::CacheLookup,
        Phase::Score,
        Phase::Respond,
        Phase::Serialize,
        Phase::Write,
    ];

    /// Short snake_case phase name (exemplar JSON, report tables).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Accept => "accept",
            Phase::FrameRead => "frame_read",
            Phase::Parse => "parse",
            Phase::Enqueue => "enqueue",
            Phase::Dispatch => "dispatch",
            Phase::QueueWait => "queue_wait",
            Phase::Dequeue => "dequeue",
            Phase::SnapshotLoad => "snapshot_load",
            Phase::CacheLookup => "cache_lookup",
            Phase::Score => "score",
            Phase::Respond => "respond",
            Phase::Serialize => "serialize",
            Phase::Write => "write",
        }
    }

    /// The histogram this phase's durations are recorded into.
    pub fn metric_name(self) -> &'static str {
        match self {
            Phase::Accept => "serve.phase.accept_ns",
            Phase::FrameRead => "serve.phase.frame_read_ns",
            Phase::Parse => "serve.phase.parse_ns",
            Phase::Enqueue => "serve.phase.enqueue_ns",
            Phase::Dispatch => "serve.phase.dispatch_ns",
            Phase::QueueWait => "serve.phase.queue_wait_ns",
            Phase::Dequeue => "serve.phase.dequeue_ns",
            Phase::SnapshotLoad => "serve.phase.snapshot_load_ns",
            Phase::CacheLookup => "serve.phase.cache_lookup_ns",
            Phase::Score => "serve.phase.score_ns",
            Phase::Respond => "serve.phase.respond_ns",
            Phase::Serialize => "serve.phase.serialize_ns",
            Phase::Write => "serve.phase.write_ns",
        }
    }

    /// Decode a phase index (the ring's packed representation).
    pub fn from_index(i: u8) -> Option<Phase> {
        Phase::ALL.get(i as usize).copied()
    }
}

/// A request trace identifier. Nonzero: zero is the ring's "empty slot"
/// sentinel and the wire's "no trace" default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// A fresh process-unique id (server-side generation at accept).
    /// Sequential under a large odd multiplier: unique like a counter,
    /// but ids from concurrent sources do not collide on small integers.
    pub fn generate() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        TraceId(n.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Adopt a client-supplied id from the wire; zero means "none".
    pub fn from_wire(raw: u64) -> Option<TraceId> {
        (raw != 0).then_some(TraceId(raw))
    }

    /// The raw id for the wire / logs / metrics annotations.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One completed phase of one request. Fixed-size and `Copy`: the ring
/// stores it as five words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// The request's trace id.
    pub trace_id: u64,
    /// Which hop this is.
    pub phase: Phase,
    /// Nanoseconds since the process trace epoch at phase start.
    pub start_ns: u64,
    /// Nanoseconds since the process trace epoch at phase end.
    pub end_ns: u64,
    /// Request-queue depth observed when this span was recorded (0 when
    /// not applicable; meaningful on `Enqueue`).
    pub queue_depth: u32,
    /// Whether a model-snapshot swap was in progress during this phase —
    /// makes swap convoys visible in exemplars.
    pub swap_in_progress: bool,
}

impl PhaseSpan {
    /// Phase duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    fn pack_meta(&self) -> u64 {
        (self.phase as u64)
            | ((self.swap_in_progress as u64) << 8)
            | ((self.queue_depth as u64) << 32)
    }

    fn unpack(trace_id: u64, start_ns: u64, end_ns: u64, meta: u64) -> Option<PhaseSpan> {
        Some(PhaseSpan {
            trace_id,
            phase: Phase::from_index((meta & 0xFF) as u8)?,
            start_ns,
            end_ns,
            queue_depth: (meta >> 32) as u32,
            swap_in_progress: (meta >> 8) & 1 == 1,
        })
    }
}

/// A seqlock slot: `seq` odd while a write is in flight, even when the
/// four payload words are consistent. The ring owner is the only writer,
/// so writers never contend; readers retry on a torn read.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 4],
}

struct Ring {
    slots: Box<[Slot]>,
    /// Total spans ever written (write cursor). Only the owning thread
    /// stores; readers load to find the live window.
    cursor: AtomicU64,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            slots: (0..RING_CAPACITY)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            cursor: AtomicU64::new(0),
        }
    }

    fn push(&self, span: &PhaseSpan) {
        let cursor = self.cursor.load(Ordering::Relaxed);
        let slot = &self.slots[(cursor % RING_CAPACITY as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(1), Ordering::Release); // odd: write in flight
        slot.words[0].store(span.trace_id, Ordering::Relaxed);
        slot.words[1].store(span.start_ns, Ordering::Relaxed);
        slot.words[2].store(span.end_ns, Ordering::Relaxed);
        slot.words[3].store(span.pack_meta(), Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(2), Ordering::Release); // even: consistent
        self.cursor.store(cursor + 1, Ordering::Release);
    }

    /// Collect every consistent span matching `pred`. Readers never block
    /// the writer; a slot being rewritten mid-read is skipped.
    fn collect_if(&self, pred: &dyn Fn(u64) -> bool, out: &mut Vec<PhaseSpan>) {
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue; // never written, or write in flight
            }
            let trace_id = slot.words[0].load(Ordering::Relaxed);
            let start_ns = slot.words[1].load(Ordering::Relaxed);
            let end_ns = slot.words[2].load(Ordering::Relaxed);
            let meta = slot.words[3].load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue; // torn: overwritten while reading
            }
            if trace_id != 0 && pred(trace_id) {
                if let Some(span) = PhaseSpan::unpack(trace_id, start_ns, end_ns, meta) {
                    out.push(span);
                }
            }
        }
    }
}

/// A slow request retained in full: its phase spans, gathered from every
/// thread's ring at completion time.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// The request's trace id.
    pub trace_id: u64,
    /// End-to-end latency in nanoseconds (as reported by the completer).
    pub total_ns: u64,
    /// Phase spans sorted by start time. May miss phases if the rings
    /// wrapped between recording and capture (unlikely: rings remember
    /// ~90 requests).
    pub spans: Vec<PhaseSpan>,
}

/// Reservoir + ring registry. Cloning shares the sink.
///
/// Capture policy: a completed request is captured when its end-to-end
/// latency is at least `threshold_ns` AND it either fits in the reservoir
/// (fewer than `top_k` exemplars) or beats the current slowest-K floor.
/// `threshold_ns = 0` gives pure top-K; a high threshold with a large K
/// gives pure thresholding.
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<SinkInner>,
}

struct SinkInner {
    id: usize,
    threshold_ns: u64,
    top_k: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
    exemplars: Mutex<Vec<Exemplar>>,
    /// Latency of the K-th slowest captured exemplar once the reservoir is
    /// full (else 0): the lock-free fast-path floor for `complete`.
    floor_ns: AtomicU64,
    captured: AtomicU64,
    completed: AtomicU64,
}

thread_local! {
    /// This thread's rings, one per sink it has recorded into. Requests
    /// touch 2 threads (connection + worker); a handful of sinks exist per
    /// process, so a linear scan beats a map.
    static THREAD_RINGS: std::cell::RefCell<Vec<(usize, Arc<Ring>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

static NEXT_SINK_ID: AtomicUsize = AtomicUsize::new(1);

impl TraceSink {
    /// A sink capturing up to `top_k` exemplars among completions at or
    /// above `threshold_ns` end-to-end.
    pub fn new(threshold_ns: u64, top_k: usize) -> TraceSink {
        TraceSink {
            inner: Arc::new(SinkInner {
                id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
                threshold_ns,
                top_k: top_k.max(1),
                rings: Mutex::new(Vec::new()),
                exemplars: Mutex::new(Vec::new()),
                floor_ns: AtomicU64::new(0),
                captured: AtomicU64::new(0),
                completed: AtomicU64::new(0),
            }),
        }
    }

    /// Record one phase span into the calling thread's ring. Lock-free and
    /// allocation-free after the thread's first record.
    pub fn record(&self, span: PhaseSpan) {
        debug_assert!(span.trace_id != 0, "phase span without a trace id");
        THREAD_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.inner.id) {
                ring.push(&span);
                return;
            }
            let ring = Arc::new(Ring::new());
            ring.push(&span);
            self.inner.rings.lock().expect("trace sink rings lock").push(Arc::clone(&ring));
            rings.push((self.inner.id, ring));
        });
    }

    /// Declare a request finished with the given end-to-end latency, and
    /// capture it as an exemplar if it clears the threshold and the top-K
    /// floor. Returns whether it was captured.
    ///
    /// Fast path (the overwhelming majority of requests): two relaxed
    /// atomic ops and a compare — no lock, no ring scan.
    pub fn complete(&self, trace_id: TraceId, total_ns: u64) -> bool {
        self.inner.completed.fetch_add(1, Ordering::Relaxed);
        if total_ns < self.inner.threshold_ns {
            return false;
        }
        let floor = self.inner.floor_ns.load(Ordering::Relaxed);
        if floor > 0 && total_ns <= floor {
            return false;
        }
        self.capture(trace_id, total_ns)
    }

    /// Slow path: gather the trace's spans from every ring and insert into
    /// the reservoir, evicting the fastest exemplar when full.
    fn capture(&self, trace_id: TraceId, total_ns: u64) -> bool {
        let mut spans = Vec::new();
        {
            let rings = self.inner.rings.lock().expect("trace sink rings lock");
            let want = trace_id.raw();
            for ring in rings.iter() {
                ring.collect_if(&|id| id == want, &mut spans);
            }
        }
        spans.sort_by_key(|s| (s.start_ns, s.phase as u8));
        spans.dedup();
        let mut pool = self.inner.exemplars.lock().expect("trace sink exemplar lock");
        // Re-check the floor under the lock (a racing capture may have
        // raised it past us).
        if pool.len() >= self.inner.top_k {
            let min = pool.last().map(|e| e.total_ns).unwrap_or(0);
            if total_ns <= min {
                return false;
            }
            pool.pop();
        }
        let at = pool.partition_point(|e| e.total_ns > total_ns);
        pool.insert(at, Exemplar { trace_id: trace_id.raw(), total_ns, spans });
        if pool.len() >= self.inner.top_k {
            self.inner
                .floor_ns
                .store(pool.last().map(|e| e.total_ns).unwrap_or(0), Ordering::Relaxed);
        }
        self.inner.captured.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Captured exemplars, slowest first.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        self.inner.exemplars.lock().expect("trace sink exemplar lock").clone()
    }

    /// `(completed requests, captured exemplars)` since creation.
    pub fn totals(&self) -> (u64, u64) {
        (self.inner.completed.load(Ordering::Relaxed), self.inner.captured.load(Ordering::Relaxed))
    }

    /// The configured capture threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.inner.threshold_ns
    }

    /// The configured reservoir capacity.
    pub fn top_k(&self) -> usize {
        self.inner.top_k
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (completed, captured) = self.totals();
        f.debug_struct("TraceSink")
            .field("threshold_ns", &self.inner.threshold_ns)
            .field("top_k", &self.inner.top_k)
            .field("completed", &completed)
            .field("captured", &captured)
            .finish()
    }
}

/// The per-phase latency histograms, preregistered so the request path
/// indexes an array instead of hashing metric names.
#[derive(Clone)]
pub struct PhaseHistograms {
    hists: [crate::metrics::Histogram; Phase::COUNT],
}

impl PhaseHistograms {
    /// Register (or look up) every phase histogram in `registry`.
    pub fn register(registry: &crate::metrics::Registry) -> PhaseHistograms {
        PhaseHistograms { hists: Phase::ALL.map(|p| registry.histogram(p.metric_name())) }
    }

    /// Record a phase span's duration into its phase's histogram.
    pub fn record(&self, span: &PhaseSpan) {
        self.hists[span.phase as usize].record(span.duration_ns());
    }

    /// Per-phase aggregate summaries in phase order — what the `stats`
    /// admin op serves so operators get the attribution without a
    /// Prometheus scrape.
    pub fn summaries(&self) -> Vec<(Phase, crate::metrics::HistogramSummary)> {
        Phase::ALL.iter().map(|&p| (p, self.hists[p as usize].summary())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, phase: Phase, start: u64, end: u64) -> PhaseSpan {
        PhaseSpan {
            trace_id: trace,
            phase,
            start_ns: start,
            end_ns: end,
            queue_depth: 0,
            swap_in_progress: false,
        }
    }

    #[test]
    fn phase_names_and_metrics_pair_up() {
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "ALL must be in discriminant order");
            assert_eq!(Phase::from_index(i as u8), Some(*p));
            let expect = format!("serve.phase.{}_ns", p.name());
            assert_eq!(p.metric_name(), expect, "metric name out of step with phase name");
        }
        assert_eq!(Phase::from_index(Phase::COUNT as u8), None);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let ids: std::collections::BTreeSet<u64> =
            (0..10_000).map(|_| TraceId::generate().raw()).collect();
        assert_eq!(ids.len(), 10_000);
        assert!(!ids.contains(&0));
        assert_eq!(TraceId::from_wire(0), None);
        assert_eq!(TraceId::from_wire(42).map(TraceId::raw), Some(42));
    }

    #[test]
    fn spans_pack_and_unpack_losslessly() {
        let s = PhaseSpan {
            trace_id: 0xDEAD_BEEF,
            phase: Phase::Score,
            start_ns: 123,
            end_ns: 456,
            queue_depth: 7,
            swap_in_progress: true,
        };
        let back = PhaseSpan::unpack(s.trace_id, s.start_ns, s.end_ns, s.pack_meta()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.duration_ns(), 333);
    }

    #[test]
    fn recorded_spans_are_collectable_by_trace_id() {
        let sink = TraceSink::new(0, 4);
        for p in Phase::ALL {
            sink.record(span(11, p, 10, 20));
        }
        sink.record(span(22, Phase::Score, 30, 40));
        assert!(sink.complete(TraceId::from_wire(11).unwrap(), 1000));
        let ex = sink.exemplars();
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].trace_id, 11);
        assert_eq!(ex[0].spans.len(), Phase::COUNT, "all phases of trace 11, none of 22");
    }

    #[test]
    fn reservoir_keeps_the_top_k_slowest() {
        let sink = TraceSink::new(0, 3);
        // Shuffled insertion order; only the 3 slowest must survive.
        for (trace, total) in [(1u64, 50u64), (2, 900), (3, 10), (4, 700), (5, 800), (6, 40)] {
            sink.record(span(trace, Phase::Score, 0, total));
            sink.complete(TraceId::from_wire(trace).unwrap(), total);
        }
        let totals: Vec<u64> = sink.exemplars().iter().map(|e| e.total_ns).collect();
        assert_eq!(totals, vec![900, 800, 700]);
    }

    #[test]
    fn threshold_filters_fast_requests() {
        let sink = TraceSink::new(500, 8);
        sink.record(span(1, Phase::Score, 0, 100));
        assert!(!sink.complete(TraceId::from_wire(1).unwrap(), 100));
        sink.record(span(2, Phase::Score, 0, 600));
        assert!(sink.complete(TraceId::from_wire(2).unwrap(), 600));
        assert_eq!(sink.exemplars().len(), 1);
        assert_eq!(sink.totals(), (2, 1));
    }

    #[test]
    fn ring_wraps_without_corruption() {
        let sink = TraceSink::new(0, 2);
        for i in 0..(RING_CAPACITY as u64 * 2 + 17) {
            sink.record(span(i + 1, Phase::Parse, i, i + 1));
        }
        // The last write is intact and collectable.
        let last = RING_CAPACITY as u64 * 2 + 17;
        assert!(sink.complete(TraceId::from_wire(last).unwrap(), 999));
        let ex = sink.exemplars();
        assert_eq!(ex[0].spans.len(), 1);
        assert_eq!(ex[0].spans[0].start_ns, last - 1);
        // A wrapped-away trace yields an exemplar with no spans, not junk.
        assert!(sink.complete(TraceId::from_wire(1).unwrap(), 1000));
        assert!(sink.exemplars().iter().any(|e| e.trace_id == 1 && e.spans.is_empty()));
    }

    #[test]
    fn cross_thread_spans_join_one_exemplar() {
        let sink = TraceSink::new(0, 2);
        sink.record(span(77, Phase::Accept, 0, 5));
        let s2 = sink.clone();
        std::thread::spawn(move || {
            s2.record(span(77, Phase::Score, 10, 30));
        })
        .join()
        .unwrap();
        assert!(sink.complete(TraceId::from_wire(77).unwrap(), 35));
        let ex = sink.exemplars();
        assert_eq!(ex[0].spans.len(), 2);
        assert_eq!(ex[0].spans[0].phase, Phase::Accept, "sorted by start time");
        assert_eq!(ex[0].spans[1].phase, Phase::Score);
    }

    #[test]
    fn phase_histograms_attribute_durations() {
        let reg = crate::metrics::Registry::new();
        let hists = PhaseHistograms::register(&reg);
        hists.record(&span(1, Phase::Score, 1000, 3000));
        hists.record(&span(1, Phase::Write, 0, 100));
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("serve.phase.score_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("serve.phase.score_ns").unwrap().sum, 2000);
        assert_eq!(snap.histogram("serve.phase.write_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("serve.phase.enqueue_ns").unwrap().count, 0);
    }

    #[test]
    fn concurrent_recording_and_capture_is_safe() {
        let sink = TraceSink::new(0, 8);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let sink = sink.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let id = t * 1000 + i + 1;
                    sink.record(span(id, Phase::Score, i, i + 10));
                    sink.complete(TraceId::from_wire(id).unwrap(), i + 10);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ex = sink.exemplars();
        assert_eq!(ex.len(), 8);
        // Slowest-first ordering is maintained under concurrency.
        for w in ex.windows(2) {
            assert!(w[0].total_ns >= w[1].total_ns);
        }
        assert_eq!(sink.totals().0, 2000);
    }
}

//! A minimal JSON value, serializer and parser.
//!
//! The workspace's `serde_json` is unavailable to crates below the
//! simulator without dragging a heavy dependency into the hot-path graph;
//! manifests need *emission* and the serving wire protocol needs
//! *parsing*, so a small writer plus a recursive-descent reader suffice.
//! Objects preserve insertion order (manifests are meant to be diffed by
//! humans).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float. Non-finite values serialize as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset into the input plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What was expected or found.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document (the inverse of [`Json::render`]). Rejects
    /// trailing garbage. Integral numbers parse to `Int`/`UInt`, others to
    /// `Num`; duplicate object keys are kept in order (last wins on
    /// [`Json::get`] lookups being first-match keeps round-trips honest,
    /// so `get` returns the *first* occurrence).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup (first match). `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (`Int`/`UInt`/`Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integral value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact string (single line, no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { offset: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    // Bulk-copy the run up to the next quote, escape,
                    // control, or non-ASCII byte. Validating from `pos` to
                    // the end of input per character instead is quadratic
                    // in document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || !(0x20..0x80).contains(&b) {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("ASCII run is valid UTF-8");
                    out.push_str(run);
                }
                Some(b) => {
                    // Consume one non-ASCII UTF-8 scalar; the sequence
                    // length comes from the lead byte.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8")),
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (d as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digits"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        if integral {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, msg: "invalid number" })
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(18_446_744_073_709_551_615).render(), "18446744073709551615");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), r#""\u0001""#);
        assert_eq!(Json::Str("héllo".into()).render(), "\"héllo\"");
    }

    #[test]
    fn renders_structures_in_order() {
        let j = Json::obj(vec![
            ("b", Json::from(1u64)),
            ("a", Json::Arr(vec![Json::Null, Json::from("x")])),
        ]);
        assert_eq!(j.render(), r#"{"b":1,"a":[null,"x"]}"#);
    }

    #[test]
    fn float_roundtrip_is_lossless_enough() {
        let v = 0.1234567890123_f64;
        let rendered = Json::Num(v).render();
        let parsed: f64 = rendered.parse().unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_roundtrips_rendered_values() {
        let j = Json::obj(vec![
            ("op", Json::from("recommend")),
            // Integral literals parse back as `Int` (UInt is only for
            // values above i64::MAX), so construct with `Int` to make the
            // round-trip structural, not just semantic.
            ("k", Json::Int(5)),
            ("neg", Json::Int(-3)),
            ("x", Json::Num(1.5e-3)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("vals", Json::Arr(vec![Json::Int(1), Json::Num(2.25)])),
            ("text", Json::from("a\"b\\c\nd\théllo")),
        ]);
        let parsed = Json::parse(&j.render()).expect("roundtrip");
        assert_eq!(parsed, j);
    }

    #[test]
    fn parse_handles_whitespace_escapes_and_nesting() {
        let j = Json::parse(" { \"a\" : [ 1 , { \"b\" : \"\\u0041\\u00e9\" } ] , \"c\": 2.5 } ")
            .expect("parse");
        assert_eq!(j.get("c").and_then(Json::as_f64), Some(2.5));
        let arr = j.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("Aé"));
        // Surrogate pair.
        let emoji = Json::parse("\"\\ud83d\\ude00\"").expect("surrogate pair");
        assert_eq!(emoji.as_str(), Some("😀"));
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(18_446_744_073_709_551_615)
        );
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("-0.5").unwrap(), Json::Num(-0.5));
        assert_eq!(Json::Int(42).as_u64(), Some(42));
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.e3",
            "\"unterminated",
            "{\"a\":1}x",
            "\"\\ud83d\"",
            "01x",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn get_returns_first_match_and_none_for_non_objects() {
        let j = Json::parse("{\"a\":1,\"a\":2}").unwrap();
        assert_eq!(j.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }
}

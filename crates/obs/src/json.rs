//! A minimal JSON value and serializer.
//!
//! The workspace's `serde_json` is unavailable to crates below the
//! simulator without dragging a heavy dependency into the hot-path graph;
//! manifests only need *emission*, so a ~100-line writer suffices. Objects
//! preserve insertion order (manifests are meant to be diffed by humans).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float. Non-finite values serialize as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize to a compact string (single line, no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(18_446_744_073_709_551_615).render(), "18446744073709551615");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), r#""\u0001""#);
        assert_eq!(Json::Str("héllo".into()).render(), "\"héllo\"");
    }

    #[test]
    fn renders_structures_in_order() {
        let j = Json::obj(vec![
            ("b", Json::from(1u64)),
            ("a", Json::Arr(vec![Json::Null, Json::from("x")])),
        ]);
        assert_eq!(j.render(), r#"{"b":1,"a":[null,"x"]}"#);
    }

    #[test]
    fn float_roundtrip_is_lossless_enough() {
        let v = 0.1234567890123_f64;
        let rendered = Json::Num(v).render();
        let parsed: f64 = rendered.parse().unwrap();
        assert_eq!(parsed, v);
    }
}

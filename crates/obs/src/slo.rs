//! Windowed metric rollups and burn-rate SLO evaluation.
//!
//! Every histogram in the registry is cumulative-since-start, which is the
//! right shape for Prometheus but useless for answering "what is p99 *right
//! now*" or "are we burning the error budget *this minute*". This module
//! adds:
//!
//! - [`RollupRing`] — a ring of fixed-width **time buckets** derived by
//!   differencing successive cumulative snapshots of one histogram. Each
//!   bucket carries `count/sum/min/max` plus the delta quantile-sketch
//!   counts, so any window of buckets merges by element-wise addition
//!   ([`TimeBucket::merge`] is associative and commutative — property-tested)
//!   into true windowed `rate()` and p50–p999.
//! - [`Slo`] — a multi-window burn-rate evaluator over one latency
//!   objective: observations above `objective_ns` spend error budget
//!   `(1 - target)`; the alert fires when **both** the fast and the slow
//!   window burn faster than their thresholds (the standard multi-window
//!   rule, which is robust to both blips and slow leaks).
//!
//! The evaluator is a pure state machine driven by [`Slo::tick`]; callers
//! own the cadence (the serve plane runs it on a thread at one tick per
//! bucket; tests drive it synchronously with injected observations).

use std::time::Duration;

use crate::metrics::Histogram;
use crate::sketch::{bucket_index, bucket_upper, quantile_from_counts, SKETCH_BUCKETS};

// ---------------------------------------------------------------------------
// Time buckets and the rollup ring

/// One fixed-width window of observations: scalar aggregates plus the
/// delta sketch counts for quantiles. Mergeable (element-wise).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeBucket {
    pub count: u64,
    pub sum: u64,
    /// Lower bound of the smallest non-empty sketch bucket (0 when empty).
    pub min: u64,
    /// Upper bound of the largest non-empty sketch bucket (0 when empty).
    pub max: u64,
    counts: Box<[u64]>,
}

impl TimeBucket {
    /// An empty bucket.
    pub fn empty() -> TimeBucket {
        TimeBucket { count: 0, sum: 0, min: 0, max: 0, counts: vec![0; SKETCH_BUCKETS].into() }
    }

    /// Build a bucket from delta sketch counts plus exact count/sum deltas.
    pub fn from_deltas(counts: Box<[u64]>, count: u64, sum: u64) -> TimeBucket {
        assert_eq!(counts.len(), SKETCH_BUCKETS, "delta array must span the sketch");
        let mut min = 0;
        let mut max = 0;
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                if min == 0 {
                    min = crate::sketch::bucket_bounds(i).0;
                }
                max = bucket_upper(i);
            }
        }
        TimeBucket { count, sum, min, max, counts }
    }

    /// Record one observation directly (test/synthetic input path).
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        let (lo, _) = crate::sketch::bucket_bounds(bucket_index(v));
        let up = bucket_upper(bucket_index(v));
        if self.count == 1 || lo < self.min {
            self.min = lo;
        }
        if up > self.max {
            self.max = up;
        }
    }

    /// Element-wise merge: counts add, min/max widen. Associative and
    /// commutative with [`TimeBucket::empty`] as identity (property-tested
    /// in `tests/slo_prop.rs`), which is what makes window queries exact
    /// regardless of evaluation order.
    pub fn merge(&self, other: &TimeBucket) -> TimeBucket {
        let counts: Box<[u64]> =
            self.counts.iter().zip(other.counts.iter()).map(|(a, b)| a + b).collect();
        let min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        TimeBucket {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min,
            max: self.max.max(other.max),
            counts,
        }
    }

    /// Sketch quantile over this bucket's observations.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.counts.iter().sum();
        quantile_from_counts(&self.counts, total, q)
    }

    /// Observations strictly above the sketch bucket containing `v` —
    /// the "bad event" count for an objective of `v` (resolution is one
    /// sketch bucket, ≈3% relative, same as every quantile here).
    pub fn count_over(&self, v: u64) -> u64 {
        let cut = bucket_index(v);
        self.counts.iter().skip(cut + 1).sum()
    }
}

/// Aggregates of one merged window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowStats {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    /// Events per second over the covered window span.
    pub rate: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    /// Seconds actually covered (fewer buckets early in a run).
    pub span_s: f64,
}

/// Ring of [`TimeBucket`]s over one cumulative histogram. `tick` once per
/// bucket width with the current cumulative state; query any suffix window.
#[derive(Debug)]
pub struct RollupRing {
    bucket_width: Duration,
    capacity: usize,
    buckets: std::collections::VecDeque<TimeBucket>,
    prev_counts: Vec<u64>,
    prev_count: u64,
    prev_sum: u64,
}

impl RollupRing {
    /// A ring holding `capacity` buckets of `bucket_width` each.
    pub fn new(bucket_width: Duration, capacity: usize) -> RollupRing {
        assert!(capacity > 0, "rollup ring needs at least one bucket");
        assert!(bucket_width > Duration::ZERO, "bucket width must be positive");
        RollupRing {
            bucket_width,
            capacity,
            buckets: std::collections::VecDeque::with_capacity(capacity),
            prev_counts: vec![0; SKETCH_BUCKETS],
            prev_count: 0,
            prev_sum: 0,
        }
    }

    pub fn bucket_width(&self) -> Duration {
        self.bucket_width
    }

    /// Buckets currently held.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Close the current bucket from a cumulative snapshot: the delta
    /// since the previous tick becomes the newest [`TimeBucket`].
    /// Saturating against counter resets (which the registry never does,
    /// but a torn read across shards can transiently look like).
    pub fn tick_raw(&mut self, counts: &[u64], count: u64, sum: u64) {
        assert_eq!(counts.len(), SKETCH_BUCKETS, "cumulative array must span the sketch");
        let delta: Box<[u64]> = counts
            .iter()
            .zip(self.prev_counts.iter())
            .map(|(&cur, &prev)| cur.saturating_sub(prev))
            .collect();
        let bucket = TimeBucket::from_deltas(
            delta,
            count.saturating_sub(self.prev_count),
            sum.saturating_sub(self.prev_sum),
        );
        self.prev_counts.copy_from_slice(counts);
        self.prev_count = count;
        self.prev_sum = sum;
        if self.buckets.len() == self.capacity {
            self.buckets.pop_front();
        }
        self.buckets.push_back(bucket);
    }

    /// [`RollupRing::tick_raw`] fed from a live histogram handle.
    pub fn tick(&mut self, histogram: &Histogram) {
        let (counts, count, sum) = histogram.cumulative();
        self.tick_raw(&counts, count, sum);
    }

    /// Merge the newest `buckets` buckets (clamped to what exists) into
    /// one window. An empty ring yields all-zero stats.
    pub fn window(&self, buckets: usize) -> WindowStats {
        let n = buckets.min(self.buckets.len());
        let mut merged = TimeBucket::empty();
        for b in self.buckets.iter().rev().take(n) {
            merged = merged.merge(b);
        }
        let span_s = self.bucket_width.as_secs_f64() * n as f64;
        WindowStats {
            count: merged.count,
            sum: merged.sum,
            min: merged.min,
            max: merged.max,
            mean: if merged.count == 0 { 0.0 } else { merged.sum as f64 / merged.count as f64 },
            rate: if span_s > 0.0 { merged.count as f64 / span_s } else { 0.0 },
            p50: merged.quantile(0.50),
            p90: merged.quantile(0.90),
            p99: merged.quantile(0.99),
            p999: merged.quantile(0.999),
            span_s,
        }
    }

    /// Bad-event count and total count over the newest `buckets` buckets,
    /// for an objective of `objective_ns`.
    pub fn over_objective(&self, objective_ns: u64, buckets: usize) -> (u64, u64) {
        let n = buckets.min(self.buckets.len());
        let mut bad = 0;
        let mut total = 0;
        for b in self.buckets.iter().rev().take(n) {
            bad += b.count_over(objective_ns);
            total += b.count;
        }
        (bad, total)
    }
}

// ---------------------------------------------------------------------------
// Burn-rate SLO evaluation

/// One latency SLO: `target` fraction of observations must land at or
/// under `objective_ns`, evaluated over a fast and a slow window.
#[derive(Clone, Debug)]
pub struct SloConfig {
    /// Latency objective in nanoseconds; above it an event is "bad".
    pub objective_ns: u64,
    /// Target good fraction in `(0, 1)`, e.g. `0.999`.
    pub target: f64,
    /// Rollup tick width — one [`Slo::tick`] per bucket.
    pub bucket: Duration,
    /// Fast window length in buckets (catches sharp burns).
    pub fast_buckets: usize,
    /// Slow window length in buckets (catches slow leaks); also the ring
    /// capacity.
    pub slow_buckets: usize,
    /// Burn-rate alert threshold for the fast window (e.g. `14.4` = the
    /// budget would be gone in 1/14.4 of the SLO period).
    pub fast_burn: f64,
    /// Burn-rate alert threshold for the slow window (e.g. `6.0`).
    pub slow_burn: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            objective_ns: Duration::from_millis(1).as_nanos() as u64,
            target: 0.999,
            bucket: Duration::from_secs(1),
            fast_buckets: 5,
            slow_buckets: 60,
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }
}

impl SloConfig {
    /// Validate field ranges; returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.objective_ns == 0 {
            return Err("slo objective_ns must be positive".into());
        }
        if !(self.target > 0.0 && self.target < 1.0) {
            return Err(format!("slo target must be in (0,1), got {}", self.target));
        }
        if self.bucket == Duration::ZERO {
            return Err("slo bucket width must be positive".into());
        }
        if self.fast_buckets == 0 || self.slow_buckets < self.fast_buckets {
            return Err(format!(
                "slo windows must satisfy 0 < fast ({}) <= slow ({})",
                self.fast_buckets, self.slow_buckets
            ));
        }
        if self.fast_burn <= 0.0 || self.slow_burn <= 0.0 {
            return Err("slo burn thresholds must be positive".into());
        }
        Ok(())
    }
}

/// Evaluator output after a tick — everything the gauges and admin ops
/// expose.
#[derive(Clone, Debug, Default)]
pub struct SloStatus {
    /// Budget burn rate over the fast window (1.0 = burning exactly at
    /// the rate that exhausts the budget in one SLO period).
    pub burn_fast: f64,
    /// Budget burn rate over the slow window.
    pub burn_slow: f64,
    /// Good fraction over the slow window (1.0 when idle).
    pub good_fraction: f64,
    /// Both windows above their burn thresholds.
    pub alert: bool,
    /// Ticks the alert has been continuously firing (0 when clear).
    pub alert_ticks: u64,
    /// Windowed aggregates over the fast window.
    pub fast: WindowStats,
    /// Windowed aggregates over the slow window.
    pub slow: WindowStats,
}

/// Multi-window burn-rate evaluator over one histogram-backed objective.
#[derive(Debug)]
pub struct Slo {
    config: SloConfig,
    ring: RollupRing,
    status: SloStatus,
}

impl Slo {
    /// Build from a validated config (panics on an invalid one — validate
    /// at the config boundary for a recoverable error).
    pub fn new(config: SloConfig) -> Slo {
        if let Err(e) = config.validate() {
            panic!("invalid SloConfig: {e}");
        }
        let ring = RollupRing::new(config.bucket, config.slow_buckets);
        Slo { config, ring, status: SloStatus { good_fraction: 1.0, ..SloStatus::default() } }
    }

    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Latest evaluation (identity values before the first tick).
    pub fn status(&self) -> &SloStatus {
        &self.status
    }

    /// Close a bucket from raw cumulative sketch state and re-evaluate.
    pub fn tick_raw(&mut self, counts: &[u64], count: u64, sum: u64) -> &SloStatus {
        self.ring.tick_raw(counts, count, sum);
        self.evaluate()
    }

    /// Close a bucket from a live histogram and re-evaluate.
    pub fn tick(&mut self, histogram: &Histogram) -> &SloStatus {
        self.ring.tick(histogram);
        self.evaluate()
    }

    fn evaluate(&mut self) -> &SloStatus {
        let budget = 1.0 - self.config.target;
        let burn = |bad: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                (bad as f64 / total as f64) / budget
            }
        };
        let (bad_fast, total_fast) =
            self.ring.over_objective(self.config.objective_ns, self.config.fast_buckets);
        let (bad_slow, total_slow) =
            self.ring.over_objective(self.config.objective_ns, self.config.slow_buckets);
        let burn_fast = burn(bad_fast, total_fast);
        let burn_slow = burn(bad_slow, total_slow);
        let alert = burn_fast >= self.config.fast_burn && burn_slow >= self.config.slow_burn;
        self.status = SloStatus {
            burn_fast,
            burn_slow,
            good_fraction: if total_slow == 0 {
                1.0
            } else {
                1.0 - bad_slow as f64 / total_slow as f64
            },
            alert,
            alert_ticks: if alert { self.status.alert_ticks + 1 } else { 0 },
            fast: self.ring.window(self.config.fast_buckets),
            slow: self.ring.window(self.config.slow_buckets),
        };
        &self.status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    const MS: u64 = 1_000_000;

    fn bucket_of(values: &[u64]) -> TimeBucket {
        let mut b = TimeBucket::empty();
        for &v in values {
            b.record(v);
        }
        b
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let a = bucket_of(&[10, 2 * MS, 30 * MS]);
        let b = bucket_of(&[500, 7 * MS]);
        let merged = a.merge(&b);
        let direct = bucket_of(&[10, 2 * MS, 30 * MS, 500, 7 * MS]);
        assert_eq!(merged, direct);
        assert_eq!(merged.merge(&TimeBucket::empty()), merged);
    }

    #[test]
    fn window_rate_and_quantiles_over_ring() {
        let registry = Registry::new();
        let hist = registry.histogram("slo.test.latency_ns");
        let mut ring = RollupRing::new(Duration::from_secs(1), 4);
        // Three ticks: 100 fast, 100 fast, 100 slow observations.
        for _ in 0..100 {
            hist.record(MS / 2);
        }
        ring.tick(&hist);
        for _ in 0..100 {
            hist.record(MS / 2);
        }
        ring.tick(&hist);
        for _ in 0..100 {
            hist.record(20 * MS);
        }
        ring.tick(&hist);
        let last = ring.window(1);
        assert_eq!(last.count, 100);
        assert!((last.rate - 100.0).abs() < 1e-9, "rate {}", last.rate);
        assert!(last.p50 > 10 * MS, "windowed p50 sees only the slow bucket: {}", last.p50);
        let all = ring.window(3);
        assert_eq!(all.count, 300);
        assert!(all.p50 < MS, "whole-window p50 is fast: {}", all.p50);
        assert!(all.p999 > 10 * MS);
        assert!((all.span_s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ring_caps_at_capacity() {
        let mut ring = RollupRing::new(Duration::from_millis(10), 3);
        let mut counts = vec![0u64; SKETCH_BUCKETS];
        for i in 1..=5u64 {
            counts[bucket_index(i * MS)] += 1;
            ring.tick_raw(&counts, i, i * MS);
        }
        assert_eq!(ring.len(), 3);
        // The 5-tick cumulative count is 5, but the 3-bucket window only
        // holds the last 3 deltas (one observation each).
        assert_eq!(ring.window(3).count, 3);
        assert_eq!(ring.window(usize::MAX).count, 3);
    }

    #[test]
    fn burn_rate_alert_fires_and_clears() {
        let registry = Registry::new();
        let hist = registry.histogram("slo.test.burn_ns");
        let mut slo = Slo::new(SloConfig {
            objective_ns: MS,
            target: 0.99,
            bucket: Duration::from_millis(10),
            fast_buckets: 2,
            slow_buckets: 4,
            fast_burn: 10.0,
            slow_burn: 5.0,
        });
        assert!(!slo.status().alert);
        // Healthy traffic: everything under the objective.
        for _ in 0..4 {
            for _ in 0..50 {
                hist.record(MS / 10);
            }
            let s = slo.tick(&hist).clone();
            assert!(!s.alert, "healthy traffic must not alert: {s:?}");
            assert!(s.burn_fast < 1.0);
            assert!(s.good_fraction > 0.99);
        }
        // Injected latency: every request blows the objective → bad
        // fraction 1.0 → burn 1/(1-0.99) = 100 on both windows.
        for i in 0..4 {
            for _ in 0..50 {
                hist.record(50 * MS);
            }
            let s = slo.tick(&hist).clone();
            if i >= 1 {
                assert!(s.alert, "sustained burn must alert by tick {i}: {s:?}");
                assert!(s.burn_fast > 50.0);
                assert!(s.burn_slow >= 5.0);
            }
        }
        assert!(slo.status().alert_ticks >= 2);
        // Recovery: fast window clears first, then the alert.
        for _ in 0..6 {
            for _ in 0..50 {
                hist.record(MS / 10);
            }
            slo.tick(&hist);
        }
        let s = slo.status();
        assert!(!s.alert, "recovered traffic must clear the alert: {s:?}");
        assert_eq!(s.alert_ticks, 0);
    }

    #[test]
    fn idle_windows_do_not_alert() {
        let mut slo = Slo::new(SloConfig {
            bucket: Duration::from_millis(1),
            fast_buckets: 1,
            slow_buckets: 2,
            ..Default::default()
        });
        let counts = vec![0u64; SKETCH_BUCKETS];
        for _ in 0..5 {
            let s = slo.tick_raw(&counts, 0, 0).clone();
            assert!(!s.alert);
            assert_eq!(s.burn_fast, 0.0);
            assert_eq!(s.good_fraction, 1.0);
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(SloConfig::default().validate().is_ok());
        assert!(SloConfig { target: 1.0, ..Default::default() }.validate().is_err());
        assert!(SloConfig { objective_ns: 0, ..Default::default() }.validate().is_err());
        assert!(SloConfig { fast_buckets: 9, slow_buckets: 3, ..Default::default() }
            .validate()
            .is_err());
        assert!(SloConfig { fast_burn: 0.0, ..Default::default() }.validate().is_err());
    }
}

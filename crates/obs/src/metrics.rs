//! A registry of named counters, gauges and histograms.
//!
//! Counters and histograms are the hot-path primitives (the simulator bumps
//! them per task); both spread their state over [`SHARDS`]
//! cache-line-padded atomics indexed by a per-thread slot, so concurrent
//! writers do not bounce a single cache line. Reads sum the shards.
//!
//! Histograms are backed by the log-linear quantile sketch in
//! [`crate::sketch`]: log₂ octaves × [`crate::sketch::SUB_BUCKETS`] linear
//! sub-buckets, so [`HistogramSummary`] quantiles (p50/p90/p99/p999) carry
//! at most ~3.1% relative error instead of the up-to-2× error of plain
//! log₂ buckets. A record is still a handful of relaxed atomic adds.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed clones:
//! register once, then update through the handle without touching the
//! registry's name map again.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::sketch::{bucket_index, nonempty_buckets, quantile_from_counts, SKETCH_BUCKETS};

/// Number of shards for counters/histograms. Power of two.
pub const SHARDS: usize = 16;

/// A cache-line-padded atomic cell.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    const fn new() -> PaddedU64 {
        PaddedU64(AtomicU64::new(0))
    }
}

fn new_shards() -> [PaddedU64; SHARDS] {
    std::array::from_fn(|_| PaddedU64::new())
}

/// Per-thread shard slot, assigned round-robin on first use. Const-init
/// thread-local plus a sentinel keeps the hot-path access free of the
/// lazy-initialization guard.
#[inline]
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SLOT.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
            v
        }
    })
}

struct CounterInner {
    shards: [PaddedU64; SHARDS],
}

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    fn new() -> Counter {
        Counter { inner: Arc::new(CounterInner { shards: new_shards() }) }
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total (sum over shards).
    pub fn value(&self) -> u64 {
        self.inner.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-write-wins `f64` gauge.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge { bits: Arc::new(AtomicU64::new(0.0f64.to_bits())) }
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Read the gauge.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

struct HistogramInner {
    buckets: Box<[AtomicU64]>, // SKETCH_BUCKETS entries
    count: [PaddedU64; SHARDS],
    sum: [PaddedU64; SHARDS],
}

/// A histogram over non-negative integer observations, bucketed by the
/// log-linear sketch in [`crate::sketch`].
///
/// Records are two relaxed shard adds plus one bucket add; quantiles are
/// conservative (the inclusive upper bound of the matched sketch bucket)
/// with at most ~3.1% relative error.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

/// Aggregated view of a histogram.
///
/// Units are whatever the caller recorded. Durations recorded through
/// [`Histogram::record_secs`] / [`HistogramBatch::observe_secs`] are in
/// **nanoseconds** (sub-microsecond observations stay distinguishable).
/// Quantiles are sketch-bucket upper bounds: never below the true sample
/// quantile, and within ~3.1% above it.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Mean observation (0 when empty).
    pub mean: f64,
    /// Approximate 50th percentile (sketch bucket upper bound).
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Approximate 99.9th percentile.
    pub p999: u64,
    /// Largest non-empty bucket's upper bound (approximate max).
    pub max: u64,
    /// Non-empty sketch buckets as `(inclusive upper bound, count)` pairs
    /// in increasing value order — enough to re-derive any quantile and to
    /// render Prometheus `_bucket` lines.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSummary {
    /// An all-zero summary (what an empty histogram aggregates to).
    pub fn empty() -> HistogramSummary {
        HistogramSummary {
            count: 0,
            sum: 0,
            mean: 0.0,
            p50: 0,
            p90: 0,
            p99: 0,
            p999: 0,
            max: 0,
            buckets: Vec::new(),
        }
    }
}

/// Convert a duration in (finite, non-negative) seconds to the nanosecond
/// integer a histogram records. Debug builds assert on non-finite input;
/// release builds drop the observation (recording a fake 0 would skew
/// p50 downward silently).
#[inline]
fn secs_to_ns(seconds: f64) -> Option<u64> {
    debug_assert!(seconds.is_finite(), "non-finite duration recorded: {seconds}");
    if seconds.is_finite() {
        Some((seconds.max(0.0) * 1e9) as u64)
    } else {
        None
    }
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: (0..SKETCH_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: new_shards(),
                sum: new_shards(),
            }),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let s = shard_index();
        self.inner.count[s].0.fetch_add(1, Ordering::Relaxed);
        self.inner.sum[s].0.fetch_add(v, Ordering::Relaxed);
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration as whole **nanoseconds**. Non-finite input is a
    /// debug assertion and records nothing in release builds.
    #[inline]
    pub fn record_secs(&self, seconds: f64) {
        if let Some(ns) = secs_to_ns(seconds) {
            self.record(ns);
        }
    }

    /// Merge a locally accumulated [`HistogramBatch`]: two shard adds plus
    /// one atomic add per non-empty bucket, instead of three atomics per
    /// observation. No-op for an empty batch.
    pub fn record_batch(&self, batch: &HistogramBatch) {
        if batch.count == 0 {
            return;
        }
        let s = shard_index();
        self.inner.count[s].0.fetch_add(batch.count, Ordering::Relaxed);
        self.inner.sum[s].0.fetch_add(batch.sum, Ordering::Relaxed);
        for (i, &c) in batch.buckets.iter().enumerate() {
            if c > 0 {
                self.inner.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
    }

    /// Aggregate the histogram.
    pub fn summary(&self) -> HistogramSummary {
        let count: u64 = self.inner.count.iter().map(|s| s.0.load(Ordering::Relaxed)).sum();
        let sum: u64 = self.inner.sum.iter().map(|s| s.0.load(Ordering::Relaxed)).sum();
        let counts: Vec<u64> =
            self.inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        // Quantiles walk the *bucket* counts (racing writers can make the
        // shard count differ transiently from the bucket total; using the
        // bucket total keeps each quantile internally consistent).
        let bucket_total: u64 = counts.iter().sum();
        let q = |quant: f64| quantile_from_counts(&counts, bucket_total, quant);
        let buckets = nonempty_buckets(&counts);
        let max = buckets.last().map(|&(upper, _)| upper).unwrap_or(0);
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
            p999: q(0.999),
            max,
            buckets,
        }
    }

    /// Raw cumulative sketch counts plus `(count, sum)` totals — the input
    /// windowed rollups ([`crate::slo`]) difference against their previous
    /// tick. The sum recomputed from buckets is intentionally *not* used:
    /// rollups need the exact sharded totals.
    pub fn cumulative(&self) -> (Vec<u64>, u64, u64) {
        let counts: Vec<u64> =
            self.inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = self.inner.count.iter().map(|s| s.0.load(Ordering::Relaxed)).sum();
        let sum: u64 = self.inner.sum.iter().map(|s| s.0.load(Ordering::Relaxed)).sum();
        (counts, count, sum)
    }
}

/// Thread-local histogram accumulation for hot loops: plain integer adds
/// per observation, then one [`Histogram::record_batch`] per phase.
#[derive(Clone)]
pub struct HistogramBatch {
    buckets: Box<[u64]>, // SKETCH_BUCKETS entries
    count: u64,
    sum: u64,
}

impl HistogramBatch {
    /// An empty batch.
    pub fn new() -> HistogramBatch {
        HistogramBatch { buckets: vec![0u64; SKETCH_BUCKETS].into_boxed_slice(), count: 0, sum: 0 }
    }

    /// Record one observation into the local batch.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.buckets[bucket_index(v)] += 1;
    }

    /// Record a duration as whole **nanoseconds** (see
    /// [`Histogram::record_secs`]).
    #[inline]
    pub fn observe_secs(&mut self, seconds: f64) {
        if let Some(ns) = secs_to_ns(seconds) {
            self.observe(ns);
        }
    }

    /// Number of observations accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Default for HistogramBatch {
    fn default() -> HistogramBatch {
        HistogramBatch::new()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named-metric registry. Cloning shares the registry.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry { inner: Arc::new(Mutex::new(RegistryInner::default())) }
    }

    /// The process-wide default registry (what bench binaries snapshot).
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().expect("metrics registry lock")
    }

    /// Get or create a counter by name.
    pub fn counter(&self, name: &str) -> Counter {
        self.lock().counters.entry(name.to_string()).or_insert_with(Counter::new).clone()
    }

    /// Get or create a gauge by name.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.lock().gauges.entry(name.to_string()).or_insert_with(Gauge::new).clone()
    }

    /// Get or create a histogram by name.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.lock().histograms.entry(name.to_string()).or_insert_with(Histogram::new).clone()
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.lock();
        MetricsSnapshot {
            counters: g.counters.iter().map(|(k, c)| (k.clone(), c.value())).collect(),
            gauges: g.gauges.iter().map(|(k, c)| (k.clone(), c.value())).collect(),
            histograms: g.histograms.iter().map(|(k, h)| (k.clone(), h.summary())).collect(),
        }
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

/// Point-in-time values of every metric in a registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("t.tasks");
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 8000);
        // Same name returns the same counter.
        assert_eq!(reg.counter("t.tasks").value(), 8000);
    }

    #[test]
    fn gauges_hold_last_write() {
        let reg = Registry::new();
        let g = reg.gauge("t.cache_hit");
        g.set(0.25);
        g.set(0.75);
        assert_eq!(g.value(), 0.75);
    }

    #[test]
    fn histogram_summary_is_sane() {
        let reg = Registry::new();
        let h = reg.histogram("t.task_ns");
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 101_106);
        assert!((s.mean - 101_106.0 / 6.0).abs() < 1e-9);
        // Small values are exact in the sketch; large ones within ~3.1%.
        assert_eq!(s.p50, 3);
        assert!(s.p99 >= 100_000 && s.p99 as f64 <= 100_000.0 * 1.04, "{}", s.p99);
        assert!(s.p90 >= 1000 && s.p90 <= s.p99);
        assert!(s.p999 >= s.p99);
        assert!(s.max >= 100_000 && s.max as f64 <= 100_000.0 * 1.04);
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 6);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Registry::new().histogram("t.empty");
        assert_eq!(h.summary(), HistogramSummary::empty());
    }

    #[test]
    fn snapshot_sorts_and_finds() {
        let reg = Registry::new();
        reg.counter("b").add(2);
        reg.counter("a").add(1);
        reg.gauge("g").set(3.5);
        reg.histogram("h").record(7);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("a".into(), 1), ("b".into(), 2)]);
        assert_eq!(snap.gauge("g"), Some(3.5));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn batched_records_match_direct_records() {
        let reg = Registry::new();
        let direct = reg.histogram("t.direct");
        let batched = reg.histogram("t.batched");
        let mut batch = HistogramBatch::new();
        let values = [0u64, 1, 5, 5, 900, 70_000, u64::MAX / 2];
        for &v in &values {
            direct.record(v);
            batch.observe(v);
        }
        assert_eq!(batch.count(), values.len() as u64);
        batched.record_batch(&batch);
        assert_eq!(direct.summary(), batched.summary());
        // Flushing the same batch twice doubles the counts.
        batched.record_batch(&batch);
        assert_eq!(batched.summary().count, 2 * values.len() as u64);
        // Empty batches are no-ops.
        reg.histogram("t.empty_flush").record_batch(&HistogramBatch::new());
        assert_eq!(reg.histogram("t.empty_flush").summary().count, 0);
    }

    #[test]
    fn record_secs_keeps_sub_microsecond_resolution() {
        let reg = Registry::new();
        let h = reg.histogram("t.lat_ns");
        // 250 ns and 800 ns used to collapse into the same microsecond-0
        // bucket; in nanoseconds they land in distinct buckets. Quantiles
        // report the bucket's inclusive upper bound (within ~1/32 relative).
        h.record_secs(250e-9);
        h.record_secs(800e-9);
        h.record_secs(1.5e-3); // 1.5 ms = 1_500_000 ns
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert!(s.p50 >= 800 && s.p50 as f64 <= 800.0 * 1.04, "p50 {}", s.p50);
        assert!(s.p99 >= 1_500_000 && s.p99 as f64 <= 1_500_000.0 * 1.04);
        // Negative durations clamp to zero rather than wrapping.
        h.record_secs(-1.0);
        assert_eq!(h.summary().count, 4);

        let mut batch = HistogramBatch::new();
        batch.observe_secs(250e-9);
        assert_eq!(batch.count(), 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-finite duration"))]
    fn non_finite_durations_are_rejected() {
        let h = Registry::new().histogram("t.nan");
        h.record_secs(f64::NAN);
        // Release builds: dropped, not recorded as a bogus zero.
        assert_eq!(h.summary().count, 0);
    }
}

//! A mergeable log-linear quantile sketch (HDR-histogram style).
//!
//! Values are bucketed by their log₂ *octave* and then linearly within it:
//! each octave `[2^m, 2^(m+1))` is split into [`SUB_BUCKETS`] equal-width
//! sub-buckets, so a bucket's width is `2^m / SUB_BUCKETS` and its relative
//! width is at most `1 / SUB_BUCKETS` (~3.1% with 32 sub-buckets). Values
//! below `2 * SUB_BUCKETS` are recorded exactly. Quantiles read the upper
//! bound of the matched bucket, so they are conservative (never below the
//! true quantile) and within `1 / SUB_BUCKETS` relative error above it —
//! compared to the up-to-2× error of a plain log₂ histogram.
//!
//! The bucket *layout* lives here as plain functions so both the atomic
//! [`crate::metrics::Histogram`] and the thread-local
//! [`crate::metrics::HistogramBatch`] index the same array shape, and any
//! two count arrays merge by element-wise addition (the sketch is
//! mergeable by construction: bucket boundaries are value-independent).

/// log₂ of the linear sub-buckets per octave.
pub const SUB_BITS: u32 = 5;

/// Linear sub-buckets per octave. The worst-case relative error of a
/// quantile estimate is `1 / SUB_BUCKETS` (~3.1%).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Total buckets: one exact group for values `0..SUB_BUCKETS`, then one
/// group of [`SUB_BUCKETS`] for every octave `2^m..2^(m+1)` with
/// `m in SUB_BITS..=63`.
pub const SKETCH_BUCKETS: usize = ((64 - SUB_BITS + 1) * SUB_BUCKETS as u32) as usize;

/// Bucket index for a value. Total order: `v <= w` implies
/// `bucket_index(v) <= bucket_index(w)`.
#[inline(always)]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    // Octave (position of the leading bit), at least SUB_BITS here.
    let m = 63 - v.leading_zeros();
    let group = (m - SUB_BITS + 1) as usize;
    // The SUB_BITS bits directly below the leading bit select the linear
    // sub-bucket within the octave.
    let sub = ((v >> (m - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
    group * SUB_BUCKETS as usize + sub
}

/// Inclusive `(lower, upper)` value bounds of a bucket.
#[inline]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < SKETCH_BUCKETS);
    let sub = i as u64 & (SUB_BUCKETS - 1);
    let group = (i as u64) >> SUB_BITS;
    if group == 0 {
        return (sub, sub);
    }
    let shift = (group - 1) as u32;
    let lo = (SUB_BUCKETS + sub) << shift;
    (lo, lo + ((1u64 << shift) - 1))
}

/// Inclusive upper bound of a bucket (what quantile reads report).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    bucket_bounds(i).1
}

/// Quantile estimate over a bucket-count array of [`SKETCH_BUCKETS`]
/// entries: the upper bound of the bucket holding the `ceil(q * count)`-th
/// smallest observation. Returns 0 on an empty sketch. `q` is clamped to
/// `[0, 1]`.
pub fn quantile_from_counts(counts: &[u64], count: u64, q: f64) -> u64 {
    debug_assert_eq!(counts.len(), SKETCH_BUCKETS);
    if count == 0 {
        return 0;
    }
    let target = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= target {
            return bucket_upper(i);
        }
    }
    bucket_upper(SKETCH_BUCKETS - 1)
}

/// Non-empty buckets of a count array as `(inclusive upper bound,
/// observations)` pairs, in increasing value order — the compact form
/// snapshots and Prometheus exposition consume.
pub fn nonempty_buckets(counts: &[u64]) -> Vec<(u64, u64)> {
    debug_assert_eq!(counts.len(), SKETCH_BUCKETS);
    counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (bucket_upper(i), c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic SplitMix64 for test sampling.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn buckets_partition_the_u64_line() {
        // Exhaustive at the small end, boundary-sampled elsewhere.
        for v in 0u64..4096 {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
        }
        for m in SUB_BITS..64 {
            for v in [1u64 << m, (1u64 << m) + 1, (1u64 << m) - 1, u64::MAX >> (63 - m)] {
                let i = bucket_index(v);
                let (lo, hi) = bucket_bounds(i);
                assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), SKETCH_BUCKETS - 1);
        assert_eq!(bucket_upper(SKETCH_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_are_contiguous() {
        let mut prev_hi: Option<u64> = None;
        for i in 0..SKETCH_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap/overlap before bucket {i}");
            }
            prev_hi = Some(hi);
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..(2 * SUB_BUCKETS) {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert_eq!((lo, hi), (v, v), "value {v} not exact");
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in 0..SKETCH_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            if lo == 0 {
                continue;
            }
            let width = (hi - lo) as f64;
            assert!(
                width / lo as f64 <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
                "bucket {i}: width {width} lo {lo}"
            );
        }
    }

    /// The acceptance pin: sketch p50/p99 within 5% relative error of the
    /// exact sorted quantiles on the same sample, across three shapes of
    /// distribution (log-uniform, heavy-tailed, constant-ish).
    #[test]
    fn quantiles_track_exact_sorted_quantiles_within_5_percent() {
        fn log_uniform(s: &mut u64) -> u64 {
            1u64 << (splitmix(s) % 40)
        }
        fn heavy_tail(s: &mut u64) -> u64 {
            100 + (splitmix(s) % 1_000) * (splitmix(s) % 97 + 1)
        }
        fn narrow(s: &mut u64) -> u64 {
            1_000_000 + splitmix(s) % 5_000
        }
        type Shape = fn(&mut u64) -> u64;
        let shapes: [(&str, Shape); 3] =
            [("log-uniform", log_uniform), ("heavy-tail", heavy_tail), ("narrow", narrow)];
        for (name, gen) in shapes {
            let mut state = 0xfeed_0000u64;
            let mut counts = vec![0u64; SKETCH_BUCKETS];
            let mut exact: Vec<u64> = Vec::new();
            for _ in 0..10_000 {
                let v = gen(&mut state);
                counts[bucket_index(v)] += 1;
                exact.push(v);
            }
            exact.sort_unstable();
            for q in [0.50, 0.90, 0.99, 0.999] {
                let est = quantile_from_counts(&counts, exact.len() as u64, q);
                let idx =
                    ((q * exact.len() as f64).ceil().max(1.0) as usize - 1).min(exact.len() - 1);
                let truth = exact[idx];
                assert!(est >= truth, "{name} q={q}: est {est} below exact {truth}");
                let rel = (est - truth) as f64 / truth.max(1) as f64;
                assert!(rel <= 0.05, "{name} q={q}: est {est} vs exact {truth} ({rel:.4} rel)");
            }
        }
    }

    #[test]
    fn merging_count_arrays_equals_recording_into_one() {
        let mut a = vec![0u64; SKETCH_BUCKETS];
        let mut b = vec![0u64; SKETCH_BUCKETS];
        let mut whole = vec![0u64; SKETCH_BUCKETS];
        let mut state = 7u64;
        for i in 0..2_000 {
            let v = splitmix(&mut state) % 1_000_000;
            whole[bucket_index(v)] += 1;
            if i % 2 == 0 {
                a[bucket_index(v)] += 1;
            } else {
                b[bucket_index(v)] += 1;
            }
        }
        let merged: Vec<u64> = a.iter().zip(b.iter()).map(|(x, y)| x + y).collect();
        assert_eq!(merged, whole);
        for q in [0.5, 0.99] {
            assert_eq!(
                quantile_from_counts(&merged, 2_000, q),
                quantile_from_counts(&whole, 2_000, q)
            );
        }
    }

    #[test]
    fn empty_and_degenerate_quantiles() {
        let counts = vec![0u64; SKETCH_BUCKETS];
        assert_eq!(quantile_from_counts(&counts, 0, 0.5), 0);
        let mut one = vec![0u64; SKETCH_BUCKETS];
        one[bucket_index(42)] = 1;
        for q in [0.0, 0.5, 1.0, 2.0, -1.0] {
            assert_eq!(quantile_from_counts(&one, 1, q), 42);
        }
        assert_eq!(nonempty_buckets(&one), vec![(42, 1)]);
    }
}

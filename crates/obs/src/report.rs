//! Run manifests: one JSON object per run, plus the human-readable tables.
//!
//! A [`Report`] collects everything a bench binary used to scatter over
//! `println!`: phase wall-clock timings, free-form fields (seed,
//! configuration, derived statistics), tables and notes. Tables and notes
//! are *printed as they are written* — the stdout view and the JSON
//! manifest are produced from the same data, so they cannot drift apart.
//!
//! `finish()` appends the manifest as one line of JSON to
//! `<dir>/<name>.manifest.jsonl` and returns the path.

// This module IS the stdout owner the workspace-wide print_stdout deny
// points everything else at.
#![allow(clippy::print_stdout)]

use crate::json::Json;
use crate::metrics::{MetricsSnapshot, Registry};
use crate::span::{AttrValue, SpanRecord};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug, Clone)]
struct Phase {
    name: String,
    wall_s: f64,
}

#[derive(Debug, Clone)]
struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

struct ReportInner {
    name: String,
    started: Instant,
    phases: Vec<Phase>,
    fields: Vec<(String, Json)>,
    tables: Vec<Table>,
    notes: Vec<String>,
    metrics: Option<MetricsSnapshot>,
    span_count: usize,
    quiet: bool,
}

/// A run report. Cloning shares the report (hand clones to helpers).
#[derive(Clone)]
pub struct Report {
    inner: Arc<Mutex<ReportInner>>,
}

impl Report {
    /// Start a report for a named run (e.g. `"table06_tuning"`).
    pub fn new(name: &str) -> Report {
        Report {
            inner: Arc::new(Mutex::new(ReportInner {
                name: name.to_string(),
                started: Instant::now(),
                phases: Vec::new(),
                fields: Vec::new(),
                tables: Vec::new(),
                notes: Vec::new(),
                metrics: None,
                span_count: 0,
                quiet: false,
            })),
        }
    }

    /// Suppress stdout echo (tables/notes are only captured). For tests.
    pub fn quiet(name: &str) -> Report {
        let r = Report::new(name);
        r.inner.lock().expect("report lock").quiet = true;
        r
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ReportInner> {
        self.inner.lock().expect("report lock")
    }

    /// Record a free-form manifest field.
    pub fn field(&self, key: &str, value: impl Into<Json>) {
        self.lock().fields.push((key.to_string(), value.into()));
    }

    /// Time a closure as a named phase.
    pub fn phase<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.lock()
            .phases
            .push(Phase { name: name.to_string(), wall_s: t0.elapsed().as_secs_f64() });
        out
    }

    /// Record an already-measured phase duration.
    pub fn phase_s(&self, name: &str, wall_s: f64) {
        self.lock().phases.push(Phase { name: name.to_string(), wall_s });
    }

    /// Print a note line to stdout and capture it in the manifest.
    pub fn note(&self, line: &str) {
        let mut g = self.lock();
        if !g.quiet {
            println!("{line}");
        }
        g.notes.push(line.to_string());
    }

    /// Open a table: prints the header immediately, captures everything.
    pub fn table(&self, title: &str, header: &[&str], widths: &[usize]) -> TableWriter {
        let mut g = self.lock();
        if !g.quiet {
            println!("\n# {title}\n");
            print_cells(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>(), widths);
            let mut line = String::from("|");
            for w in widths {
                line.push_str(&format!("{}|", "-".repeat(w + 2)));
            }
            println!("{line}");
        }
        g.tables.push(Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        });
        let index = g.tables.len() - 1;
        TableWriter { report: self.clone(), index, widths: widths.to_vec() }
    }

    /// Attach a snapshot of a metrics registry (replaces any previous one).
    pub fn metrics(&self, registry: &Registry) {
        self.lock().metrics = Some(registry.snapshot());
    }

    /// Summarize finished spans into the manifest: per span name, the count
    /// and total duration. (Full span dumps stay out of the manifest — it
    /// is one line per run.)
    pub fn spans(&self, spans: &[SpanRecord]) {
        use std::collections::BTreeMap;
        let mut agg: BTreeMap<&'static str, (u64, f64)> = BTreeMap::new();
        for s in spans {
            let e = agg.entry(s.name).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += s.duration_s();
        }
        let mut g = self.lock();
        g.span_count += spans.len();
        g.fields.push((
            "spans".to_string(),
            Json::Obj(
                agg.into_iter()
                    .map(|(name, (count, total_s))| {
                        (
                            name.to_string(),
                            Json::obj(vec![
                                ("count", Json::UInt(count)),
                                ("total_s", Json::Num(total_s)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
    }

    /// Build the manifest JSON object.
    pub fn manifest(&self) -> Json {
        let g = self.lock();
        let mut pairs: Vec<(String, Json)> = vec![
            ("run".to_string(), Json::Str(g.name.clone())),
            ("wall_s".to_string(), Json::Num(g.started.elapsed().as_secs_f64())),
        ];
        pairs.extend(g.fields.iter().cloned());
        pairs.push((
            "phases".to_string(),
            Json::Arr(
                g.phases
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("name", Json::Str(p.name.clone())),
                            ("wall_s", Json::Num(p.wall_s)),
                        ])
                    })
                    .collect(),
            ),
        ));
        if !g.tables.is_empty() {
            pairs.push((
                "tables".to_string(),
                Json::Arr(
                    g.tables
                        .iter()
                        .map(|t| {
                            Json::obj(vec![
                                ("title", Json::Str(t.title.clone())),
                                (
                                    "header",
                                    Json::Arr(
                                        t.header.iter().map(|h| Json::Str(h.clone())).collect(),
                                    ),
                                ),
                                (
                                    "rows",
                                    Json::Arr(
                                        t.rows
                                            .iter()
                                            .map(|r| {
                                                Json::Arr(
                                                    r.iter()
                                                        .map(|c| Json::Str(c.clone()))
                                                        .collect(),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if !g.notes.is_empty() {
            pairs.push((
                "notes".to_string(),
                Json::Arr(g.notes.iter().map(|n| Json::Str(n.clone())).collect()),
            ));
        }
        if let Some(m) = &g.metrics {
            pairs.push(("metrics".to_string(), snapshot_json(m)));
        }
        Json::Obj(pairs)
    }

    /// Append the manifest as one JSON line to `<dir>/<name>.manifest.jsonl`
    /// (creating `dir` if needed) and return the path.
    pub fn finish(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.manifest.jsonl", self.lock().name));
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        writeln!(f, "{}", self.manifest().render())?;
        Ok(path)
    }

    /// Render the manifest's phases/fields as a short human-readable block.
    pub fn render_human(&self) -> String {
        let g = self.lock();
        let mut out = String::new();
        out.push_str(&format!("run {} ({:.1}s wall)\n", g.name, g.started.elapsed().as_secs_f64()));
        for (k, v) in &g.fields {
            out.push_str(&format!("  {k}: {}\n", v.render()));
        }
        for p in &g.phases {
            out.push_str(&format!("  phase {}: {:.2}s\n", p.name, p.wall_s));
        }
        if let Some(m) = &g.metrics {
            for (k, v) in &m.counters {
                out.push_str(&format!("  counter {k}: {v}\n"));
            }
            for (k, v) in &m.gauges {
                out.push_str(&format!("  gauge {k}: {v:.4}\n"));
            }
            for (k, h) in &m.histograms {
                out.push_str(&format!(
                    "  histogram {k}: n={} mean={:.1} p50<={} p90<={} p99<={} p999<={}\n",
                    h.count, h.mean, h.p50, h.p90, h.p99, h.p999
                ));
            }
        }
        out
    }
}

/// Writes rows of one table through the report (printing + capturing).
pub struct TableWriter {
    report: Report,
    index: usize,
    widths: Vec<usize>,
}

impl TableWriter {
    /// Append (and print) one row.
    pub fn row(&mut self, cells: &[String]) {
        let mut g = self.report.lock();
        if !g.quiet {
            print_cells(cells, &self.widths);
        }
        g.tables[self.index].rows.push(cells.to_vec());
    }
}

fn print_cells(cells: &[String], widths: &[usize]) {
    let mut line = String::from("|");
    for (c, w) in cells.iter().zip(widths.iter()) {
        line.push_str(&format!(" {c:>w$} |"));
    }
    println!("{line}");
}

fn snapshot_json(m: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        (
            "counters",
            Json::Obj(m.counters.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect()),
        ),
        ("gauges", Json::Obj(m.gauges.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect())),
        (
            "histograms",
            Json::Obj(
                m.histograms
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            Json::obj(vec![
                                ("count", Json::UInt(h.count)),
                                ("sum", Json::UInt(h.sum)),
                                ("mean", Json::Num(h.mean)),
                                ("p50", Json::UInt(h.p50)),
                                ("p90", Json::UInt(h.p90)),
                                ("p99", Json::UInt(h.p99)),
                                ("p999", Json::UInt(h.p999)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Render a span attribute for humans (used by debug dumps).
pub fn attr_display(v: &AttrValue) -> String {
    match v {
        AttrValue::I64(x) => x.to_string(),
        AttrValue::U64(x) => x.to_string(),
        AttrValue::F64(x) => format!("{x:.4}"),
        AttrValue::Bool(x) => x.to_string(),
        AttrValue::Str(x) => x.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    #[test]
    fn manifest_contains_fields_phases_tables_notes() {
        let r = Report::quiet("unit");
        r.field("seed", 7u64);
        let x = r.phase("build", || 21 * 2);
        assert_eq!(x, 42);
        let mut t = r.table("Table T", &["a", "b"], &[4, 4]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["3".into(), "4".into()]);
        r.note("done");
        let j = r.manifest().render();
        assert!(j.starts_with(r#"{"run":"unit","wall_s":"#), "{j}");
        assert!(j.contains(r#""seed":7"#));
        assert!(j.contains(r#""name":"build""#));
        assert!(j.contains(r#""rows":[["1","2"],["3","4"]]"#));
        assert!(j.contains(r#""notes":["done"]"#));
    }

    #[test]
    fn metrics_snapshot_lands_in_manifest() {
        let reg = Registry::new();
        reg.counter("c.x").add(5);
        reg.gauge("g.y").set(1.25);
        reg.histogram("h.z").record(10);
        let r = Report::quiet("unit2");
        r.metrics(&reg);
        let j = r.manifest().render();
        assert!(j.contains(r#""c.x":5"#), "{j}");
        assert!(j.contains(r#""g.y":1.25"#), "{j}");
        assert!(j.contains(r#""count":1"#), "{j}");
    }

    #[test]
    fn span_summary_aggregates_by_name() {
        let tracer = Tracer::new();
        for _ in 0..3 {
            drop(tracer.span("epoch"));
        }
        drop(tracer.span("run"));
        let r = Report::quiet("unit3");
        r.spans(&tracer.finished());
        let j = r.manifest().render();
        assert!(j.contains(r#""epoch":{"count":3"#), "{j}");
        assert!(j.contains(r#""run":{"count":1"#), "{j}");
    }

    #[test]
    fn finish_appends_jsonl() {
        let dir = std::env::temp_dir().join(format!("lite-obs-test-{}", std::process::id()));
        let r = Report::quiet("writer");
        r.field("k", "v");
        let p1 = r.finish(&dir).unwrap();
        let p2 = r.finish(&dir).unwrap();
        assert_eq!(p1, p2);
        let text = std::fs::read_to_string(&p1).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains(r#""k":"v""#));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn human_rendering_mentions_everything() {
        let reg = Registry::new();
        reg.counter("n").add(2);
        let r = Report::quiet("hr");
        r.field("seed", 1u64);
        r.phase_s("train", 1.5);
        r.metrics(&reg);
        let h = r.render_human();
        assert!(h.contains("run hr"));
        assert!(h.contains("seed: 1"));
        assert!(h.contains("phase train: 1.50s"));
        assert!(h.contains("counter n: 2"));
    }
}

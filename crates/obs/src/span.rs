//! Hierarchical span tracing.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s. Nesting is tracked per
//! thread: a span opened while another span of the *same tracer* is open on
//! the same thread becomes its child. Finished spans are collected into the
//! tracer and can be drained for reporting.
//!
//! Design constraints (the simulator calls `span()` in its hot loop):
//!
//! * a **disabled** tracer produces inert guards — one branch, no clock
//!   read, no allocation;
//! * an enabled tracer reads the monotonic clock twice per span and takes
//!   one short mutex hold when the span finishes (tracing is for runs and
//!   stages, not per-task events — those go through `metrics`);
//! * retrospective spans describing *simulated* time (e.g. one span per
//!   scheduling wave) are built as [`SynthSpan`]s and recorded through
//!   [`Tracer::record_batch`], which allocates ids and takes the finish
//!   lock once for the whole batch instead of once per span.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The single monotonic epoch every span (and request-path phase span, see
/// [`crate::trace`]) is stamped against. Spans from different tracers and
/// different threads are directly comparable: a request accepted on the
/// listener thread and scored on a worker thread carry timestamps on one
/// axis. Fixed at first use, which is "process start" for any program that
/// creates a tracer early; the absolute origin is irrelevant, only that it
/// is shared.
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch. Shared timestamp source for
/// every tracer in the process.
pub fn epoch_us() -> u64 {
    process_epoch().elapsed().as_micros() as u64
}

/// Nanoseconds since the process trace epoch (the request-path phase
/// clock; phase spans need sub-microsecond resolution).
pub fn epoch_ns() -> u64 {
    process_epoch().elapsed().as_nanos() as u64
}

/// A span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

/// A finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Tracer-unique id (monotonically increasing in open order).
    pub id: u64,
    /// Parent span id, if this span was opened inside another.
    pub parent: Option<u64>,
    /// Static span name (dynamic context goes into `attrs`).
    pub name: &'static str,
    /// Microseconds since the process trace epoch when the span opened.
    pub start_us: u64,
    /// Microseconds since the process trace epoch when the span closed.
    pub end_us: u64,
    /// Key/value attributes in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Span duration in seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end_us.saturating_sub(self.start_us)) as f64 * 1e-6
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Process-unique tracer ids keep the per-thread nesting stacks of distinct
/// tracers from mis-parenting each other's spans.
static NEXT_TRACER_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// Stack of (tracer id, span id) for spans currently open on this
    /// thread.
    static OPEN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

struct TracerInner {
    tracer_id: usize,
    fine: bool,
    next_span_id: AtomicU64,
    finished: Mutex<Vec<SpanRecord>>,
    /// Optional sampling-profiler hookup: every span enter/exit also
    /// pushes/pops a tag frame, so span-instrumented code profiles for
    /// free (set once via [`Tracer::attach_profiler`]).
    profiler: OnceLock<crate::prof::Profiler>,
}

/// A thread-safe span collector. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Tracer {
    /// `None` = disabled: `span()` returns an inert guard.
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// An enabled tracer recording at standard detail: call sites gate
    /// their highest-volume spans (e.g. the simulator's per-wave spans)
    /// behind [`Tracer::is_fine`], the span analogue of a DEBUG log level.
    /// Timestamps are relative to the shared process epoch (see
    /// [`epoch_us`]), so spans from distinct tracers and threads order
    /// against each other.
    pub fn new() -> Tracer {
        Tracer::with_detail(false)
    }

    /// An enabled tracer that also records fine-detail spans. Fine spans
    /// carry per-wave/per-item payloads whose volume is proportional to
    /// simulated work, so this level trades hot-loop overhead for depth —
    /// use it for deep dives, not steady-state runs.
    pub fn new_fine() -> Tracer {
        Tracer::with_detail(true)
    }

    fn with_detail(fine: bool) -> Tracer {
        // Pin the shared epoch no later than first tracer creation so
        // `start_us` stays small and `as u64` casts never saturate.
        let _ = process_epoch();
        Tracer {
            inner: Some(Arc::new(TracerInner {
                tracer_id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                fine,
                next_span_id: AtomicU64::new(1),
                finished: Mutex::new(Vec::new()),
                profiler: OnceLock::new(),
            })),
        }
    }

    /// Attach a sampling profiler: from now on every span enter/exit on
    /// this tracer also pushes/pops a [`crate::prof`] tag frame named after
    /// the span, so anything span-instrumented shows up in flamegraphs
    /// without separate tagging. First attachment wins; no-op on a
    /// disabled tracer or a disabled profiler.
    pub fn attach_profiler(&self, profiler: crate::prof::Profiler) {
        if let Some(inner) = &self.inner {
            if profiler.is_enabled() {
                let _ = inner.profiler.set(profiler);
            }
        }
    }

    /// A disabled tracer: spans are inert, nothing is recorded.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether fine-detail (per-wave / per-item) spans should be emitted.
    /// Always implies [`Tracer::is_enabled`].
    pub fn is_fine(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.fine)
    }

    /// Open a span. Drop the guard to close it. While the guard lives,
    /// further spans opened on the same thread become its children.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None, _tag: None };
        };
        let id = inner.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent = OPEN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent =
                s.iter().rev().find(|(tid, _)| *tid == inner.tracer_id).map(|(_, sid)| *sid);
            s.push((inner.tracer_id, id));
            parent
        });
        SpanGuard {
            active: Some(ActiveSpan {
                tracer: Arc::clone(inner),
                record: SpanRecord {
                    id,
                    parent,
                    name,
                    start_us: epoch_us(),
                    end_us: 0,
                    attrs: Vec::new(),
                },
            }),
            _tag: inner.profiler.get().map(|p| p.enter(name)),
        }
    }

    /// Snapshot of all finished spans, in finish order.
    pub fn finished(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.finished.lock().expect("tracer lock").clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot of at most the `max` most recently finished spans, plus
    /// the number of older spans left out. Clones only the tail — on a
    /// long-lived tracer with a large buffer this is the accessor exporters
    /// should use instead of [`Tracer::finished`].
    pub fn finished_tail(&self, max: usize) -> (Vec<SpanRecord>, usize) {
        match &self.inner {
            Some(inner) => {
                let buf = inner.finished.lock().expect("tracer lock");
                let skip = buf.len().saturating_sub(max);
                (buf[skip..].to_vec(), skip)
            }
            None => (Vec::new(), 0),
        }
    }

    /// Drain finished spans, leaving the tracer empty.
    pub fn take_finished(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.finished.lock().expect("tracer lock")),
            None => Vec::new(),
        }
    }

    /// Finished spans with the given name (convenience for tests/reports).
    pub fn finished_named(&self, name: &str) -> Vec<SpanRecord> {
        self.finished().into_iter().filter(|s| s.name == name).collect()
    }

    /// Microseconds since the process trace epoch (0 when disabled). One
    /// clock read; lets hot paths stamp many [`SynthSpan`]s from one
    /// reading.
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(_) => epoch_us(),
            None => 0,
        }
    }

    /// Id of the innermost span of *this* tracer open on the current
    /// thread, for parenting [`SynthSpan`]s. `None` when disabled or no
    /// span is open.
    pub fn current_span_id(&self) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        OPEN_STACK.with(|s| {
            s.borrow().iter().rev().find(|(tid, _)| *tid == inner.tracer_id).map(|(_, sid)| *sid)
        })
    }

    /// Record a batch of pre-built spans: ids are allocated contiguously
    /// and the finish lock is taken once. No-op when disabled or empty.
    pub fn record_batch(&self, spans: Vec<SynthSpan>) {
        let Some(inner) = &self.inner else { return };
        if spans.is_empty() {
            return;
        }
        let first = inner.next_span_id.fetch_add(spans.len() as u64, Ordering::Relaxed);
        let mut finished = inner.finished.lock().expect("tracer lock");
        finished.reserve(spans.len());
        for (i, s) in spans.into_iter().enumerate() {
            finished.push(SpanRecord {
                id: first + i as u64,
                parent: s.parent,
                name: s.name,
                start_us: s.start_us,
                end_us: s.end_us,
                attrs: s.attrs,
            });
        }
    }
}

/// A pre-built span for [`Tracer::record_batch`]: everything in a
/// [`SpanRecord`] except the id, which the tracer assigns at record time.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpan {
    /// Parent span id (usually [`Tracer::current_span_id`]).
    pub parent: Option<u64>,
    /// Static span name.
    pub name: &'static str,
    /// Microseconds since the process trace epoch at open
    /// ([`Tracer::now_us`]).
    pub start_us: u64,
    /// Microseconds since the process trace epoch at close.
    pub end_us: u64,
    /// Key/value attributes in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

struct ActiveSpan {
    tracer: Arc<TracerInner>,
    record: SpanRecord,
}

/// RAII guard for an open span. Closing (dropping) records the end time and
/// moves the record into the tracer.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    /// Piggybacked profiler tag frame (inert unless a profiler is
    /// attached); pops when the span closes.
    _tag: Option<crate::prof::TagGuard>,
}

impl SpanGuard {
    /// Attach an attribute (no-op on a disabled tracer's guard).
    pub fn attr(&mut self, key: &'static str, value: AttrValue) {
        if let Some(a) = &mut self.active {
            if a.record.attrs.is_empty() {
                // Spans carry a handful of attrs; one allocation, no regrowth.
                a.record.attrs.reserve(8);
            }
            a.record.attrs.push((key, value));
        }
    }

    /// Attach an `i64` attribute.
    pub fn attr_i64(&mut self, key: &'static str, v: i64) {
        self.attr(key, AttrValue::I64(v));
    }

    /// Attach a `u64` attribute.
    pub fn attr_u64(&mut self, key: &'static str, v: u64) {
        self.attr(key, AttrValue::U64(v));
    }

    /// Attach an `f64` attribute.
    pub fn attr_f64(&mut self, key: &'static str, v: f64) {
        self.attr(key, AttrValue::F64(v));
    }

    /// Attach a boolean attribute.
    pub fn attr_bool(&mut self, key: &'static str, v: bool) {
        self.attr(key, AttrValue::Bool(v));
    }

    /// Attach a string attribute.
    pub fn attr_str(&mut self, key: &'static str, v: &str) {
        self.attr(key, AttrValue::Str(v.to_string()));
    }

    /// Whether this guard records anything (false for disabled tracers).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut active) = self.active.take() else { return };
        active.record.end_us = epoch_us();
        OPEN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards normally drop in LIFO order; be robust if not.
            if let Some(pos) = s
                .iter()
                .rposition(|&(tid, sid)| tid == active.tracer.tracer_id && sid == active.record.id)
            {
                s.remove(pos);
            }
        });
        active.tracer.finished.lock().expect("tracer lock").push(active.record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_attrs() {
        let t = Tracer::new();
        {
            let mut outer = t.span("outer");
            outer.attr_u64("n", 3);
            {
                let mut inner = t.span("inner");
                inner.attr_f64("x", 0.5);
                inner.attr_str("label", "hi");
            }
        }
        let spans = t.finished();
        assert_eq!(spans.len(), 2);
        // Inner finishes first.
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(outer.attr("n"), Some(&AttrValue::U64(3)));
        assert_eq!(inner.attr("x"), Some(&AttrValue::F64(0.5)));
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.end_us <= outer.end_us);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let mut g = t.span("x");
            g.attr_u64("k", 1);
            assert!(!g.is_recording());
        }
        assert!(t.finished().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let t = Tracer::new();
        {
            let _run = t.span("run");
            for _ in 0..3 {
                let _stage = t.span("stage");
            }
        }
        let spans = t.finished();
        let run_id = spans.iter().find(|s| s.name == "run").unwrap().id;
        let stages: Vec<_> = spans.iter().filter(|s| s.name == "stage").collect();
        assert_eq!(stages.len(), 3);
        assert!(stages.iter().all(|s| s.parent == Some(run_id)));
    }

    #[test]
    fn two_tracers_on_one_thread_do_not_cross_parent() {
        let a = Tracer::new();
        let b = Tracer::new();
        {
            let _ga = a.span("a-root");
            let _gb = b.span("b-root");
            let _ga2 = a.span("a-child");
        }
        let a_spans = a.finished();
        let b_spans = b.finished();
        let a_root = a_spans.iter().find(|s| s.name == "a-root").unwrap();
        let a_child = a_spans.iter().find(|s| s.name == "a-child").unwrap();
        // a-child's parent is a-root, not b's span.
        assert_eq!(a_child.parent, Some(a_root.id));
        assert_eq!(b_spans.len(), 1);
        assert_eq!(b_spans[0].parent, None);
    }

    #[test]
    fn tracer_is_thread_safe() {
        let t = Tracer::new();
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..50u64 {
                    let mut g = t.span("work");
                    g.attr_u64("thread", i);
                    g.attr_u64("j", j);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let spans = t.finished();
        assert_eq!(spans.len(), 200);
        // Ids are unique.
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
        // Spans opened at thread top level have no parent.
        assert!(spans.iter().all(|s| s.parent.is_none()));
    }

    #[test]
    fn drain_empties_the_tracer() {
        let t = Tracer::new();
        drop(t.span("x"));
        assert_eq!(t.take_finished().len(), 1);
        assert!(t.finished().is_empty());
    }

    #[test]
    fn batch_recorded_spans_get_unique_ids_and_keep_parents() {
        let t = Tracer::new();
        {
            let _run = t.span("run");
            let parent = t.current_span_id();
            assert!(parent.is_some());
            let now = t.now_us();
            t.record_batch(
                (0..3)
                    .map(|w| SynthSpan {
                        parent,
                        name: "wave",
                        start_us: now,
                        end_us: now,
                        attrs: vec![("wave", AttrValue::U64(w))],
                    })
                    .collect(),
            );
        }
        let spans = t.finished();
        let run_id = spans.iter().find(|s| s.name == "run").unwrap().id;
        let waves: Vec<_> = spans.iter().filter(|s| s.name == "wave").collect();
        assert_eq!(waves.len(), 3);
        assert!(waves.iter().all(|s| s.parent == Some(run_id)));
        // Batch ids never collide with guard ids.
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), spans.len());
        // Disabled tracers ignore batches; empty batches are fine.
        Tracer::disabled().record_batch(vec![]);
        assert_eq!(Tracer::disabled().current_span_id(), None);
        assert_eq!(Tracer::disabled().now_us(), 0);
        t.record_batch(vec![]);
    }

    #[test]
    fn timestamps_order_across_tracers_and_threads() {
        // A tracer created *later* must not reset the clock: spans recorded
        // after another tracer's spans carry larger timestamps even though
        // the second tracer is younger, and the same holds when the later
        // span runs on a different thread.
        let early = Tracer::new();
        drop(early.span("first"));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let late = Tracer::new();
        let first = &early.finished()[0];
        let second = std::thread::spawn(move || {
            drop(late.span("second"));
            late.finished()[0].clone()
        })
        .join()
        .unwrap();
        assert!(
            second.start_us >= first.end_us,
            "younger tracer's span ({} us) predates older tracer's finished span ({} us)",
            second.start_us,
            first.end_us,
        );
        // The nanosecond phase clock shares the same epoch.
        let us = epoch_us();
        let ns = epoch_ns();
        assert!(ns / 1000 >= us && ns / 1000 - us < 100_000, "epoch_ns and epoch_us diverge");
    }

    #[test]
    fn durations_are_monotone() {
        let t = Tracer::new();
        {
            let _g = t.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = &t.finished()[0];
        assert!(s.end_us >= s.start_us);
        assert!(s.duration_s() >= 0.001);
    }
}

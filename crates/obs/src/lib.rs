//! # lite-obs — observability for the LITE reproduction
//!
//! Three pieces, deliberately dependency-free so they can sit *below* the
//! simulator in the workspace graph and cost nothing when disabled:
//!
//! * [`span`] — a hierarchical span tracer. Thread-safe, monotonic-clock,
//!   nestable spans with key/value attributes. A disabled tracer's
//!   [`span::Tracer::span`] is a branch and nothing else, so call sites can
//!   stay unconditionally instrumented. High-volume spans sit behind a
//!   fine-detail level ([`span::Tracer::new_fine`]), the span analogue of
//!   DEBUG vs INFO logging.
//! * [`metrics`] — a registry of named counters, gauges and histograms.
//!   Counters and histograms are sharded across cache-line-padded atomics so
//!   concurrent increments from simulator threads do not contend.
//! * [`report`] — run manifests: phase wall-clock timings, free-form fields,
//!   tables (printed to stdout *and* captured, so the human table and the
//!   machine manifest cannot drift apart), notes and a metrics snapshot,
//!   serialized as one JSON object per line into `results/*.manifest.jsonl`.
//!
//! Two supporting modules: [`sketch`] holds the log-linear bucket layout
//! histograms use for few-percent-accurate quantiles, and [`export`]
//! renders snapshots as Prometheus text exposition and finished spans as
//! Chrome trace-event JSON (Perfetto-loadable).
//!
//! On top of those sits [`trace`] — request-scoped tail forensics: phase
//! spans keyed by a [`trace::TraceId`], recorded into lock-free per-thread
//! rings, attributed into per-phase histograms, and retained in full for
//! the slowest requests as [`trace::Exemplar`]s.
//!
//! The continuous-profiling and SLO plane completes the picture: [`prof`]
//! is a cooperative sampling profiler over seqlock-published per-thread
//! tag stacks (flamegraphs plus allocation attribution via an opt-in
//! `GlobalAlloc` wrapper), and [`slo`] turns cumulative histograms into
//! windowed rollups (true `rate()`, windowed p50–p999) with a
//! multi-window burn-rate evaluator over an error budget.
//!
//! ```
//! use lite_obs::span::Tracer;
//! use lite_obs::metrics::Registry;
//!
//! let tracer = Tracer::new();
//! let reg = Registry::new();
//! let tasks = reg.counter("sim.tasks_launched");
//! {
//!     let mut run = tracer.span("run");
//!     run.attr_u64("seed", 42);
//!     {
//!         let mut stage = tracer.span("stage");
//!         stage.attr_str("name", "shuffle");
//!         tasks.add(128);
//!     }
//! }
//! let spans = tracer.finished();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(tasks.value(), 128);
//! ```

pub mod export;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod report;
pub mod sketch;
pub mod slo;
pub mod span;
pub mod trace;

pub use export::{
    chrome_trace, chrome_trace_exemplars, prometheus_text, prometheus_text_with_exemplars,
    PromExemplar,
};
pub use json::{Json, JsonError};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramBatch, HistogramSummary, MetricsSnapshot, Registry,
};
pub use prof::{ProfReport, Profiler, TagAlloc, TagGuard, TagStat};
pub use report::Report;
pub use slo::{RollupRing, Slo, SloConfig, SloStatus, TimeBucket, WindowStats};
pub use span::{AttrValue, SpanGuard, SpanRecord, SynthSpan, Tracer};
pub use trace::{Exemplar, Phase, PhaseHistograms, PhaseSpan, TraceId, TraceSink};

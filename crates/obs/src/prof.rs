//! Cooperative sampling profiler over per-thread **tag stacks**.
//!
//! The serve plane's phase histograms (PR 6) say *which phase* of a request
//! was slow; this module says *where CPU time and allocations go inside a
//! phase*. The design mirrors the trace rings in [`crate::trace`]:
//!
//! - Each profiled thread owns a [`TagSlot`]: a fixed array of label frames
//!   published through a **seqlock** (odd sequence = mid-write). Entering a
//!   tag ([`Profiler::enter`]) is a handful of relaxed/release stores on the
//!   owning thread — no locks, no allocation after the first tag per thread.
//! - A background **sampler thread** periodically snapshots every thread's
//!   stack through the seqlock (retrying torn reads) and accumulates folded
//!   stack counts, from which it renders collapsed-stack (flamegraph
//!   "folded") output, an SVG flamegraph, and top-K self/total tables.
//! - An opt-in [`TagAlloc`] `GlobalAlloc` wrapper attributes allocation
//!   bytes/counts to the calling thread's current tag through a fixed table
//!   of atomics — it takes no locks and never allocates, so it cannot
//!   deadlock even when the sampler itself allocates, and a thread-local
//!   reentrancy guard makes nested bookkeeping a counted no-op.
//!
//! Tags are interned process-wide (content-keyed, pointer-cached per
//! thread), so ids are stable across profilers and the allocator table.
//! Guards must nest LIFO — the natural shape of RAII scopes.

use std::alloc::{GlobalAlloc, Layout};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::metrics::{Counter, Gauge, Registry};

/// Maximum published stack depth; deeper frames are counted as truncated
/// and attributed to their deepest published ancestor.
pub const MAX_DEPTH: usize = 16;

/// Tag ids at or above this are folded into the "untagged" allocator row
/// (the sampler still sees them; only the fixed alloc table is bounded).
pub const MAX_ALLOC_TAGS: usize = 256;

// ---------------------------------------------------------------------------
// Process-wide tag interning

/// Content-keyed intern table; index 0 is reserved for "untagged".
static TAG_TABLE: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

thread_local! {
    /// Per-thread pointer-keyed cache of interned ids (tags are `'static`
    /// literals, so the pointer is a stable fast key; content collisions
    /// across crates still unify because the slow path compares content).
    static TAG_CACHE: RefCell<Vec<(usize, u16)>> = const { RefCell::new(Vec::new()) };
    /// Innermost tag id on this thread (0 = untagged); what [`TagAlloc`]
    /// attributes allocations to.
    static CURRENT_TAG: Cell<u16> = const { Cell::new(0) };
    /// Reentrancy guard for allocator bookkeeping.
    static IN_ALLOC_HOOK: Cell<bool> = const { Cell::new(false) };
}

/// Intern a tag, returning its process-wide id.
fn intern(tag: &'static str) -> u16 {
    let key = tag.as_ptr() as usize;
    let cached = TAG_CACHE.with(|c| c.borrow().iter().find(|(p, _)| *p == key).map(|&(_, id)| id));
    if let Some(id) = cached {
        return id;
    }
    let mut table = TAG_TABLE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if table.is_empty() {
        table.push("untagged");
    }
    let id = match table.iter().position(|t| *t == tag) {
        Some(i) => i as u16,
        None => {
            assert!(table.len() < u16::MAX as usize, "tag intern table overflow");
            table.push(tag);
            (table.len() - 1) as u16
        }
    };
    drop(table);
    TAG_CACHE.with(|c| c.borrow_mut().push((key, id)));
    id
}

/// Snapshot of the intern table (index = tag id). Index 0 is "untagged"
/// once any tag has been interned.
pub fn tag_names() -> Vec<&'static str> {
    TAG_TABLE.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

fn tag_name(names: &[&'static str], id: u16) -> &'static str {
    names.get(id as usize).copied().unwrap_or("?")
}

// ---------------------------------------------------------------------------
// Per-thread tag slots (seqlock-published, same idiom as trace::Ring)

/// One thread's published tag stack. The owning thread is the only writer;
/// the sampler reads through the seqlock and discards torn snapshots.
struct TagSlot {
    /// Seqlock: odd while the owner is mid-update.
    seq: AtomicU64,
    /// Published depth (≤ [`MAX_DEPTH`]).
    depth: AtomicU64,
    /// Logical depth including truncated frames (owner-written, relaxed).
    logical: AtomicU64,
    /// Published frames, innermost last; each word is a tag id.
    frames: [AtomicU64; MAX_DEPTH],
}

impl TagSlot {
    fn new() -> TagSlot {
        TagSlot {
            seq: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            logical: AtomicU64::new(0),
            frames: [const { AtomicU64::new(0) }; MAX_DEPTH],
        }
    }

    /// Owner-side push. Seqlock write protocol (see `trace::Ring::push`):
    /// odd seq → payload → even seq, Release on both seq stores so a reader
    /// that observes the even value observes the payload.
    fn push(&self, id: u16) {
        let logical = self.logical.load(Ordering::Relaxed);
        if (logical as usize) < MAX_DEPTH {
            let s = self.seq.load(Ordering::Relaxed);
            self.seq.store(s.wrapping_add(1), Ordering::Release);
            self.frames[logical as usize].store(u64::from(id), Ordering::Relaxed);
            self.depth.store(logical + 1, Ordering::Relaxed);
            self.seq.store(s.wrapping_add(2), Ordering::Release);
        } else {
            TRUNCATED_FRAMES.fetch_add(1, Ordering::Relaxed);
        }
        self.logical.store(logical + 1, Ordering::Relaxed);
    }

    /// Owner-side pop. Returns true if the popped frame had been published
    /// (false = it was a truncated overflow frame).
    fn pop(&self) -> bool {
        let logical = self.logical.load(Ordering::Relaxed);
        debug_assert!(logical > 0, "tag stack underflow");
        let published = logical as usize <= MAX_DEPTH;
        if published {
            let s = self.seq.load(Ordering::Relaxed);
            self.seq.store(s.wrapping_add(1), Ordering::Release);
            self.depth.store(logical - 1, Ordering::Relaxed);
            self.seq.store(s.wrapping_add(2), Ordering::Release);
        }
        self.logical.store(logical.saturating_sub(1), Ordering::Relaxed);
        published
    }

    /// Sampler-side snapshot into `out`. `Ok(())` on a consistent read
    /// (possibly empty), `Err(())` after exhausting retries on torn reads.
    fn read_into(&self, out: &mut Vec<u16>) -> Result<(), ()> {
        for _ in 0..4 {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let depth = (self.depth.load(Ordering::Relaxed) as usize).min(MAX_DEPTH);
            out.clear();
            for frame in &self.frames[..depth] {
                out.push(frame.load(Ordering::Relaxed) as u16);
            }
            if self.seq.load(Ordering::Acquire) == s1 {
                return Ok(());
            }
        }
        Err(())
    }
}

thread_local! {
    /// (profiler id, this thread's slot) pairs, mirroring `THREAD_RINGS`
    /// in `trace.rs`: the slot is created lazily on first `enter` and
    /// registered with the profiler's slot list.
    static THREAD_SLOTS: RefCell<Vec<(usize, Arc<TagSlot>)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_PROFILER_ID: AtomicU64 = AtomicU64::new(1);

// ---------------------------------------------------------------------------
// Profiler

struct ProfMetrics {
    samples: Counter,
    torn: Counter,
    truncated: Gauge,
    threads: Gauge,
    stacks: Gauge,
    alloc_bytes: Gauge,
    allocs: Gauge,
}

struct ProfInner {
    id: usize,
    interval: Duration,
    slots: Mutex<Vec<Arc<TagSlot>>>,
    /// Folded stack → sample count, accumulated by the sampler.
    stacks: Mutex<BTreeMap<Vec<u16>, u64>>,
    samples: AtomicU64,
    sweeps: AtomicU64,
    torn: AtomicU64,
    stop: AtomicBool,
    sampler: Mutex<Option<std::thread::JoinHandle<()>>>,
    metrics: OnceLock<ProfMetrics>,
}

/// Handle to a sampling profiler. Cheap to clone; a disabled profiler's
/// guards are inert (one branch on the enter path).
#[derive(Clone)]
pub struct Profiler {
    inner: Option<Arc<ProfInner>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Profiler")
                .field("id", &inner.id)
                .field("interval", &inner.interval)
                .finish_non_exhaustive(),
            None => f.write_str("Profiler(disabled)"),
        }
    }
}

/// RAII frame on the calling thread's tag stack; pops on drop. Guards must
/// be dropped in LIFO order (the natural shape of nested scopes).
pub struct TagGuard {
    slot: Option<Arc<TagSlot>>,
    prev_tag: u16,
}

impl Drop for TagGuard {
    fn drop(&mut self) {
        if let Some(slot) = &self.slot {
            slot.pop();
            CURRENT_TAG.with(|c| c.set(self.prev_tag));
        }
    }
}

/// One tag's aggregate standing in the sampled profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagStat {
    pub tag: String,
    /// Samples where this tag was the innermost frame.
    pub self_samples: u64,
    /// Samples where this tag appeared anywhere on the stack.
    pub total_samples: u64,
}

/// Profile summary for reports and the `profile` admin op.
#[derive(Clone, Debug)]
pub struct ProfReport {
    /// Non-empty stack snapshots accumulated.
    pub samples: u64,
    /// Sampler passes over all registered threads.
    pub sweeps: u64,
    /// Snapshots abandoned after repeated torn seqlock reads.
    pub torn: u64,
    /// Frames pushed beyond [`MAX_DEPTH`] (attributed to their ancestor).
    pub truncated: u64,
    /// Threads that have registered a tag slot.
    pub threads: usize,
    /// Distinct folded stacks observed.
    pub distinct_stacks: usize,
    /// Per-tag self/total table, descending by self then total samples.
    pub top: Vec<TagStat>,
}

impl Profiler {
    /// An enabled profiler sampling every `interval` once started.
    pub fn new(interval: Duration) -> Profiler {
        Profiler {
            inner: Some(Arc::new(ProfInner {
                id: NEXT_PROFILER_ID.fetch_add(1, Ordering::Relaxed) as usize,
                interval,
                slots: Mutex::new(Vec::new()),
                stacks: Mutex::new(BTreeMap::new()),
                samples: AtomicU64::new(0),
                sweeps: AtomicU64::new(0),
                torn: AtomicU64::new(0),
                stop: AtomicBool::new(false),
                sampler: Mutex::new(None),
                metrics: OnceLock::new(),
            })),
        }
    }

    /// A disabled profiler: `enter` returns inert guards, sampling is a
    /// no-op. This is the zero-overhead default for production paths.
    pub fn disabled() -> Profiler {
        Profiler { inner: None }
    }

    /// Whether tag frames are being published.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register `obs.prof.*` metrics in `registry`; the sampler refreshes
    /// them once per sweep. Idempotent (first registry wins).
    pub fn attach_metrics(&self, registry: &Registry) {
        if let Some(inner) = &self.inner {
            let _ = inner.metrics.set(ProfMetrics {
                samples: registry.counter("obs.prof.samples"),
                torn: registry.counter("obs.prof.torn"),
                truncated: registry.gauge("obs.prof.truncated"),
                threads: registry.gauge("obs.prof.threads"),
                stacks: registry.gauge("obs.prof.stacks"),
                alloc_bytes: registry.gauge("obs.prof.alloc_bytes"),
                allocs: registry.gauge("obs.prof.allocs"),
            });
        }
    }

    /// Push a label frame on the calling thread's tag stack.
    #[inline]
    pub fn enter(&self, tag: &'static str) -> TagGuard {
        let Some(inner) = &self.inner else {
            return TagGuard { slot: None, prev_tag: 0 };
        };
        let id = intern(tag);
        let slot = self.thread_slot(inner);
        slot.push(id);
        let prev_tag = CURRENT_TAG.with(|c| {
            let prev = c.get();
            c.set(id);
            prev
        });
        TagGuard { slot: Some(slot), prev_tag }
    }

    /// This thread's slot for this profiler, created and registered on
    /// first use (one lock acquisition per thread lifetime).
    fn thread_slot(&self, inner: &Arc<ProfInner>) -> Arc<TagSlot> {
        THREAD_SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            if let Some((_, slot)) = slots.iter().find(|(id, _)| *id == inner.id) {
                return Arc::clone(slot);
            }
            let slot = Arc::new(TagSlot::new());
            inner
                .slots
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(Arc::clone(&slot));
            slots.push((inner.id, Arc::clone(&slot)));
            slot
        })
    }

    /// One sampling sweep over every registered thread. The sampler thread
    /// calls this on its cadence; tests can drive it manually.
    pub fn sample_once(&self) {
        let Some(inner) = &self.inner else { return };
        let slots: Vec<Arc<TagSlot>> =
            inner.slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        let mut stack = Vec::with_capacity(MAX_DEPTH);
        let mut sampled = 0u64;
        let mut torn = 0u64;
        {
            let mut stacks = inner.stacks.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for slot in &slots {
                match slot.read_into(&mut stack) {
                    Ok(()) if stack.is_empty() => {}
                    Ok(()) => {
                        *stacks.entry(stack.clone()).or_insert(0) += 1;
                        sampled += 1;
                    }
                    Err(()) => torn += 1,
                }
            }
        }
        inner.samples.fetch_add(sampled, Ordering::Relaxed);
        inner.sweeps.fetch_add(1, Ordering::Relaxed);
        inner.torn.fetch_add(torn, Ordering::Relaxed);
        if let Some(m) = inner.metrics.get() {
            m.samples.add(sampled);
            m.torn.add(torn);
            m.truncated.set(truncated_frames() as f64);
            m.threads.set(slots.len() as f64);
            m.stacks
                .set(inner.stacks.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
                    as f64);
            let (bytes, count) = alloc_totals();
            m.alloc_bytes.set(bytes as f64);
            m.allocs.set(count as f64);
        }
    }

    /// Spawn the sampler thread. Idempotent; no-op when disabled.
    pub fn start(&self) {
        let Some(inner) = &self.inner else { return };
        let mut sampler = inner.sampler.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if sampler.is_some() {
            return;
        }
        inner.stop.store(false, Ordering::Release);
        let prof = self.clone();
        let interval = inner.interval;
        let stop = Arc::clone(inner);
        *sampler = Some(
            std::thread::Builder::new()
                .name("obs-prof".into())
                .spawn(move || {
                    while !stop.stop.load(Ordering::Acquire) {
                        prof.sample_once();
                        std::thread::park_timeout(interval);
                    }
                })
                // gate: allow(expect) — thread spawn failing at startup is fatal
                .expect("spawn obs-prof sampler"),
        );
    }

    /// Stop and join the sampler thread. Idempotent.
    pub fn stop(&self) {
        let Some(inner) = &self.inner else { return };
        let handle = {
            let mut sampler =
                inner.sampler.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            inner.stop.store(true, Ordering::Release);
            sampler.take()
        };
        if let Some(handle) = handle {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }

    /// Profile summary with the `k` hottest tags by self samples.
    pub fn report(&self, k: usize) -> ProfReport {
        let Some(inner) = &self.inner else {
            return ProfReport {
                samples: 0,
                sweeps: 0,
                torn: 0,
                truncated: 0,
                threads: 0,
                distinct_stacks: 0,
                top: Vec::new(),
            };
        };
        let stacks = inner.stacks.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let names = tag_names();
        let mut per_tag: BTreeMap<u16, (u64, u64)> = BTreeMap::new();
        for (stack, &count) in stacks.iter() {
            if let Some(&leaf) = stack.last() {
                per_tag.entry(leaf).or_insert((0, 0)).0 += count;
            }
            let mut seen = [false; MAX_DEPTH];
            for (i, &id) in stack.iter().enumerate() {
                if stack[..i].contains(&id) {
                    seen[i] = true; // duplicate of an outer frame: count once
                }
            }
            for (i, &id) in stack.iter().enumerate() {
                if !seen[i] {
                    per_tag.entry(id).or_insert((0, 0)).1 += count;
                }
            }
        }
        let mut top: Vec<TagStat> = per_tag
            .into_iter()
            .map(|(id, (self_samples, total_samples))| TagStat {
                tag: tag_name(&names, id).to_string(),
                self_samples,
                total_samples,
            })
            .collect();
        top.sort_by(|a, b| {
            (b.self_samples, b.total_samples, &a.tag).cmp(&(
                a.self_samples,
                a.total_samples,
                &b.tag,
            ))
        });
        top.truncate(k);
        ProfReport {
            samples: inner.samples.load(Ordering::Relaxed),
            sweeps: inner.sweeps.load(Ordering::Relaxed),
            torn: inner.torn.load(Ordering::Relaxed),
            truncated: truncated_frames(),
            threads: inner.slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len(),
            distinct_stacks: stacks.len(),
            top,
        }
    }

    /// Collapsed-stack ("folded") output: one `tag;tag;tag count` line per
    /// distinct stack — the input format flamegraph tooling consumes.
    pub fn folded(&self) -> String {
        let Some(inner) = &self.inner else { return String::new() };
        let stacks = inner.stacks.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let names = tag_names();
        let mut out = String::new();
        for (stack, count) in stacks.iter() {
            for (i, &id) in stack.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                out.push_str(tag_name(&names, id));
            }
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Self-contained SVG flamegraph of the sampled stacks (deterministic:
    /// sibling frames ordered by name, colors hashed from names).
    pub fn flame_svg(&self, title: &str) -> String {
        let Some(inner) = &self.inner else { return String::new() };
        let stacks = inner.stacks.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let names = tag_names();
        let mut root = FlameNode::default();
        for (stack, &count) in stacks.iter() {
            root.total += count;
            let mut node = &mut root;
            for &id in stack {
                node = node.children.entry(tag_name(&names, id).to_string()).or_default();
                node.total += count;
            }
        }
        render_flame_svg(title, &root)
    }
}

// ---------------------------------------------------------------------------
// SVG flamegraph rendering

#[derive(Default)]
struct FlameNode {
    total: u64,
    children: BTreeMap<String, FlameNode>,
}

fn flame_depth(node: &FlameNode) -> usize {
    1 + node.children.values().map(flame_depth).max().unwrap_or(0)
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Deterministic warm color from a tag name (FNV-1a hash).
fn flame_color(name: &str) -> String {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let r = 205 + (h % 50) as u8;
    let g = 80 + ((h >> 8) % 120) as u8;
    let b = ((h >> 16) % 55) as u8;
    format!("rgb({r},{g},{b})")
}

fn render_flame_svg(title: &str, root: &FlameNode) -> String {
    const WIDTH: f64 = 1200.0;
    const BAR_H: f64 = 17.0;
    const PAD: f64 = 24.0;
    let depth = flame_depth(root);
    let height = PAD + BAR_H * depth as f64 + 8.0;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
         font-family=\"monospace\" font-size=\"11\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#f8f8f8\"/>\n\
         <text x=\"8\" y=\"16\">{} — {} samples</text>\n",
        xml_escape(title),
        root.total
    );
    // Root row spans the full width; children stack upward from the bottom.
    fn emit(
        svg: &mut String,
        name: &str,
        node: &FlameNode,
        x: f64,
        y: f64,
        width: f64,
        root_total: u64,
    ) {
        if width < 0.5 {
            return;
        }
        let pct = 100.0 * node.total as f64 / root_total.max(1) as f64;
        let label = if width > 40.0 { xml_escape(name) } else { String::new() };
        svg.push_str(&format!(
            "<g><title>{} ({} samples, {:.1}%)</title>\
             <rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"16\" fill=\"{}\" \
             stroke=\"#f8f8f8\"/>\
             <text x=\"{:.2}\" y=\"{:.2}\" clip-path=\"none\">{}</text></g>\n",
            xml_escape(name),
            node.total,
            pct,
            x,
            y,
            width,
            flame_color(name),
            x + 3.0,
            y + 12.0,
            label
        ));
        let mut cx = x;
        for (child_name, child) in &node.children {
            let cw = width * child.total as f64 / node.total.max(1) as f64;
            emit(svg, child_name, child, cx, y - BAR_H, cw, root_total);
            cx += cw;
        }
    }
    let base_y = height - BAR_H - 4.0;
    emit(&mut svg, "all", root, 0.0, base_y, WIDTH, root.total.max(1));
    svg.push_str("</svg>\n");
    svg
}

// ---------------------------------------------------------------------------
// Allocation attribution (opt-in GlobalAlloc wrapper)

/// Fixed per-tag allocation counters: no locks, no allocation, safe to hit
/// from inside the global allocator.
struct AllocTable {
    bytes: [AtomicU64; MAX_ALLOC_TAGS],
    counts: [AtomicU64; MAX_ALLOC_TAGS],
    reentrant: AtomicU64,
}

static ALLOC_TABLE: AllocTable = AllocTable {
    bytes: [const { AtomicU64::new(0) }; MAX_ALLOC_TAGS],
    counts: [const { AtomicU64::new(0) }; MAX_ALLOC_TAGS],
    reentrant: AtomicU64::new(0),
};

static TRUNCATED_FRAMES: AtomicU64 = AtomicU64::new(0);

/// Frames pushed beyond [`MAX_DEPTH`] process-wide.
pub fn truncated_frames() -> u64 {
    TRUNCATED_FRAMES.load(Ordering::Relaxed)
}

/// Attribute one allocation of `bytes` to the calling thread's current
/// tag. Returns `false` when skipped by the reentrancy guard (the skip is
/// counted, never double-booked). Lock-free and allocation-free.
#[inline]
pub fn note_alloc(bytes: usize) -> bool {
    IN_ALLOC_HOOK.with(|flag| {
        if flag.get() {
            ALLOC_TABLE.reentrant.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        flag.set(true);
        let tag = CURRENT_TAG.with(Cell::get) as usize;
        let row = if tag < MAX_ALLOC_TAGS { tag } else { 0 };
        ALLOC_TABLE.bytes[row].fetch_add(bytes as u64, Ordering::Relaxed);
        ALLOC_TABLE.counts[row].fetch_add(1, Ordering::Relaxed);
        flag.set(false);
        true
    })
}

/// Simulate an allocation arriving while the hook is already on the
/// stack — the reentrancy case the guard must turn into a counted no-op.
/// Test-support; returns what [`note_alloc`] returned.
#[doc(hidden)]
pub fn note_alloc_reentrant(bytes: usize) -> bool {
    IN_ALLOC_HOOK.with(|flag| {
        flag.set(true);
        let attributed = note_alloc(bytes);
        flag.set(false);
        attributed
    })
}

/// Allocations skipped by the reentrancy guard.
pub fn reentrant_allocs() -> u64 {
    ALLOC_TABLE.reentrant.load(Ordering::Relaxed)
}

/// `(bytes, count)` attributed to one tag id so far.
pub fn alloc_stats(tag_id: u16) -> (u64, u64) {
    let row = (tag_id as usize).min(MAX_ALLOC_TAGS - 1);
    (
        ALLOC_TABLE.bytes[row].load(Ordering::Relaxed),
        ALLOC_TABLE.counts[row].load(Ordering::Relaxed),
    )
}

/// `(bytes, count)` attributed to a tag by name (0 if never interned).
pub fn alloc_stats_named(tag: &str) -> (u64, u64) {
    let names = tag_names();
    match names.iter().position(|t| *t == tag) {
        Some(id) => alloc_stats(id as u16),
        None => (0, 0),
    }
}

/// Process-wide `(bytes, count)` totals across all tags.
pub fn alloc_totals() -> (u64, u64) {
    let mut bytes = 0u64;
    let mut count = 0u64;
    for i in 0..MAX_ALLOC_TAGS {
        bytes += ALLOC_TABLE.bytes[i].load(Ordering::Relaxed);
        count += ALLOC_TABLE.counts[i].load(Ordering::Relaxed);
    }
    (bytes, count)
}

/// Per-tag allocation table: `(tag, bytes, count)` for every non-zero row,
/// descending by bytes.
pub fn alloc_table() -> Vec<(String, u64, u64)> {
    let names = tag_names();
    let mut rows = Vec::new();
    for i in 0..MAX_ALLOC_TAGS {
        let bytes = ALLOC_TABLE.bytes[i].load(Ordering::Relaxed);
        let count = ALLOC_TABLE.counts[i].load(Ordering::Relaxed);
        if bytes > 0 || count > 0 {
            rows.push((tag_name(&names, i as u16).to_string(), bytes, count));
        }
    }
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

/// Opt-in `GlobalAlloc` wrapper attributing allocations to the calling
/// thread's current tag. Install per binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: lite_obs::prof::TagAlloc<std::alloc::System> =
///     lite_obs::prof::TagAlloc::new(std::alloc::System);
/// ```
pub struct TagAlloc<A> {
    inner: A,
}

impl<A> TagAlloc<A> {
    pub const fn new(inner: A) -> TagAlloc<A> {
        TagAlloc { inner }
    }
}

// SAFETY: delegates every allocation verbatim to the wrapped allocator;
// the bookkeeping side channel is lock-free, allocation-free, and guarded
// against reentrancy, so it upholds GlobalAlloc's reentrancy contract.
unsafe impl<A: GlobalAlloc> GlobalAlloc for TagAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = self.inner.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.inner.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = self.inner.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = self.inner.realloc(ptr, layout, new_size);
        if !p.is_null() && new_size > layout.size() {
            note_alloc(new_size - layout.size());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_content_keyed_and_stable() {
        let a = intern("prof.test.alpha");
        let b = intern("prof.test.beta");
        assert_ne!(a, b);
        assert_eq!(intern("prof.test.alpha"), a);
        let names = tag_names();
        assert_eq!(tag_name(&names, a), "prof.test.alpha");
        assert_eq!(names[0], "untagged");
    }

    #[test]
    fn enter_publishes_and_pop_restores() {
        let prof = Profiler::new(Duration::from_millis(1));
        {
            let _a = prof.enter("prof.test.outer");
            {
                let _b = prof.enter("prof.test.inner");
                prof.sample_once();
            }
            prof.sample_once();
        }
        prof.sample_once(); // empty stack: not sampled
        let report = prof.report(10);
        assert_eq!(report.samples, 2);
        assert_eq!(report.sweeps, 3);
        assert_eq!(report.distinct_stacks, 2);
        let folded = prof.folded();
        assert!(folded.contains("prof.test.outer;prof.test.inner 1"), "{folded}");
        assert!(folded.contains("prof.test.outer 1"), "{folded}");
        let inner =
            report.top.iter().find(|t| t.tag == "prof.test.inner").expect("inner tag present");
        assert_eq!((inner.self_samples, inner.total_samples), (1, 1));
        let outer =
            report.top.iter().find(|t| t.tag == "prof.test.outer").expect("outer tag present");
        assert_eq!((outer.self_samples, outer.total_samples), (1, 2));
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let prof = Profiler::disabled();
        let _g = prof.enter("prof.test.disabled");
        prof.sample_once();
        assert_eq!(prof.report(4).samples, 0);
        assert!(prof.folded().is_empty());
        assert!(!prof.is_enabled());
    }

    #[test]
    fn depth_overflow_truncates_without_corruption() {
        let prof = Profiler::new(Duration::from_millis(1));
        let before = truncated_frames();
        let mut guards = Vec::new();
        for _ in 0..MAX_DEPTH + 3 {
            guards.push(prof.enter("prof.test.deep"));
        }
        prof.sample_once();
        assert!(truncated_frames() >= before + 3, "3 frames pushed past MAX_DEPTH");
        drop(guards);
        {
            let _g = prof.enter("prof.test.after_overflow");
            prof.sample_once();
        }
        let folded = prof.folded();
        assert!(folded.contains("prof.test.after_overflow 1"), "{folded}");
    }

    #[test]
    fn sampler_thread_sees_concurrent_stacks() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let prof = Profiler::new(Duration::from_micros(200));
        prof.start();
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let p = prof.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                let _outer = p.enter("prof.test.thread");
                while !done.load(Ordering::Relaxed) {
                    let _inner = p.enter("prof.test.spin");
                    std::hint::black_box(0u64);
                }
            }));
        }
        // Workers spin until the sampler has provably seen all three of
        // them — a fixed spin window flakes when the host is loaded and
        // the sampler thread is starved past it.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let observed = loop {
            let report = prof.report(8);
            if report.samples > 0
                && report.threads >= 3
                && report.top.iter().any(|t| t.tag == "prof.test.spin")
            {
                break report;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sampler never saw all 3 spinning threads: {report:?}"
            );
            std::thread::sleep(Duration::from_millis(1));
        };
        done.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("worker join");
        }
        prof.stop();
        prof.stop(); // idempotent
        let report = prof.report(8);
        assert!(report.samples >= observed.samples);
        assert!(report.threads >= 3);
        assert!(report.top.iter().any(|t| t.tag == "prof.test.spin"), "{report:?}");
    }

    #[test]
    fn alloc_attribution_tracks_current_tag() {
        let prof = Profiler::new(Duration::from_millis(1));
        let (b0, c0) = alloc_stats_named("prof.test.allocsite");
        {
            let _g = prof.enter("prof.test.allocsite");
            assert!(note_alloc(1000));
            assert!(note_alloc(24));
        }
        assert!(note_alloc(7)); // untagged now
        let (b1, c1) = alloc_stats_named("prof.test.allocsite");
        assert_eq!(b1 - b0, 1024);
        assert_eq!(c1 - c0, 2);
        let table = alloc_table();
        assert!(table.iter().any(|(t, b, _)| t == "prof.test.allocsite" && *b >= 1024));
    }

    #[test]
    fn reentrant_allocs_are_skipped_not_double_counted() {
        let prof = Profiler::new(Duration::from_millis(1));
        let _g = prof.enter("prof.test.reentrant");
        let skips0 = reentrant_allocs();
        let (b0, c0) = alloc_stats_named("prof.test.reentrant");
        assert!(!note_alloc_reentrant(512));
        assert_eq!(reentrant_allocs(), skips0 + 1);
        let (b1, c1) = alloc_stats_named("prof.test.reentrant");
        assert_eq!((b1, c1), (b0, c0));
    }

    #[test]
    fn flame_svg_is_well_formed() {
        let prof = Profiler::new(Duration::from_millis(1));
        {
            let _a = prof.enter("prof.test.svg_outer");
            let _b = prof.enter("prof.test.svg<inner>");
            prof.sample_once();
        }
        let svg = prof.flame_svg("test & profile");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("test &amp; profile"));
        assert!(svg.contains("prof.test.svg&lt;inner&gt;"));
        assert_eq!(svg.matches("<svg").count(), 1);
    }
}

//! Property tests for the analyzer front end.
//!
//! Two invariants the rest of the crate leans on:
//!
//! 1. the lexer never panics, on *any* input (documented on [`lex`]);
//! 2. the pretty-printer is a right inverse of the parser on the
//!    generated subset: `parse(pretty(p))` equals `p` up to spans.
//!
//! The AST generator is seed-driven (xorshift over a `u64` from proptest)
//! rather than a strategy tree: it emits only shapes whose printed form is
//! unambiguous under the grammar (e.g. `Apply` callees are bare idents,
//! since `recv.name(args)` reparses as `Method`; lambdas appear only in
//! argument position, where the corpus puts them).

use lite_analyze::ast::{Arg, Expr, Pat, Program, Stmt};
use lite_analyze::lex::{lex, Span};
use lite_analyze::parse::parse;
use proptest::prelude::*;

/// Deterministic seed-driven source of choices (xorshift64*).
struct Gen {
    s: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        // Avoid the xorshift fixed point at zero.
        Gen { s: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.s = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn ident(&mut self) -> String {
        const VOCAB: [&str; 10] = ["x", "y", "data", "acc", "foo", "bar", "tmp", "k", "v", "part"];
        VOCAB[self.pick(VOCAB.len())].to_string()
    }

    fn method_name(&mut self) -> String {
        const NAMES: [&str; 6] = ["map", "filter", "plus", "get", "combine", "select"];
        NAMES[self.pick(NAMES.len())].to_string()
    }

    fn num(&mut self) -> Expr {
        const NUMS: [&str; 6] = ["0", "1", "2", "10", "42", "0.5"];
        Expr::Num(NUMS[self.pick(NUMS.len())].to_string(), Span::default())
    }

    fn string(&mut self) -> Expr {
        const STRS: [&str; 5] = ["", "a", "ab c", "path.txt", "x1"];
        Expr::Str(STRS[self.pick(STRS.len())].to_string(), Span::default())
    }

    fn atom(&mut self) -> Expr {
        match self.pick(3) {
            0 => Expr::Ident(self.ident(), Span::default()),
            1 => self.num(),
            _ => self.string(),
        }
    }

    /// Arguments for a call; lambdas are legal only here (argument
    /// position), matching where the workload corpus places them.
    fn args(&mut self, depth: u32) -> Vec<Arg> {
        let n = 1 + self.pick(2);
        (0..n)
            .map(|_| {
                let value = if depth > 0 && self.pick(4) == 0 {
                    Expr::Lambda {
                        params: vec![Pat::Ident(self.ident())],
                        body: Box::new(self.expr(depth - 1)),
                        span: Span::default(),
                    }
                } else {
                    self.expr(depth.saturating_sub(1))
                };
                Arg { name: None, value }
            })
            .collect()
    }

    /// A postfix-chain receiver: an ident optionally extended with field
    /// selections and paren method calls (always unambiguous to reprint).
    fn receiver(&mut self, depth: u32) -> Expr {
        let mut e = Expr::Ident(self.ident(), Span::default());
        for _ in 0..self.pick(depth as usize + 1) {
            e = if self.pick(2) == 0 {
                Expr::Field { recv: Box::new(e), name: self.method_name(), span: Span::default() }
            } else {
                Expr::Method {
                    recv: Box::new(e),
                    name: self.method_name(),
                    args: self.args(depth.saturating_sub(1)),
                    brace: false,
                    span: Span::default(),
                }
            };
        }
        e
    }

    fn expr(&mut self, depth: u32) -> Expr {
        if depth == 0 {
            return self.atom();
        }
        match self.pick(7) {
            0 | 1 => self.atom(),
            2 => {
                const OPS: [&str; 8] = ["+", "-", "*", "/", "==", "!=", "<", "&&"];
                Expr::Binary {
                    op: OPS[self.pick(OPS.len())].to_string(),
                    lhs: Box::new(self.expr(depth - 1)),
                    rhs: Box::new(self.expr(depth - 1)),
                    span: Span::default(),
                }
            }
            3 => self.receiver(depth),
            4 => Expr::Tuple(
                (0..2 + self.pick(2)).map(|_| self.expr(depth - 1)).collect(),
                Span::default(),
            ),
            // `f(args)` with a bare-ident callee: any dotted callee would
            // print as `recv.name(args)` and reparse as Method.
            5 => Expr::Apply {
                f: Box::new(Expr::Ident(self.ident(), Span::default())),
                args: self.args(depth - 1),
                span: Span::default(),
            },
            _ => Expr::Method {
                recv: Box::new(self.receiver(depth - 1)),
                name: self.method_name(),
                args: self.args(depth - 1),
                brace: false,
                span: Span::default(),
            },
        }
    }

    fn program(&mut self) -> Program {
        let n = 1 + self.pick(4);
        let stmts = (0..n)
            .map(|_| Stmt::Val {
                pat: Pat::Ident(self.ident()),
                value: self.expr(3),
                span: Span::default(),
            })
            .collect();
        Program { stmts }
    }
}

// `parse(pretty(p))` reproduces `p` exactly, up to spans; the lexer is
// total and its spans always slice the input on char boundaries.
proptest! {
    #[test]
    fn generated_asts_round_trip_through_pretty_print(seed in any::<u64>()) {
        let original = Gen::new(seed).program();
        let source = original.pretty();
        let mut reparsed = parse(&source)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n{source}"));
        reparsed.zero_spans();
        prop_assert_eq!(reparsed, original, "diverged on:\n{}", source);
    }

    #[test]
    fn lexer_total_on_arbitrary_input(src in ".*") {
        for t in lex(&src) {
            prop_assert!(t.span.start <= t.span.end && t.span.end <= src.len());
            prop_assert!(src.is_char_boundary(t.span.start));
            prop_assert!(src.is_char_boundary(t.span.end));
        }
        // Parsing may fail, but must fail by returning Err, not panicking.
        let _ = parse(&src);
    }
}

/// Deterministic fuzz over the characters that historically broke the
/// ad-hoc scanner: quotes, escapes, comment slashes, newlines, multi-byte
/// unicode. Complements the proptest string strategy, whose alphabet is
/// tamer.
#[test]
fn lexer_total_on_nasty_alphabet() {
    const ALPHABET: [char; 14] =
        ['"', '\\', '/', '\n', 's', '(', ')', '{', '}', '\'', '.', '=', '>', 'λ'];
    let mut g = Gen::new(0x5eed);
    for _ in 0..500 {
        let len = g.pick(24);
        let src: String = (0..len).map(|_| ALPHABET[g.pick(ALPHABET.len())]).collect();
        for t in lex(&src) {
            assert!(t.span.end <= src.len(), "span out of bounds on {src:?}");
        }
        let _ = parse(&src);
    }
}

//! Property tests for the auto-fix engine and incremental re-analysis.
//!
//! The generator here is the violation-seeding sibling of the one in
//! `ast_props.rs`: the same xorshift64* seed-driven style, but instead of
//! arbitrary printable ASTs it emits *realistic Spark pipelines* — one
//! prelude plus independent chain groups, each group either clean or
//! seeded with exactly one lint violation (all five rules covered, plus
//! the two-pass cache cascade). Over that corpus:
//!
//! 1. **Convergence** — `apply_fixes` reaches its fixpoint in ≤ 2
//!    applying passes (the cascade group needs exactly 2), and the fixed
//!    output is itself a fixpoint (re-running applies nothing).
//! 2. **Soundness** — every individually applied fix yields output that
//!    re-parses, and strictly shrinks the diagnostic count of the rule it
//!    claims to fix; unfixable rules (`redundant-shuffle`,
//!    `collect-unreduced`) survive fixing byte-for-byte in count.
//! 3. **Edit stability** — pretty-print → parse round-trips after fixes,
//!    and `DocAnalyzer` equals a from-scratch parse (spans included)
//!    across random single-edit sequences, reparsing at most the edited
//!    chunk.

use lite_analyze::dataflow::analyze;
use lite_analyze::fix::{apply_fix, apply_fixes, plan_fixes};
use lite_analyze::lint::{
    self, COLLECT_UNREDUCED, PARTITIONER_LOSS, REDUNDANT_SHUFFLE, SINGLE_USE_CACHE, SYNTAX_ERROR,
    UNCACHED_REUSE,
};
use lite_analyze::parse::parse;
use lite_analyze::DocAnalyzer;
use proptest::prelude::*;

/// Deterministic seed-driven source of choices (xorshift64*).
struct Gen {
    s: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen { s: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.s = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Narrow, lint-silent transforms for chain bodies.
fn transform(g: &mut Gen) -> &'static str {
    const T: [&str; 5] =
        [".map(x => x)", ".filter(f)", ".distinct()", ".flatMap(t => t)", ".sample(false, h)"];
    T[g.pick(T.len())]
}

/// Job-triggering consumers that never trip `collect-unreduced`.
fn action(g: &mut Gen, var: &str, out: &str) -> String {
    match g.pick(4) {
        0 => format!("val {out} = {var}.count\n"),
        1 => format!("val {out} = {var}.first\n"),
        2 => format!("val {out} = {var}.take(10)\n"),
        _ => format!("{var}.foreach(x => println(x))\n"),
    }
}

fn chain(g: &mut Gen) -> String {
    let mut s = String::from("sc.textFile(p)");
    for _ in 0..1 + g.pick(3) {
        s.push_str(transform(g));
    }
    s
}

/// Strictly non-combining chain for the R2/R3 seeds: `filter`, `sample`
/// and `distinct` count as reducing (or wide), which would legitimately
/// silence those rules.
fn raw_chain(g: &mut Gen) -> String {
    let mut s = String::from("sc.textFile(p)");
    for _ in 0..1 + g.pick(3) {
        s.push_str([".map(x => x)", ".flatMap(t => t)"][g.pick(2)]);
    }
    s
}

/// One independent pipeline group; `i` uniquifies its bindings. Returns
/// the source lines plus the rules the group seeds.
fn group(g: &mut Gen, i: usize) -> (String, Vec<&'static str>) {
    let v = format!("g{i}");
    match g.pick(8) {
        // Clean: one consumer, no cache.
        0 => {
            let mut s = format!("val {v} = {}\n", chain(g));
            s.push_str(&action(g, &v, &format!("r{i}")));
            (s, vec![])
        }
        // Clean: a justified cache (two consumers).
        1 => {
            let mut s = format!("val {v} = {}.cache()\n", chain(g));
            s.push_str(&action(g, &v, &format!("r{i}a")));
            s.push_str(&action(g, &v, &format!("r{i}b")));
            (s, vec![])
        }
        // R1: multi-job reuse without a cache.
        2 => {
            let mut s = format!("val {v} = {}\n", chain(g));
            for j in 0..2 + g.pick(2) {
                s.push_str(&action(g, &v, &format!("r{i}x{j}")));
            }
            (s, vec![UNCACHED_REUSE])
        }
        // R5: cache with a single consumer.
        3 => {
            let mut s = format!("val {v} = {}.cache()\n", chain(g));
            s.push_str(&action(g, &v, &format!("r{i}")));
            (s, vec![SINGLE_USE_CACHE])
        }
        // R4: key-preserving map dropping a partitioner (fixable shape).
        4 => {
            let s = format!(
                "val {v} = sc.textFile(p).keyBy(f).partitionBy(h)\n\
                 val {v}m = {v}.map {{ case (k, w) => (k, f(w)) }}\n\
                 val r{i} = {v}m.reduceByKey(f).count\n"
            );
            (s, vec![PARTITIONER_LOSS])
        }
        // R2: groupByKey over raw lineage (not mechanically fixable).
        5 => {
            let s = format!(
                "val {v} = {}.groupByKey().mapValues(w => w)\nval r{i} = {v}.count\n",
                raw_chain(g)
            );
            (s, vec![REDUNDANT_SHUFFLE])
        }
        // R3: collect of unreduced data (not mechanically fixable).
        6 => (format!("val {v} = {}.collect()\n", raw_chain(g)), vec![COLLECT_UNREDUCED]),
        // Two-pass cascade: caching the hot child starves the parent's
        // cache, which the second pass then drops.
        _ => {
            let mut s = format!("val {v} = {}.cache()\n", chain(g));
            s.push_str(&format!("val {v}c = {v}{}\n", transform(g)));
            s.push_str(&action(g, &format!("{v}c"), &format!("r{i}a")));
            s.push_str(&action(g, &format!("{v}c"), &format!("r{i}b")));
            (s, vec![UNCACHED_REUSE, SINGLE_USE_CACHE])
        }
    }
}

/// A full seeded program: prelude + 1–5 independent groups.
fn pipeline_program(seed: u64) -> (String, Vec<&'static str>) {
    let mut g = Gen::new(seed);
    let mut src = String::from("val sc = new SparkContext(sparkConf)\n");
    let mut seeded = Vec::new();
    for i in 0..1 + g.pick(5) {
        let (s, rules) = group(&mut g, i);
        src.push_str(&s);
        seeded.extend(rules);
    }
    (src, seeded)
}

const FIXABLE: [&str; 3] = [UNCACHED_REUSE, SINGLE_USE_CACHE, PARTITIONER_LOSS];

fn rule_count(diags: &[lint::Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

proptest! {
    // Convergence: the engine reaches its fixpoint in ≤ 2 applying
    // passes, no fixable diagnostic survives, and running the engine on
    // its own output is a no-op (the fixpoint is stable).
    #[test]
    fn fixes_converge_in_at_most_two_passes(seed in any::<u64>()) {
        let (src, seeded) = pipeline_program(seed);
        let out = apply_fixes(&src)
            .unwrap_or_else(|e| panic!("apply_fixes failed: {e}\n{src}"));
        prop_assert!(out.passes <= 2, "{} passes on:\n{src}", out.passes);
        let fixed_prog = parse(&out.source)
            .unwrap_or_else(|e| panic!("fixed source failed to parse: {e}\n{}", out.source));
        let residual = plan_fixes(&fixed_prog, &analyze(&fixed_prog));
        prop_assert!(residual.is_empty(), "fixable diagnostics survived:\n{}", out.source);
        // Idempotence.
        let again = apply_fixes(&out.source)
            .unwrap_or_else(|e| panic!("re-fix failed: {e}\n{}", out.source));
        prop_assert_eq!(again.passes, 0);
        prop_assert_eq!(&again.source, &out.source);
        // A seeded fixable violation implies work was done.
        if seeded.iter().any(|r| FIXABLE.contains(r)) {
            prop_assert!(!out.applied.is_empty(), "seeded violations but no fix on:\n{src}");
        }
    }

    // Soundness of each individual fix: output re-parses and the fixed
    // rule fires strictly fewer times; unfixable rules are untouched by
    // the full fix run.
    #[test]
    fn each_fix_is_individually_sound(seed in any::<u64>()) {
        let (src, _) = pipeline_program(seed);
        let prog = parse(&src).expect("generated program parses");
        let flow = analyze(&prog);
        let before = lint::run_lints(&flow);
        for f in plan_fixes(&prog, &flow) {
            let mut patched = prog.clone();
            prop_assert!(apply_fix(&mut patched, &f), "planned fix failed to land: {f:?}");
            let printed = patched.pretty();
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("fix output failed to parse: {e}\n{printed}"));
            let after = lint::run_lints(&analyze(&reparsed));
            prop_assert!(
                rule_count(&after, f.rule) < rule_count(&before, f.rule),
                "{} did not shrink after {f:?} on:\n{printed}", f.rule
            );
        }
        // Unfixable rules survive the full run in equal number.
        let out = apply_fixes(&src).expect("apply_fixes");
        for rule in [REDUNDANT_SHUFFLE, COLLECT_UNREDUCED] {
            prop_assert_eq!(
                rule_count(&out.remaining, rule),
                rule_count(&before, rule),
                "{} count changed across fixing", rule
            );
        }
    }

    // Pretty-print → parse stability after fixes: printing the fixed
    // program and reparsing is the identity up to spans.
    #[test]
    fn fixed_sources_round_trip_through_pretty_print(seed in any::<u64>()) {
        let (src, _) = pipeline_program(seed);
        let out = apply_fixes(&src).expect("apply_fixes");
        let mut first = parse(&out.source).expect("fixed source parses");
        let printed = first.pretty();
        let mut second = parse(&printed)
            .unwrap_or_else(|e| panic!("round trip failed to parse: {e}\n{printed}"));
        first.zero_spans();
        second.zero_spans();
        prop_assert_eq!(first, second, "round trip diverged on:\n{}", printed);
    }

    // Incremental analysis equals a from-scratch parse — spans included —
    // across a random edit sequence, and a single-line replacement
    // reparses at most one chunk.
    #[test]
    fn incremental_analysis_is_edit_stable(seed in any::<u64>()) {
        let (src, _) = pipeline_program(seed);
        let mut g = Gen::new(seed ^ 0xed17);
        let mut doc = DocAnalyzer::new();
        let cold = doc.update(&src);
        prop_assert_eq!(&cold.program, &parse(&src).expect("full parse"));

        let mut text = src;
        for _ in 0..4 {
            let lines: Vec<&str> = text.lines().collect();
            let i = g.pick(lines.len());
            let mut next: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
            match g.pick(4) {
                // Replace a line in place (whitespace-only body change).
                0 => next[i] = format!("{}  ", lines[i]),
                // Indent a line (exercises first-line column rebasing).
                1 => next[i] = format!("  {}", lines[i]),
                // Duplicate a line under a fresh binding.
                2 => {
                    let dup = lines[i].to_string();
                    next.insert(i + 1, dup);
                }
                // Append a fresh self-contained statement.
                _ => next.push(format!("val zz{} = sc.textFile(q).count", g.pick(1000))),
            }
            text = next.join("\n");
            text.push('\n');
            let full = parse(&text).expect("edited text parses");
            let inc = doc.update(&text);
            prop_assert_eq!(
                &inc.program, &full,
                "incremental diverged from full parse on:\n{}", text
            );
            prop_assert!(inc.diagnostics.iter().all(|d| d.rule != SYNTAX_ERROR));
        }

        // A single in-place line replacement touches at most one chunk.
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let i = g.pick(lines.len());
        let mut next = lines.clone();
        next[i] = next[i].replace("sc.textFile(p)", "sc.textFile(p2)");
        let edited = format!("{}\n", next.join("\n"));
        let out = doc.update(&edited);
        prop_assert!(
            out.stats.reparsed <= 1,
            "{} chunks reparsed after a one-line edit", out.stats.reparsed
        );
        prop_assert_eq!(&out.program, &parse(&edited).expect("full parse"));
    }

    // Breaking one statement must not suppress diagnostics elsewhere:
    // the broken chunk degrades to one syntax-error diagnostic and every
    // other group still parses and lints.
    #[test]
    fn broken_chunks_degrade_locally(seed in any::<u64>()) {
        let (src, _) = pipeline_program(seed);
        let mut doc = DocAnalyzer::new();
        let intact = doc.update(&src);
        let broken = format!("{src}val oops = sc.textFile(\n");
        let out = doc.update(&broken);
        prop_assert_eq!(rule_count(&out.diagnostics, SYNTAX_ERROR), 1);
        let lints_only =
            |ds: &[lint::Diagnostic]| ds.iter().filter(|d| d.rule != SYNTAX_ERROR).count();
        prop_assert_eq!(lints_only(&out.diagnostics), lints_only(&intact.diagnostics));
        prop_assert_eq!(out.program.stmts.len(), intact.program.stmts.len());
    }
}

//! Machine-applicable fixes for the tuning lints.
//!
//! Three of the five rules are mechanically fixable, and each fixable
//! diagnostic maps to a [`Fix`] — a span-anchored AST rewrite applied
//! through the canonical pretty-printer:
//!
//! * `uncached-reuse` → wrap the defining expression in `.cache()`,
//! * `single-use-cache` → drop the `.cache()`/`.persist()` call,
//! * `partitioner-loss` → rewrite the key-preserving
//!   `map { case (k, v) => (k, e) }` to `mapValues(v => e)`.
//!
//! [`apply_fixes`] drives plan → apply → re-analyze to a fixpoint
//! (cache edits shift trigger accounting upstream, so one round of fixes
//! can expose a second round; realistic pipelines converge in ≤ 2
//! applying passes — property-tested in `tests/fix_props.rs`) and then
//! proves semantic safety: the RDD lineage of the fixed program must
//! equal the original's modulo the intended cache/partitioner change,
//! checked on the dataflow graph by [`lineage_equivalent`]. A rewrite
//! that cannot be proven safe is rejected, never emitted.

use crate::ast::{Arg, Expr, Pat, Program, Stmt};
use crate::dataflow::{analyze, ChainOp, Flow};
use crate::lex::Span;
use crate::lint::{self, Diagnostic};
use crate::parse::{parse, ParseError};

/// How a [`Fix`] rewrites the AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixKind {
    /// Wrap the defining expression in `.cache()`.
    InsertCache,
    /// Remove a `.cache()`/`.persist()` call.
    DropCache,
    /// Rewrite a key-preserving `map` to `mapValues`.
    MapToMapValues,
}

/// One machine-applicable fix, anchored to the diagnostic it resolves.
#[derive(Debug, Clone, PartialEq)]
pub struct Fix {
    /// Rule id of the diagnostic this fix resolves.
    pub rule: &'static str,
    /// Human-readable action title (shown as an LSP code-action label).
    pub title: String,
    /// Anchor span — equals the matching [`Diagnostic::span`].
    pub span: Span,
    /// The rewrite.
    pub kind: FixKind,
    /// Bound variable of the target node, when it has one (lets the
    /// rewrite find statement-form `x.cache()` calls whose receiver span
    /// differs from the node's defining span).
    pub var: Option<String>,
}

/// Result of driving [`apply_fixes`] to its fixpoint.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// Canonically printed fixed source.
    pub source: String,
    /// Every fix applied, in application order across passes.
    pub applied: Vec<Fix>,
    /// Number of passes that applied at least one fix.
    pub passes: usize,
    /// Diagnostics still present on the fixed source (unfixable rules).
    pub remaining: Vec<Diagnostic>,
}

/// Why [`apply_fixes`] refused to produce output.
#[derive(Debug, Clone, PartialEq)]
pub enum FixError {
    /// The input (or, impossibly, our own output) failed to parse.
    Parse(ParseError),
    /// The fixed program's lineage diverged from the original beyond the
    /// intended change — the rewrite is discarded.
    Unsafe(String),
    /// The plan/apply loop did not reach a fixpoint within
    /// [`MAX_FIX_PASSES`] passes.
    NoConvergence,
}

impl std::fmt::Display for FixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FixError::Parse(e) => write!(f, "{e}"),
            FixError::Unsafe(d) => write!(f, "fix rejected as unsafe: {d}"),
            FixError::NoConvergence => {
                write!(f, "fix application did not converge in {MAX_FIX_PASSES} passes")
            }
        }
    }
}

impl std::error::Error for FixError {}

/// Hard cap on plan/apply passes; realistic pipelines need ≤ 2.
pub const MAX_FIX_PASSES: usize = 8;

/// Plan every applicable fix for the current diagnostics. Each returned
/// fix is anchored (same span) to a diagnostic from [`lint::run_lints`]
/// and is guaranteed to apply on `prog` as it stands.
pub fn plan_fixes(prog: &Program, flow: &Flow) -> Vec<Fix> {
    let mut out = Vec::new();
    for d in lint::run_lints(flow) {
        let var = flow.nodes.iter().find(|n| n.def_span == d.span).and_then(|n| n.var_name.clone());
        let fix = match d.rule {
            lint::UNCACHED_REUSE => Fix {
                rule: d.rule,
                title: format!("Insert `.cache()` on `{}`", var.as_deref().unwrap_or("this RDD")),
                span: d.span,
                kind: FixKind::InsertCache,
                var,
            },
            lint::SINGLE_USE_CACHE => Fix {
                rule: d.rule,
                title: format!(
                    "Drop the single-use `.cache()` on `{}`",
                    var.as_deref().unwrap_or("this RDD")
                ),
                span: d.span,
                kind: FixKind::DropCache,
                var,
            },
            lint::PARTITIONER_LOSS => Fix {
                rule: d.rule,
                title: "Rewrite key-preserving `map` to `mapValues`".to_string(),
                span: d.span,
                kind: FixKind::MapToMapValues,
                var,
            },
            _ => continue,
        };
        // Only offer fixes that will actually land on this AST.
        if apply_fix(&mut prog.clone(), &fix) {
            out.push(fix);
        }
    }
    out
}

/// Apply one fix in place. Returns `false` (AST untouched) when the
/// anchor cannot be located or the rewrite's side conditions fail.
pub fn apply_fix(prog: &mut Program, fix: &Fix) -> bool {
    match fix.kind {
        FixKind::InsertCache => insert_cache(prog, fix.span),
        FixKind::DropCache => drop_cache(prog, fix.span, fix.var.as_deref()),
        FixKind::MapToMapValues => map_to_mapvalues(prog, fix.span),
    }
}

/// Drive plan → apply → re-analyze to a fixpoint, then prove the result
/// lineage-equivalent to the input (modulo cache flags and the
/// `map`→`mapValues` swap) before returning it.
pub fn apply_fixes(source: &str) -> Result<FixOutcome, FixError> {
    let mut prog = parse(source).map_err(FixError::Parse)?;
    let orig_flow = analyze(&prog);
    let mut applied = Vec::new();
    let mut passes = 0usize;
    loop {
        let flow = analyze(&prog);
        let fixes = plan_fixes(&prog, &flow);
        let mut landed = 0usize;
        for f in fixes {
            if apply_fix(&mut prog, &f) {
                applied.push(f);
                landed += 1;
            }
        }
        if landed == 0 {
            break;
        }
        passes += 1;
        if passes >= MAX_FIX_PASSES {
            return Err(FixError::NoConvergence);
        }
    }
    let fixed = prog.pretty();
    let reparsed = parse(&fixed).map_err(FixError::Parse)?;
    let new_flow = analyze(&reparsed);
    lineage_equivalent(&orig_flow, &new_flow).map_err(FixError::Unsafe)?;
    Ok(FixOutcome { source: fixed, applied, passes, remaining: lint::run_lints(&new_flow) })
}

/// Instrumented variant of [`apply_fixes`]: records `analyze.fix.*`
/// series on `metrics` (planned/applied counters, passes histogram, and
/// a rejected counter for unsafe or non-converging rewrites).
pub fn apply_fixes_metered(
    source: &str,
    metrics: &lite_obs::Registry,
) -> Result<FixOutcome, FixError> {
    let out = apply_fixes(source);
    match &out {
        Ok(o) => {
            metrics.counter("analyze.fix.planned").add(o.applied.len() as u64);
            metrics.counter("analyze.fix.applied").add(o.applied.len() as u64);
            metrics.histogram("analyze.fix.passes").record(o.passes as u64);
        }
        Err(_) => metrics.counter("analyze.fix.rejected").inc(),
    }
    out
}

// ---------------------------------------------------------------------------
// Rewrites
// ---------------------------------------------------------------------------

/// Walk every expression (pre-order, including nested statements); `f`
/// returns `true` once it has rewritten its target, which stops the walk.
fn rewrite_first(prog: &mut Program, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
    for s in &mut prog.stmts {
        if rewrite_stmt(s, f) {
            return true;
        }
    }
    false
}

fn rewrite_stmt(s: &mut Stmt, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
    match s {
        Stmt::Val { value, .. } => rewrite_expr(value, f),
        Stmt::Expr(e) => rewrite_expr(e, f),
    }
}

fn rewrite_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
    if f(e) {
        return true;
    }
    match e {
        Expr::Ident(..)
        | Expr::Num(..)
        | Expr::Str(..)
        | Expr::Interp(..)
        | Expr::Char(..)
        | Expr::Under(..) => false,
        Expr::New { args, .. } => args.iter_mut().flatten().any(|a| rewrite_expr(&mut a.value, f)),
        Expr::Field { recv, .. } => rewrite_expr(recv, f),
        Expr::Method { recv, args, .. } => {
            rewrite_expr(recv, f) || args.iter_mut().any(|a| rewrite_expr(&mut a.value, f))
        }
        Expr::Apply { f: callee, args, .. } => {
            rewrite_expr(callee, f) || args.iter_mut().any(|a| rewrite_expr(&mut a.value, f))
        }
        Expr::Lambda { body, .. } => rewrite_expr(body, f),
        Expr::Cases(cs, _) => cs.iter_mut().any(|c| rewrite_expr(&mut c.body, f)),
        Expr::Block(stmts, _) => stmts.iter_mut().any(|s| rewrite_stmt(s, f)),
        Expr::Tuple(es, _) => es.iter_mut().any(|x| rewrite_expr(x, f)),
        Expr::Binary { lhs, rhs, .. } => rewrite_expr(lhs, f) || rewrite_expr(rhs, f),
        Expr::Unary { expr, .. } => rewrite_expr(expr, f),
        Expr::Match { scrutinee, cases, .. } => {
            rewrite_expr(scrutinee, f) || cases.iter_mut().any(|c| rewrite_expr(&mut c.body, f))
        }
    }
}

fn insert_cache(prog: &mut Program, target: Span) -> bool {
    rewrite_first(prog, &mut |e| {
        let s = e.span();
        if s.start != target.start || s.end != target.end {
            return false;
        }
        // Don't double-wrap if the walk revisits the wrapper we made.
        if let Expr::Method { name, .. } = e {
            if name == "cache" || name == "persist" {
                return false;
            }
        }
        let recv = std::mem::replace(e, Expr::Under(s));
        *e = Expr::Method {
            recv: Box::new(recv),
            name: "cache".to_string(),
            args: Vec::new(),
            brace: false,
            span: s,
        };
        true
    })
}

fn drop_cache(prog: &mut Program, target: Span, var: Option<&str>) -> bool {
    let matches_target = |recv: &Expr| {
        let rs = recv.span();
        if rs.start == target.start && rs.end == target.end {
            return true;
        }
        // Statement-form `x.cache()`: the receiver is the bound name, not
        // the defining expression the diagnostic points at.
        matches!((recv, var), (Expr::Ident(n, _), Some(v)) if n.as_str() == v)
    };
    // A cache call that is an entire statement is removed outright —
    // unwrapping it would leave a pointless bare-identifier statement.
    for i in 0..prog.stmts.len() {
        if let Stmt::Expr(Expr::Method { recv, name, .. }) = &prog.stmts[i] {
            if (name == "cache" || name == "persist") && matches_target(recv) {
                prog.stmts.remove(i);
                return true;
            }
        }
    }
    rewrite_first(prog, &mut |e| {
        let Expr::Method { recv, name, .. } = e else { return false };
        if name != "cache" && name != "persist" {
            return false;
        }
        if !matches_target(recv) {
            return false;
        }
        let inner = std::mem::replace(&mut **recv, Expr::Under(Span::default()));
        *e = inner;
        true
    })
}

fn map_to_mapvalues(prog: &mut Program, target: Span) -> bool {
    rewrite_first(prog, &mut |e| {
        let replacement = {
            let Expr::Method { recv, name, args, span, .. } = &*e else { return false };
            if name != "map" || span.start != target.start || span.end != target.end {
                return false;
            }
            let [Arg { name: None, value: Expr::Cases(cases, cspan) }] = args.as_slice() else {
                return false;
            };
            let [crate::ast::Case { pat: Pat::Tuple(ps), body: Expr::Tuple(es, _) }] =
                cases.as_slice()
            else {
                return false;
            };
            let ([Pat::Ident(k), vpat], [Expr::Ident(k2, _), value]) =
                (ps.as_slice(), es.as_slice())
            else {
                return false;
            };
            if k != k2 || !matches!(vpat, Pat::Ident(_) | Pat::Wild) {
                return false;
            }
            // The value expression must not capture the key — `mapValues`
            // would leave it unbound.
            if references_ident(value, k) {
                return false;
            }
            let lambda = Expr::Lambda {
                params: vec![vpat.clone()],
                body: Box::new(value.clone()),
                span: *cspan,
            };
            Expr::Method {
                recv: recv.clone(),
                name: "mapValues".to_string(),
                args: vec![Arg { name: None, value: lambda }],
                brace: false,
                span: *span,
            }
        };
        *e = replacement;
        true
    })
}

/// Conservative free-occurrence check: any `Ident(name)` anywhere in `e`
/// counts (shadowing is ignored on purpose — a false positive only skips
/// a fix, never corrupts one).
fn references_ident(e: &Expr, name: &str) -> bool {
    let mut found = false;
    // `rewrite_expr` on a clone doubles as a read-only walker.
    rewrite_expr(&mut e.clone(), &mut |x| {
        if matches!(x, Expr::Ident(n, _) if n == name) {
            found = true;
        }
        found
    });
    found
}

// ---------------------------------------------------------------------------
// Lineage equivalence
// ---------------------------------------------------------------------------

/// Structural lineage comparison: node graph (parents, ops, bindings),
/// action sites, and library calls must match; `cached`, trigger
/// accounting, and partitioner flags are exactly the intended deltas and
/// are ignored. A key-preserving `map` and `mapValues` compare equal —
/// that swap is the one op rewrite fixes perform.
pub fn lineage_equivalent(a: &Flow, b: &Flow) -> Result<(), String> {
    if a.app_name != b.app_name {
        return Err("app name changed".to_string());
    }
    if a.nodes.len() != b.nodes.len() {
        return Err(format!("node count {} -> {}", a.nodes.len(), b.nodes.len()));
    }
    for (x, y) in a.nodes.iter().zip(&b.nodes) {
        if x.parent != y.parent {
            return Err(format!("node {}: parent changed", x.id));
        }
        if x.var_name != y.var_name {
            return Err(format!("node {}: binding changed", x.id));
        }
        if !ops_equivalent(&x.op, &y.op) {
            return Err(format!("node {}: op {:?} -> {:?}", x.id, x.op, y.op));
        }
    }
    if a.actions.len() != b.actions.len()
        || a.actions.iter().zip(&b.actions).any(|(x, y)| x.kind != y.kind || x.node != y.node)
    {
        return Err("action sites changed".to_string());
    }
    if a.calls.len() != b.calls.len()
        || a.calls
            .iter()
            .zip(&b.calls)
            .any(|(x, y)| x.api != y.api || x.input != y.input || x.result != y.result)
    {
        return Err("library call sites changed".to_string());
    }
    Ok(())
}

fn ops_equivalent(a: &ChainOp, b: &ChainOp) -> bool {
    let key_preserving =
        |op: &ChainOp| matches!(op, ChainOp::MapValues | ChainOp::Map { key_preserving: true, .. });
    a == b || (key_preserving(a) && key_preserving(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{PARTITIONER_LOSS, SINGLE_USE_CACHE, UNCACHED_REUSE};

    const PRELUDE: &str = "val sc = new SparkContext(sparkConf)\n";

    fn fixable_rules(source: &str) -> Vec<&'static str> {
        let prog = parse(source).expect("parse");
        let flow = analyze(&prog);
        plan_fixes(&prog, &flow).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn insert_cache_resolves_uncached_reuse() {
        let src = format!(
            "{PRELUDE}val parsed = sc.textFile(p).map(x => x)\nval a = parsed.count\nval b = parsed.count\n"
        );
        assert_eq!(fixable_rules(&src), vec![UNCACHED_REUSE]);
        let out = apply_fixes(&src).expect("fixes apply");
        assert!(out.source.contains("sc.textFile(p).map(x => x).cache()"));
        assert_eq!(out.passes, 1);
        assert!(out.remaining.is_empty());
    }

    #[test]
    fn drop_cache_resolves_single_use_cache() {
        let src =
            format!("{PRELUDE}val data = sc.textFile(p).map(x => x).cache()\nval n = data.count\n");
        assert_eq!(fixable_rules(&src), vec![SINGLE_USE_CACHE]);
        let out = apply_fixes(&src).expect("fixes apply");
        assert!(!out.source.contains("cache"));
        assert!(out.remaining.is_empty());
    }

    #[test]
    fn drop_cache_removes_statement_form_calls() {
        let src = format!(
            "{PRELUDE}val data = sc.textFile(p).map(x => x)\ndata.cache()\nval n = data.count\n"
        );
        let out = apply_fixes(&src).expect("fixes apply");
        assert!(!out.source.contains("cache"));
        assert!(out.remaining.is_empty());
    }

    #[test]
    fn map_rewrites_to_mapvalues_and_keeps_the_partitioner() {
        let src = format!(
            "{PRELUDE}val part = sc.textFile(p).keyBy(f).partitionBy(h)\n\
             val bumped = part.map {{ case (k, v) => (k, g(v)) }}\n\
             val out = bumped.reduceByKey(g).count\n"
        );
        assert!(fixable_rules(&src).contains(&PARTITIONER_LOSS));
        let out = apply_fixes(&src).expect("fixes apply");
        assert!(out.source.contains("part.mapValues(v => g(v))"));
        assert!(out.remaining.iter().all(|d| d.rule != PARTITIONER_LOSS));
    }

    #[test]
    fn map_rewrite_skipped_when_value_captures_the_key() {
        let src = format!(
            "{PRELUDE}val part = sc.textFile(p).keyBy(f).partitionBy(h)\n\
             val bumped = part.map {{ case (k, v) => (k, g(k, v)) }}\n\
             val out = bumped.reduceByKey(g).count\n"
        );
        assert!(!fixable_rules(&src).contains(&PARTITIONER_LOSS));
        let out = apply_fixes(&src).expect("nothing to do is fine");
        assert!(out.remaining.iter().any(|d| d.rule == PARTITIONER_LOSS));
    }

    #[test]
    fn cascaded_cache_edits_converge_in_two_passes() {
        // Caching `b` (pass 1) starves the upstream cache on `a`, which
        // pass 2 then drops — the canonical two-pass cascade.
        let src = format!(
            "{PRELUDE}val a = sc.textFile(p).map(x => x).cache()\n\
             val b = a.filter(f)\n\
             val n = b.count\nval m = b.count\n"
        );
        let out = apply_fixes(&src).expect("fixes apply");
        assert_eq!(out.passes, 2);
        assert!(out.source.contains("a.filter(f).cache()"));
        assert!(!out.source.contains("map(x => x).cache()"));
        assert!(out.remaining.is_empty());
    }

    #[test]
    fn metered_wrapper_registers_the_fix_series() {
        let reg = lite_obs::Registry::new();
        let src = format!(
            "{PRELUDE}val parsed = sc.textFile(p).map(x => x)\nval a = parsed.count\nval b = parsed.count\n"
        );
        apply_fixes_metered(&src, &reg).expect("fixes apply");
        let snap = reg.snapshot();
        assert!(snap.counters.iter().any(|(k, v)| k == "analyze.fix.applied" && *v == 1));
    }
}

//! Typed AST for the Scala-like subset emitted by `srcgen`/`apps`,
//! plus a canonical pretty-printer.
//!
//! The printer is the inverse of the parser on this subset: for every AST
//! `a`, `parse(pretty(a))` equals `a` up to spans (property-tested, and
//! exercised on the real 15-app corpus). Spans never participate in
//! equality-after-reparse checks; [`Program::zero_spans`] normalizes them.

use crate::lex::Span;
use std::fmt::Write as _;

/// A parsed program: a sequence of top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements in source order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `val <pat> = <expr>`
    Val {
        /// Binding pattern.
        pat: Pat,
        /// Bound expression.
        value: Expr,
        /// Statement span.
        span: Span,
    },
    /// A bare expression statement.
    Expr(Expr),
}

/// A binding or case pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Pat {
    /// `name`
    Ident(String),
    /// `_`
    Wild,
    /// `(p, p, …)`
    Tuple(Vec<Pat>),
    /// `Ctor(p, p, …)` (e.g. `Array(user, item, rate)`)
    Ctor(String, Vec<Pat>),
}

/// A call argument, optionally named (`ascending = false`).
#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    /// Parameter name for named arguments.
    pub name: Option<String>,
    /// Argument value.
    pub value: Expr,
}

/// One `case pat => body` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Clause pattern.
    pub pat: Pat,
    /// Clause body.
    pub body: Expr,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Identifier reference.
    Ident(String, Span),
    /// Numeric literal (text preserved: `10`, `0.15`, `1L`).
    Num(String, Span),
    /// String literal (raw contents, escapes preserved verbatim).
    Str(String, Span),
    /// Interpolated string `s"…"` (contents kept opaque).
    Interp(String, Span),
    /// Character literal `'…'`.
    Char(String, Span),
    /// The placeholder `_`.
    Under(Span),
    /// `new Path.To.Type(args)`; `args` is `None` when written without
    /// parentheses (`new SquaredL2Updater`).
    New {
        /// Dotted type path.
        path: Vec<String>,
        /// Constructor arguments, if parenthesized.
        args: Option<Vec<Arg>>,
        /// Expression span.
        span: Span,
    },
    /// Parenless selection `recv.name`.
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Selected member.
        name: String,
        /// Expression span.
        span: Span,
    },
    /// `recv.name(args)` or `recv.name { lambda-or-cases }`.
    Method {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments (a brace-block call has exactly one argument).
        args: Vec<Arg>,
        /// True when written with a brace block instead of parentheses.
        brace: bool,
        /// Expression span.
        span: Span,
    },
    /// Plain application `f(args)` (`println(x)`, `fields(0)`, `Seq(1L)`).
    Apply {
        /// Callee.
        f: Box<Expr>,
        /// Arguments.
        args: Vec<Arg>,
        /// Expression span.
        span: Span,
    },
    /// `p => body` or `(p, q) => body`.
    Lambda {
        /// Parameter patterns.
        params: Vec<Pat>,
        /// Body expression.
        body: Box<Expr>,
        /// Expression span.
        span: Span,
    },
    /// `{ case p => e … }` partial-function literal.
    Cases(Vec<Case>, Span),
    /// `{ stmt; …; expr }` block.
    Block(Vec<Stmt>, Span),
    /// Tuple `(a, b, …)` (always ≥ 2 elements).
    Tuple(Vec<Expr>, Span),
    /// Binary operation.
    Binary {
        /// Operator text (`+`, `!=`, …).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Expression span.
        span: Span,
    },
    /// Prefix operation (`-x`, `!x`).
    Unary {
        /// Operator text.
        op: String,
        /// Operand.
        expr: Box<Expr>,
        /// Expression span.
        span: Span,
    },
    /// `scrutinee match { case … }`.
    Match {
        /// Matched expression.
        scrutinee: Box<Expr>,
        /// Clauses.
        cases: Vec<Case>,
        /// Expression span.
        span: Span,
    },
}

impl Expr {
    /// The expression's source span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Ident(_, s)
            | Expr::Num(_, s)
            | Expr::Str(_, s)
            | Expr::Interp(_, s)
            | Expr::Char(_, s)
            | Expr::Under(s)
            | Expr::Cases(_, s)
            | Expr::Block(_, s)
            | Expr::Tuple(_, s) => *s,
            Expr::New { span, .. }
            | Expr::Field { span, .. }
            | Expr::Method { span, .. }
            | Expr::Apply { span, .. }
            | Expr::Lambda { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Match { span, .. } => *span,
        }
    }
}

/// Binding power of a binary operator (higher binds tighter); `None` for
/// unknown operators.
pub fn binop_power(op: &str) -> Option<u8> {
    Some(match op {
        "||" => 1,
        "&&" => 2,
        "==" | "!=" => 3,
        "<" | ">" | "<=" | ">=" => 4,
        "+" | "-" => 5,
        "*" | "/" | "%" => 6,
        _ => return None,
    })
}

impl Program {
    /// Canonical source text; `parse(pretty())` reproduces this AST up to
    /// spans.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        for s in &self.stmts {
            print_stmt(s, &mut out);
            out.push('\n');
        }
        out
    }

    /// Erase every span (for reparse-equality checks).
    pub fn zero_spans(&mut self) {
        self.map_spans(&mut |s| *s = Span::default());
    }

    /// Apply `f` to every span in the program (statement spans included).
    /// This is the one span walker: `zero_spans` erases through it, and
    /// incremental re-analysis rebases chunk-relative spans through it.
    pub fn map_spans(&mut self, f: &mut impl FnMut(&mut Span)) {
        for s in &mut self.stmts {
            map_stmt_spans(s, f);
        }
    }
}

fn print_stmt(s: &Stmt, out: &mut String) {
    match s {
        Stmt::Val { pat, value, .. } => {
            out.push_str("val ");
            print_pat(pat, out);
            out.push_str(" = ");
            print_expr(value, 0, out);
        }
        Stmt::Expr(e) => print_expr(e, 0, out),
    }
}

fn print_pat(p: &Pat, out: &mut String) {
    match p {
        Pat::Ident(n) => out.push_str(n),
        Pat::Wild => out.push('_'),
        Pat::Tuple(ps) => {
            out.push('(');
            for (i, q) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_pat(q, out);
            }
            out.push(')');
        }
        Pat::Ctor(n, ps) => {
            out.push_str(n);
            out.push('(');
            for (i, q) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_pat(q, out);
            }
            out.push(')');
        }
    }
}

fn print_args(args: &[Arg], out: &mut String) {
    out.push('(');
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if let Some(n) = &a.name {
            let _ = write!(out, "{n} = ");
        }
        print_expr(&a.value, 0, out);
    }
    out.push(')');
}

fn print_cases(cases: &[Case], out: &mut String) {
    out.push('{');
    for c in cases {
        out.push_str(" case ");
        print_pat(&c.pat, out);
        out.push_str(" => ");
        print_expr(&c.body, 0, out);
    }
    out.push_str(" }");
}

/// Print with a minimum binding power `min_bp`: operands whose own power is
/// below it get parenthesized, so reparsing restores the original tree.
fn print_expr(e: &Expr, min_bp: u8, out: &mut String) {
    // Lambdas and matches extend maximally to the right; inside any binary
    // context they need parentheses.
    let own_bp = match e {
        Expr::Binary { op, .. } => binop_power(op).unwrap_or(0),
        Expr::Lambda { .. } | Expr::Match { .. } => 0,
        _ => u8::MAX,
    };
    let paren = own_bp < min_bp;
    if paren {
        out.push('(');
    }
    match e {
        Expr::Ident(n, _) => out.push_str(n),
        Expr::Num(n, _) => out.push_str(n),
        Expr::Str(s, _) => {
            let _ = write!(out, "\"{s}\"");
        }
        Expr::Interp(s, _) => {
            let _ = write!(out, "s\"{s}\"");
        }
        Expr::Char(s, _) => {
            let _ = write!(out, "'{s}'");
        }
        Expr::Under(_) => out.push('_'),
        Expr::New { path, args, .. } => {
            out.push_str("new ");
            out.push_str(&path.join("."));
            if let Some(a) = args {
                print_args(a, out);
            }
        }
        Expr::Field { recv, name, .. } => {
            print_recv(recv, out);
            out.push('.');
            out.push_str(name);
        }
        Expr::Method { recv, name, args, brace, .. } => {
            print_recv(recv, out);
            out.push('.');
            out.push_str(name);
            if *brace {
                out.push(' ');
                match args.first().map(|a| &a.value) {
                    Some(Expr::Cases(cs, _)) => print_cases(cs, out),
                    Some(other) => {
                        out.push_str("{ ");
                        print_expr(other, 0, out);
                        out.push_str(" }");
                    }
                    None => out.push_str("{ }"),
                }
            } else {
                print_args(args, out);
            }
        }
        Expr::Apply { f, args, .. } => {
            print_recv(f, out);
            print_args(args, out);
        }
        Expr::Lambda { params, body, .. } => {
            if params.len() == 1 && matches!(params[0], Pat::Ident(_) | Pat::Wild) {
                print_pat(&params[0], out);
            } else {
                print_pat(&Pat::Tuple(params.clone()), out);
            }
            out.push_str(" => ");
            print_expr(body, 0, out);
        }
        Expr::Cases(cs, _) => print_cases(cs, out),
        Expr::Block(stmts, _) => {
            out.push_str("{ ");
            for (i, s) in stmts.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                print_stmt(s, out);
            }
            out.push_str(" }");
        }
        Expr::Tuple(es, _) => {
            out.push('(');
            for (i, x) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(x, 0, out);
            }
            out.push(')');
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let bp = binop_power(op).unwrap_or(0);
            // Left-associative: the right operand needs strictly higher
            // power to avoid regrouping.
            print_expr(lhs, bp, out);
            let _ = write!(out, " {op} ");
            print_expr(rhs, bp + 1, out);
        }
        Expr::Unary { op, expr, .. } => {
            out.push_str(op);
            print_expr(expr, u8::MAX, out);
        }
        Expr::Match { scrutinee, cases, .. } => {
            print_recv(scrutinee, out);
            out.push_str(" match ");
            print_cases(cases, out);
        }
    }
    if paren {
        out.push(')');
    }
}

/// Print a receiver/callee position: postfix chains bind tighter than
/// everything, so any non-postfix receiver is parenthesized.
fn print_recv(e: &Expr, out: &mut String) {
    let atomic = matches!(
        e,
        Expr::Ident(..)
            | Expr::Num(..)
            | Expr::Str(..)
            | Expr::Interp(..)
            | Expr::Char(..)
            | Expr::Under(..)
            | Expr::Field { .. }
            | Expr::Method { .. }
            | Expr::Apply { .. }
            | Expr::Tuple(..)
            | Expr::New { .. }
    );
    // `new T(..).m` parses back with `.m` attached to the New, so New is
    // safe unparenthesized; a brace-block method receiver also reparses
    // unambiguously.
    if atomic {
        print_expr(e, 0, out);
    } else {
        out.push('(');
        print_expr(e, 0, out);
        out.push(')');
    }
}

fn map_stmt_spans(s: &mut Stmt, f: &mut impl FnMut(&mut Span)) {
    match s {
        Stmt::Val { value, span, .. } => {
            f(span);
            map_expr_spans(value, f);
        }
        Stmt::Expr(e) => map_expr_spans(e, f),
    }
}

fn map_case_spans(cases: &mut [Case], f: &mut impl FnMut(&mut Span)) {
    for c in cases {
        map_expr_spans(&mut c.body, f);
    }
}

fn map_expr_spans(e: &mut Expr, f: &mut impl FnMut(&mut Span)) {
    match e {
        Expr::Ident(_, s)
        | Expr::Num(_, s)
        | Expr::Str(_, s)
        | Expr::Interp(_, s)
        | Expr::Char(_, s)
        | Expr::Under(s) => f(s),
        Expr::New { args, span, .. } => {
            f(span);
            if let Some(args) = args {
                for a in args {
                    map_expr_spans(&mut a.value, f);
                }
            }
        }
        Expr::Field { recv, span, .. } => {
            f(span);
            map_expr_spans(recv, f);
        }
        Expr::Method { recv, args, span, .. } => {
            f(span);
            map_expr_spans(recv, f);
            for a in args {
                map_expr_spans(&mut a.value, f);
            }
        }
        Expr::Apply { f: callee, args, span } => {
            f(span);
            map_expr_spans(callee, f);
            for a in args {
                map_expr_spans(&mut a.value, f);
            }
        }
        Expr::Lambda { body, span, .. } => {
            f(span);
            map_expr_spans(body, f);
        }
        Expr::Cases(cs, s) => {
            f(s);
            map_case_spans(cs, f);
        }
        Expr::Block(stmts, s) => {
            f(s);
            for st in stmts {
                map_stmt_spans(st, f);
            }
        }
        Expr::Tuple(es, s) => {
            f(s);
            for x in es {
                map_expr_spans(x, f);
            }
        }
        Expr::Binary { lhs, rhs, span, .. } => {
            f(span);
            map_expr_spans(lhs, f);
            map_expr_spans(rhs, f);
        }
        Expr::Unary { expr, span, .. } => {
            f(span);
            map_expr_spans(expr, f);
        }
        Expr::Match { scrutinee, cases, span } => {
            f(span);
            map_expr_spans(scrutinee, f);
            map_case_spans(cases, f);
        }
    }
}

//! Spanned lexer for the Scala-like workload subset.
//!
//! This is the one lexer of the workspace: `lite-workloads::tokenize`
//! delegates its flat token stream to [`flat_tokens`], and the parser in
//! [`crate::parse`] consumes the spanned [`Tok`] stream produced by
//! [`lex`]. Compared to the ad-hoc scanner it supersedes, three gaps are
//! fixed:
//!
//! * `//` line comments are skipped instead of leaking `/` tokens,
//! * `\"` escapes inside string literals no longer terminate the literal,
//! * an unterminated string at EOF still yields its (collapsed) token
//!   instead of being dropped silently.

use serde::{Deserialize, Serialize};

/// A byte range in the analyzed source, with the 1-based line/column of its
/// first byte. Spans are carried through the AST into lint diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column (in characters) of `start`.
    pub col: u32,
}

impl Span {
    /// Span covering both operands.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
            col: if other.line < self.line || (other.line == self.line && other.col < self.col) {
                other.col
            } else {
                self.col
            },
        }
    }
}

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`val`, `map`, `_2`, …).
    Ident,
    /// Number-like token (leading ASCII digit, e.g. `10`, `1L`).
    Num,
    /// String literal; `text` holds the raw contents between the quotes
    /// (escape sequences preserved verbatim).
    Str,
    /// The `.` separator.
    Dot,
    /// Any other single character (`(`, `=`, `>`, `'`, …).
    Punct,
}

/// One spanned token.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for the `Str` convention).
    pub text: String,
    /// Source location.
    pub span: Span,
}

/// Lex `source` into spanned tokens. Never panics, on any input.
pub fn lex(source: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut chars = source.char_indices().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    while let Some((start, ch)) = chars.next() {
        let (tline, tcol) = (line, col);
        // Track position for *this* char now; multi-char tokens advance
        // line/col as they consume below.
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
        match ch {
            '/' if matches!(chars.peek(), Some((_, '/'))) => {
                // Line comment: skip to (but not past) the newline.
                while let Some(&(_, c)) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
            }
            '"' => {
                let mut text = String::new();
                let mut end = source.len();
                let mut escaped = false;
                loop {
                    match chars.next() {
                        None => break, // unterminated: still emit the token
                        Some((i, c)) => {
                            if c == '\n' {
                                line += 1;
                                col = 1;
                            } else {
                                col += 1;
                            }
                            if escaped {
                                escaped = false;
                                text.push(c);
                            } else if c == '\\' {
                                escaped = true;
                                text.push(c);
                            } else if c == '"' {
                                end = i + 1;
                                break;
                            } else {
                                text.push(c);
                            }
                        }
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    span: Span { start, end, line: tline, col: tcol },
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut text = String::from(c);
                let mut end = start + c.len_utf8();
                while let Some(&(i, n)) = chars.peek() {
                    if n.is_alphanumeric() || n == '_' {
                        text.push(n);
                        end = i + n.len_utf8();
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let kind = if c.is_ascii_digit() { TokKind::Num } else { TokKind::Ident };
                toks.push(Tok { kind, text, span: Span { start, end, line: tline, col: tcol } });
            }
            c if c.is_whitespace() => {}
            '.' => toks.push(Tok {
                kind: TokKind::Dot,
                text: ".".to_string(),
                span: Span { start, end: start + 1, line: tline, col: tcol },
            }),
            c => toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                span: Span { start, end: start + c.len_utf8(), line: tline, col: tcol },
            }),
        }
    }
    toks
}

/// Flat token stream, byte-compatible with the historical
/// `workloads::tokenize` output: identifiers and numbers verbatim, `.` as
/// its own token, every string literal collapsed to the single token
/// `"str"` (quotes included), all other characters as single-char tokens.
pub fn flat_tokens(source: &str) -> Vec<String> {
    lex(source)
        .into_iter()
        .map(|t| match t.kind {
            TokKind::Str => "\"str\"".to_string(),
            _ => t.text,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        flat_tokens(src)
    }

    #[test]
    fn splits_identifiers_dots_and_puncts() {
        assert_eq!(
            texts("val x = rdd.map(f)"),
            ["val", "x", "=", "rdd", ".", "map", "(", "f", ")"].map(String::from)
        );
    }

    #[test]
    fn collapses_string_literals() {
        assert_eq!(texts(r#"setAppName("TeraSort")"#), ["setAppName", "(", "\"str\"", ")"]);
    }

    #[test]
    fn skips_line_comments() {
        assert_eq!(texts("a // trailing comment\nb"), ["a", "b"]);
        // A single slash is still an operator token.
        assert_eq!(texts("a / b"), ["a", "/", "b"]);
    }

    #[test]
    fn escaped_quotes_stay_inside_the_literal() {
        // One literal containing an escaped quote — not two literals.
        assert_eq!(texts(r#"f("a\"b") + g"#), ["f", "(", "\"str\"", ")", "+", "g"]);
        let toks = lex(r#""a\"b""#);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "a\\\"b");
    }

    #[test]
    fn unterminated_string_at_eof_still_emits_a_token() {
        assert_eq!(texts(r#"x = "never closed"#), ["x", "=", "\"str\""]);
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("ab\n  cd.e");
        assert_eq!(toks[0].span, Span { start: 0, end: 2, line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { start: 5, end: 7, line: 2, col: 3 });
        assert_eq!(toks[2].kind, TokKind::Dot);
        assert_eq!(toks[3].span.col, 6);
    }

    #[test]
    fn numbers_keep_suffixes_and_split_on_dot() {
        assert_eq!(texts("0.15 1L"), ["0", ".", "15", "1L"]);
        assert_eq!(lex("7L")[0].kind, TokKind::Num);
    }
}

//! Incremental re-analysis with statement-level memoization.
//!
//! [`DocAnalyzer`] keeps a parsed-chunk cache keyed by chunk text, so a
//! single-edit update re-parses only the top-level statements the edit
//! touched; untouched chunks are cloned out of the cache with their spans
//! rebased to the new document position. Dataflow and linting always run
//! over the full reassembled program — they are linear and cheap next to
//! parsing, and re-running them keeps cross-statement facts (trigger
//! accounting, lineage) exact.
//!
//! Chunking is lexical: a new chunk starts at a line break where the
//! running paren/brace depth is zero and the token shapes on both sides
//! rule out a statement continuation (`.count` on the next line, a
//! trailing binary operator, an argument list spilling over). A split
//! that is too conservative only merges chunks — correctness never
//! depends on the boundaries, and `tests/fix_props.rs` property-checks
//! that the incremental result equals a from-scratch parse, spans
//! included.
//!
//! Parse errors are per-chunk and non-fatal: a broken statement becomes a
//! [`SYNTAX_ERROR`](crate::lint::SYNTAX_ERROR) diagnostic while every
//! other statement still parses, flows, and lints — exactly what an LSP
//! needs from code that is mid-edit.

use crate::ast::Program;
use crate::dataflow::{analyze, Flow};
use crate::lex::{lex, Span, Tok, TokKind};
use crate::lint::{run_lints, Diagnostic, SYNTAX_ERROR};
use crate::parse::parse;
use std::collections::HashMap;

/// Result of analyzing one document snapshot. Never an error: broken
/// code surfaces as `syntax-error` diagnostics.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The parsed program (statements from unparseable chunks omitted).
    pub program: Program,
    /// Dataflow over `program`.
    pub flow: Flow,
    /// Syntax errors first (document order), then lint findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Cache accounting for the update that produced this analysis.
    pub stats: IncrementalStats,
}

/// Chunk-cache accounting for one update.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Top-level chunks in the document.
    pub chunks: usize,
    /// Chunks parsed from scratch this update.
    pub reparsed: usize,
    /// Chunks served from the memo cache.
    pub reused: usize,
}

#[derive(Clone)]
struct ChunkEntry {
    /// Statements parsed from the chunk text in isolation (spans are
    /// chunk-relative).
    stmts: Vec<crate::ast::Stmt>,
    /// Parse failure for this chunk, if any (span chunk-relative).
    error: Option<(String, Span)>,
}

/// A stateful analyzer for one evolving document.
#[derive(Default)]
pub struct DocAnalyzer {
    cache: HashMap<u64, ChunkEntry>,
}

impl DocAnalyzer {
    /// An analyzer with an empty chunk cache.
    pub fn new() -> DocAnalyzer {
        DocAnalyzer::default()
    }

    /// Analyze a document snapshot, reusing chunk parses from previous
    /// updates where the text is unchanged.
    pub fn update(&mut self, source: &str) -> Analysis {
        let toks = lex(source);
        let chunks = chunk_boundaries(&toks);
        let mut next_cache = HashMap::with_capacity(chunks.len());
        let mut program = Program { stmts: Vec::new() };
        let mut syntax = Vec::new();
        let mut stats = IncrementalStats { chunks: chunks.len(), ..Default::default() };

        for c in &chunks {
            let first = &toks[c.start_tok];
            let text = &source[c.start_byte..c.end_byte];
            let key = fnv1a(text.as_bytes());
            let entry = match self.cache.remove(&key) {
                Some(e) => {
                    stats.reused += 1;
                    e
                }
                None => match next_cache.get(&key) {
                    // Duplicate chunk text within one document: the parse
                    // is content-addressed, clone it.
                    Some(e) => {
                        stats.reused += 1;
                        ChunkEntry::clone(e)
                    }
                    None => {
                        stats.reparsed += 1;
                        parse_chunk(text)
                    }
                },
            };
            let base = RebaseOffsets {
                byte: c.start_byte,
                line: first.span.line - 1,
                first_line_col: first.span.col - 1,
            };
            let mut chunk_prog = Program { stmts: entry.stmts.clone() };
            chunk_prog.map_spans(&mut |s| base.rebase(s));
            program.stmts.extend(chunk_prog.stmts);
            if let Some((msg, span)) = &entry.error {
                let mut span = *span;
                base.rebase(&mut span);
                syntax.push(Diagnostic { rule: SYNTAX_ERROR, message: msg.clone(), span });
            }
            next_cache.insert(key, entry);
        }
        self.cache = next_cache;

        let flow = analyze(&program);
        let mut diagnostics = syntax;
        diagnostics.extend(run_lints(&flow));
        Analysis { program, flow, diagnostics, stats }
    }
}

/// One-shot convenience: analyze a source snapshot with no memo state.
/// This is the diagnostic-producing successor of
/// [`lint_source`](crate::lint_source): it never fails — parse errors
/// come back as `syntax-error` diagnostics.
pub fn analyze_source(source: &str) -> Analysis {
    DocAnalyzer::new().update(source)
}

/// Offsets that relocate a chunk-relative span into the document.
struct RebaseOffsets {
    byte: usize,
    line: u32,
    /// Column shift for spans on the chunk's first line (a chunk may
    /// start mid-line after indentation).
    first_line_col: u32,
}

impl RebaseOffsets {
    fn rebase(&self, s: &mut Span) {
        if s == &Span::default() {
            // Spans synthesized by rewrites carry no position; leave them.
            return;
        }
        s.start += self.byte;
        s.end += self.byte;
        if s.line == 1 {
            s.col += self.first_line_col;
        }
        s.line += self.line;
    }
}

struct Chunk {
    start_tok: usize,
    start_byte: usize,
    end_byte: usize,
}

/// Split the token stream into top-level statement chunks.
///
/// A boundary sits before token `t` when the bracket depth is zero, `t`
/// starts a later line than the previous token ends on, the previous
/// token can end a statement (ident/number/string or a closing bracket),
/// and `t` can begin one (ident/number/string — never `.`, an operator,
/// or an opening bracket, which all mark continuations).
fn chunk_boundaries(toks: &[Tok]) -> Vec<Chunk> {
    let mut chunks: Vec<Chunk> = Vec::new();
    let mut depth: i32 = 0;
    for (i, t) in toks.iter().enumerate() {
        let boundary = match i.checked_sub(1).map(|p| &toks[p]) {
            None => true,
            Some(prev) => {
                depth == 0
                    && t.span.line > prev.span.line
                    && can_end_stmt(prev)
                    && can_start_stmt(t)
            }
        };
        if boundary {
            chunks.push(Chunk { start_tok: i, start_byte: t.span.start, end_byte: t.span.end });
        } else if let Some(c) = chunks.last_mut() {
            c.end_byte = c.end_byte.max(t.span.end);
        }
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "{" => depth += 1,
                ")" | "}" => depth = (depth - 1).max(0),
                _ => {}
            }
        }
    }
    chunks
}

fn can_end_stmt(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Ident | TokKind::Num | TokKind::Str)
        || matches!(t.text.as_str(), ")" | "}")
}

fn can_start_stmt(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Ident | TokKind::Num | TokKind::Str)
}

fn parse_chunk(text: &str) -> ChunkEntry {
    match parse(text) {
        Ok(prog) => ChunkEntry { stmts: prog.stmts, error: None },
        Err(e) => ChunkEntry { stmts: Vec::new(), error: Some((e.msg, e.span)) },
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "val sc = new SparkContext(sparkConf)\n\
                       val parsed = sc.textFile(p).map(x => x)\n\
                       val a = parsed.count\n\
                       val b = parsed.count\n";

    #[test]
    fn incremental_matches_from_scratch_including_spans() {
        let mut doc = DocAnalyzer::new();
        let cold = doc.update(SRC);
        assert_eq!(cold.program, parse(SRC).expect("full parse"));
        // Warm path: identical text must reuse every chunk and still
        // rebase to identical spans.
        let warm = doc.update(SRC);
        assert_eq!(warm.program, parse(SRC).expect("full parse"));
        assert_eq!(warm.stats.reparsed, 0);
        assert_eq!(warm.stats.reused, warm.stats.chunks);
    }

    #[test]
    fn single_edit_reparses_one_chunk() {
        let mut doc = DocAnalyzer::new();
        doc.update(SRC);
        let edited = SRC.replace("val a = parsed.count", "val a = parsed.first");
        let out = doc.update(&edited);
        assert_eq!(out.stats.reparsed, 1);
        assert_eq!(out.stats.reused, out.stats.chunks - 1);
        assert_eq!(out.program, parse(&edited).expect("full parse"));
    }

    #[test]
    fn broken_statement_degrades_to_a_syntax_error_diagnostic() {
        let mut doc = DocAnalyzer::new();
        let broken = SRC.replace("val b = parsed.count", "val b = parsed.count(");
        let out = doc.update(&broken);
        let syn: Vec<_> = out.diagnostics.iter().filter(|d| d.rule == SYNTAX_ERROR).collect();
        assert_eq!(syn.len(), 1);
        assert_eq!(syn[0].span.line, 4);
        // The other statements still parse and lint: `parsed` now has a
        // single trigger site, so uncached-reuse stays quiet, but the
        // program itself is intact.
        assert_eq!(out.program.stmts.len(), 3);
    }

    #[test]
    fn multi_line_statements_stay_in_one_chunk() {
        let src = "val sc = new SparkContext(sparkConf)\n\
                   val x = sc.textFile(p)\n  .map(x => x)\n\
                   val n = x.count\n";
        let out = analyze_source(src);
        assert_eq!(out.program, parse(src).expect("full parse"));
        assert_eq!(out.stats.chunks, 3);
    }

    #[test]
    fn indented_first_line_rebases_columns() {
        let src = "val sc = new SparkContext(sparkConf)\n  val n = sc.textFile(p).count\n";
        let out = analyze_source(src);
        assert_eq!(out.program, parse(src).expect("full parse"));
    }

    #[test]
    fn empty_and_comment_only_sources_are_clean() {
        for src in ["", "\n\n", "// just a comment\n"] {
            let out = analyze_source(src);
            assert!(out.program.stmts.is_empty());
            assert!(out.diagnostics.is_empty());
        }
    }
}

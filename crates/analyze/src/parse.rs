//! Recursive-descent parser for the Scala-like workload subset.
//!
//! Grammar (whitespace-insensitive; `;` separates statements optionally):
//!
//! ```text
//! program  := stmt*
//! stmt     := "val" pat "=" expr | expr
//! pat      := "_" | ident ["(" pat,* ")"] | "(" pat,* ")"
//! expr     := binary ["=>" expr]            (lambda when lhs is a param list)
//! binary   := postfix (binop postfix)*      (precedence-climbing)
//! postfix  := primary ("." ident [args] | "(" arg,* ")" | "{" braceBody "}"
//!              | "match" "{" case* "}")*
//! primary  := num | str | char | "s"str | "_" | ident
//!           | "new" ident ("." ident)* [args]
//!           | "(" expr,* ")" | "{" braceBody "}" | ("-" | "!") postfix
//! args     := "(" arg,* ")" | "{" braceBody "}"
//! arg      := [ident "="] expr
//! braceBody:= case+ | pat "=>" stmt* | stmt*
//! ```

use crate::ast::{binop_power, Arg, Case, Expr, Pat, Program, Stmt};
use crate::lex::{lex, Span, Tok, TokKind};
use std::fmt;

/// A parse failure with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Location of the offending token (or EOF).
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.span.line, self.span.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a whole program.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let toks = lex(source);
    let mut p = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        if p.eat_punct(";") {
            continue;
        }
        stmts.push(p.stmt()?);
    }
    Ok(Program { stmts })
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off)
    }

    fn eof_span(&self) -> Span {
        self.toks.last().map(|t| t.span).unwrap_or_default()
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            msg: msg.into(),
            span: self.peek().map(|t| t.span).unwrap_or_else(|| self.eof_span()),
        })
    }

    fn is_ident(&self, text: &str) -> bool {
        matches!(self.peek(), Some(t) if t.kind == TokKind::Ident && t.text == text)
    }

    fn is_punct(&self, text: &str) -> bool {
        matches!(self.peek(), Some(t) if t.kind == TokKind::Punct && t.text == text)
    }

    fn eat_ident(&mut self, text: &str) -> bool {
        if self.is_ident(text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_punct(&mut self, text: &str) -> bool {
        if self.is_punct(text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, text: &str) -> Result<Span, ParseError> {
        if self.is_punct(text) {
            let s = self.toks[self.pos].span;
            self.pos += 1;
            Ok(s)
        } else {
            self.err(format!("expected `{text}`"))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let out = (t.text.clone(), t.span);
                self.pos += 1;
                Ok(out)
            }
            _ => self.err("expected identifier"),
        }
    }

    /// Two-character operator lookahead: merges adjacent single-char punct
    /// tokens (`=` `>` → `=>`) when they touch in the source.
    fn peek_op2(&self) -> Option<(String, usize)> {
        let a = self.peek()?;
        if a.kind != TokKind::Punct {
            return None;
        }
        if let Some(b) = self.peek_at(1) {
            if b.kind == TokKind::Punct && b.span.start == a.span.end {
                let two = format!("{}{}", a.text, b.text);
                if matches!(two.as_str(), "=>" | "==" | "!=" | "<=" | ">=" | "&&" | "||" | "->") {
                    return Some((two, 2));
                }
            }
        }
        Some((a.text.clone(), 1))
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if let Some((t, n)) = self.peek_op2() {
            if t == op {
                self.pos += n;
                return true;
            }
        }
        false
    }

    // ----- statements -----

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.is_ident("val") {
            let start = self.toks[self.pos].span;
            self.pos += 1;
            let pat = self.pattern()?;
            if !self.eat_op("=") {
                return self.err("expected `=` after val pattern");
            }
            let value = self.expr()?;
            let span = start.to(value.span());
            return Ok(Stmt::Val { pat, value, span });
        }
        Ok(Stmt::Expr(self.expr()?))
    }

    // ----- patterns -----

    fn pattern(&mut self) -> Result<Pat, ParseError> {
        if self.eat_punct("(") {
            let ps = self.pattern_list()?;
            self.expect_punct(")")?;
            return Ok(if ps.len() == 1 { ps.into_iter().next().unwrap() } else { Pat::Tuple(ps) });
        }
        let (name, _) = self.expect_ident()?;
        if name == "_" {
            return Ok(Pat::Wild);
        }
        if self.eat_punct("(") {
            let ps = self.pattern_list()?;
            self.expect_punct(")")?;
            return Ok(Pat::Ctor(name, ps));
        }
        Ok(Pat::Ident(name))
    }

    fn pattern_list(&mut self) -> Result<Vec<Pat>, ParseError> {
        let mut ps = vec![self.pattern()?];
        while self.eat_punct(",") {
            ps.push(self.pattern()?);
        }
        Ok(ps)
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.binary(1)?;
        if matches!(self.peek_op2(), Some((ref t, _)) if t == "=>") {
            if let Some(params) = expr_as_params(&lhs) {
                self.eat_op("=>");
                let body = self.expr()?;
                let span = lhs.span().to(body.span());
                return Ok(Expr::Lambda { params, body: Box::new(body), span });
            }
        }
        Ok(lhs)
    }

    fn binary(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.postfix()?;
        while let Some((op, n)) = self.peek_op2() {
            if op == "=>" {
                break;
            }
            let Some(bp) = binop_power(&op) else { break };
            if bp < min_bp {
                break;
            }
            self.pos += n;
            let rhs = self.binary(bp + 1)?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.is_ident("match") && matches!(self.peek_at(1), Some(t) if t.text == "{") {
                self.pos += 1;
                self.expect_punct("{")?;
                let cases = self.cases()?;
                let end = self.expect_punct("}")?;
                let span = e.span().to(end);
                e = Expr::Match { scrutinee: Box::new(e), cases, span };
                continue;
            }
            match self.peek().map(|t| (t.kind, t.text.clone())) {
                Some((TokKind::Dot, _)) => {
                    // Decimal literal split by the lexer: `0` `.` `15`.
                    if let Expr::Num(ref n, s) = e {
                        if let (Some(d), Some(f)) = (self.peek(), self.peek_at(1)) {
                            if f.kind == TokKind::Num
                                && d.span.start == s.end
                                && f.span.start == d.span.end
                            {
                                let text = format!("{n}.{}", f.text);
                                let span = s.to(f.span);
                                self.pos += 2;
                                e = Expr::Num(text, span);
                                continue;
                            }
                        }
                    }
                    self.pos += 1;
                    let (name, nspan) = self.expect_ident()?;
                    if self.is_punct("(") {
                        let (args, end) = self.paren_args()?;
                        let span = e.span().to(end);
                        e = Expr::Method { recv: Box::new(e), name, args, brace: false, span };
                    } else if self.is_punct("{") {
                        let (arg, end) = self.brace_arg()?;
                        let span = e.span().to(end);
                        e = Expr::Method {
                            recv: Box::new(e),
                            name,
                            args: vec![Arg { name: None, value: arg }],
                            brace: true,
                            span,
                        };
                    } else {
                        let span = e.span().to(nspan);
                        e = Expr::Field { recv: Box::new(e), name, span };
                    }
                }
                Some((TokKind::Punct, ref t)) if t == "(" => {
                    let (args, end) = self.paren_args()?;
                    let span = e.span().to(end);
                    e = Expr::Apply { f: Box::new(e), args, span };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn paren_args(&mut self) -> Result<(Vec<Arg>, Span), ParseError> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.is_punct(")") {
            loop {
                args.push(self.arg()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        let end = self.expect_punct(")")?;
        Ok((args, end))
    }

    fn arg(&mut self) -> Result<Arg, ParseError> {
        // Named argument: `ident = expr` where `=` is not `==`/`=>`.
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Ident && t.text != "_" {
                if let Some(eq) = self.peek_at(1) {
                    let two_char = self
                        .peek_at(2)
                        .is_some_and(|c| c.kind == TokKind::Punct && c.span.start == eq.span.end);
                    if eq.kind == TokKind::Punct && eq.text == "=" && !two_char {
                        let name = t.text.clone();
                        self.pos += 2;
                        let value = self.expr()?;
                        return Ok(Arg { name: Some(name), value });
                    }
                }
            }
        }
        Ok(Arg { name: None, value: self.expr()? })
    }

    /// Parse `{ … }` used as a call argument: case clauses, a block
    /// lambda, or a plain block.
    fn brace_arg(&mut self) -> Result<(Expr, Span), ParseError> {
        let start = self.expect_punct("{")?;
        if self.is_ident("case") {
            let cases = self.cases()?;
            let end = self.expect_punct("}")?;
            return Ok((Expr::Cases(cases, start.to(end)), start.to(end)));
        }
        // Block lambda `{ p => stmt* }`: detect `ident =>` / `(p, q) =>`.
        let save = self.pos;
        if let Ok(pat) = self.pattern() {
            if self.eat_op("=>") {
                let mut stmts = Vec::new();
                while !self.is_punct("}") && !self.at_end() {
                    if self.eat_punct(";") {
                        continue;
                    }
                    stmts.push(self.stmt()?);
                }
                let end = self.expect_punct("}")?;
                let span = start.to(end);
                let body = match stmts.len() {
                    1 => match stmts.into_iter().next().unwrap() {
                        Stmt::Expr(e) => e,
                        s => Expr::Block(vec![s], span),
                    },
                    _ => Expr::Block(stmts, span),
                };
                let params = match pat {
                    Pat::Tuple(ps) => ps,
                    p => vec![p],
                };
                return Ok((Expr::Lambda { params, body: Box::new(body), span }, span));
            }
        }
        self.pos = save;
        let mut stmts = Vec::new();
        while !self.is_punct("}") && !self.at_end() {
            if self.eat_punct(";") {
                continue;
            }
            stmts.push(self.stmt()?);
        }
        let end = self.expect_punct("}")?;
        Ok((Expr::Block(stmts, start.to(end)), start.to(end)))
    }

    fn cases(&mut self) -> Result<Vec<Case>, ParseError> {
        let mut cases = Vec::new();
        while self.eat_ident("case") {
            let pat = self.pattern()?;
            if !self.eat_op("=>") {
                return self.err("expected `=>` in case clause");
            }
            let mut stmts = Vec::new();
            while !self.is_punct("}") && !self.is_ident("case") && !self.at_end() {
                if self.eat_punct(";") {
                    continue;
                }
                stmts.push(self.stmt()?);
            }
            let body = match stmts.len() {
                1 => match stmts.into_iter().next().unwrap() {
                    Stmt::Expr(e) => e,
                    s => Expr::Block(vec![s], Span::default()),
                },
                _ => Expr::Block(stmts, Span::default()),
            };
            cases.push(Case { pat, body });
        }
        if cases.is_empty() {
            return self.err("expected `case` clause");
        }
        Ok(cases)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let Some(t) = self.peek().cloned() else {
            return self.err("unexpected end of input");
        };
        match t.kind {
            TokKind::Num => {
                self.pos += 1;
                Ok(Expr::Num(t.text, t.span))
            }
            TokKind::Str => {
                self.pos += 1;
                Ok(Expr::Str(t.text, t.span))
            }
            TokKind::Ident if t.text == "new" => {
                self.pos += 1;
                let (first, fs) = self.expect_ident()?;
                let mut path = vec![first];
                let mut span = t.span.to(fs);
                while matches!(self.peek(), Some(d) if d.kind == TokKind::Dot)
                    && matches!(self.peek_at(1), Some(i) if i.kind == TokKind::Ident)
                {
                    self.pos += 1;
                    let (seg, ss) = self.expect_ident()?;
                    path.push(seg);
                    span = span.to(ss);
                }
                let args = if self.is_punct("(") {
                    let (a, end) = self.paren_args()?;
                    span = span.to(end);
                    Some(a)
                } else {
                    None
                };
                Ok(Expr::New { path, args, span })
            }
            TokKind::Ident if t.text == "_" => {
                self.pos += 1;
                Ok(Expr::Under(t.span))
            }
            TokKind::Ident if t.text == "s" => {
                // String interpolation `s"…"` — only when the quote touches
                // the `s`.
                if let Some(n) = self.peek_at(1) {
                    if n.kind == TokKind::Str && n.span.start == t.span.end {
                        let out = Expr::Interp(n.text.clone(), t.span.to(n.span));
                        self.pos += 2;
                        return Ok(out);
                    }
                }
                self.pos += 1;
                Ok(Expr::Ident(t.text, t.span))
            }
            TokKind::Ident => {
                self.pos += 1;
                Ok(Expr::Ident(t.text, t.span))
            }
            TokKind::Punct if t.text == "(" => {
                self.pos += 1;
                let mut es = vec![self.expr()?];
                while self.eat_punct(",") {
                    es.push(self.expr()?);
                }
                let end = self.expect_punct(")")?;
                if es.len() == 1 {
                    Ok(es.into_iter().next().unwrap())
                } else {
                    Ok(Expr::Tuple(es, t.span.to(end)))
                }
            }
            TokKind::Punct if t.text == "{" => {
                let (e, _) = self.brace_arg()?;
                Ok(e)
            }
            TokKind::Punct if t.text == "'" => {
                // Character literal: collect token texts to the closing
                // quote (contents beyond identity are irrelevant here).
                self.pos += 1;
                let mut content = String::new();
                let mut span = t.span;
                while let Some(n) = self.peek() {
                    if n.kind == TokKind::Punct && n.text == "'" {
                        span = span.to(n.span);
                        self.pos += 1;
                        return Ok(Expr::Char(content, span));
                    }
                    content.push_str(&n.text);
                    span = span.to(n.span);
                    self.pos += 1;
                }
                Ok(Expr::Char(content, span))
            }
            TokKind::Punct if t.text == "-" || t.text == "!" => {
                self.pos += 1;
                let inner = self.postfix()?;
                let span = t.span.to(inner.span());
                Ok(Expr::Unary { op: t.text, expr: Box::new(inner), span })
            }
            _ => self.err(format!("unexpected token `{}`", t.text)),
        }
    }
}

/// Interpret an already-parsed expression as a lambda parameter list, if it
/// has that shape (`x`, `_`, `(a, b)`).
fn expr_as_params(e: &Expr) -> Option<Vec<Pat>> {
    match e {
        Expr::Ident(n, _) => Some(vec![Pat::Ident(n.clone())]),
        Expr::Under(_) => Some(vec![Pat::Wild]),
        Expr::Tuple(es, _) => {
            let mut ps = Vec::new();
            for x in es {
                match x {
                    Expr::Ident(n, _) => ps.push(Pat::Ident(n.clone())),
                    Expr::Under(_) => ps.push(Pat::Wild),
                    _ => return None,
                }
            }
            Some(ps)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("{e}\nsource: {src}"))
    }

    #[test]
    fn parses_val_and_method_chain() {
        let prog = p("val x = rdd.map(f).reduceByKey(g)");
        assert_eq!(prog.stmts.len(), 1);
        let Stmt::Val { pat: Pat::Ident(n), value, .. } = &prog.stmts[0] else {
            panic!("not a val")
        };
        assert_eq!(n, "x");
        let Expr::Method { name, recv, .. } = value else { panic!("not a method") };
        assert_eq!(name, "reduceByKey");
        assert!(matches!(**recv, Expr::Method { ref name, .. } if name == "map"));
    }

    #[test]
    fn parses_lambdas_and_underscores() {
        let prog = p("rdd.map(s => s.toDouble).reduce(_ + _)");
        let Stmt::Expr(Expr::Method { args, .. }) = &prog.stmts[0] else { panic!() };
        assert!(matches!(args[0].value, Expr::Binary { .. }));
        let prog = p("ranks.sortBy(_._2, ascending = false).take(topK)");
        let Stmt::Expr(Expr::Method { name, recv, .. }) = &prog.stmts[0] else { panic!() };
        assert_eq!(name, "take");
        let Expr::Method { args, .. } = &**recv else { panic!() };
        assert_eq!(args[1].name.as_deref(), Some("ascending"));
    }

    #[test]
    fn parses_case_blocks_and_interp() {
        let prog = p(r#"top.foreach { case (id, rank) => println(s"$id has rank $rank") }"#);
        let Stmt::Expr(Expr::Method { args, brace, .. }) = &prog.stmts[0] else { panic!() };
        assert!(brace);
        let Expr::Cases(cases, _) = &args[0].value else { panic!("not cases") };
        assert!(matches!(cases[0].pat, Pat::Tuple(_)));
    }

    #[test]
    fn parses_match_and_new_with_path() {
        let prog = p(
            "val r = sc.textFile(p).map(_.split(d) match { case Array(a, b) => Rating(a, b) })\n\
             val c = new SVDPlusPlus.Conf(rank)",
        );
        assert_eq!(prog.stmts.len(), 2);
        let Stmt::Val { value: Expr::New { path, .. }, .. } = &prog.stmts[1] else { panic!() };
        assert_eq!(path, &["SVDPlusPlus", "Conf"]);
    }

    #[test]
    fn parses_decimals_chars_and_division() {
        let prog = p("graph.staticPageRank(n, resetProb = 0.15)");
        let Stmt::Expr(Expr::Method { args, .. }) = &prog.stmts[0] else { panic!() };
        assert!(matches!(&args[1].value, Expr::Num(n, _) if n == "0.15"));
        let prog = p("val t = counts.map(x => x).reduce(f) / 3");
        assert!(matches!(
            &prog.stmts[0],
            Stmt::Val { value: Expr::Binary { op, .. }, .. } if op == "/"
        ));
        let prog = p("s.split(' ')");
        let Stmt::Expr(Expr::Method { args, .. }) = &prog.stmts[0] else { panic!() };
        assert!(matches!(&args[0].value, Expr::Char(c, _) if c.is_empty()));
    }

    #[test]
    fn reports_errors_with_spans() {
        let e = parse("val x = ").unwrap_err();
        assert!(e.msg.contains("unexpected end"));
        let e = parse("val = 3").unwrap_err();
        assert_eq!(e.span.line, 1);
    }

    #[test]
    fn block_lambda_with_statements() {
        let prog = p("val e = sc.textFile(p).map { line =>\n  val f = line.split(d)\n  Edge(f) }");
        let Stmt::Val { value: Expr::Method { args, brace: true, .. }, .. } = &prog.stmts[0] else {
            panic!()
        };
        let Expr::Lambda { body, .. } = &args[0].value else { panic!("not a lambda") };
        assert!(matches!(**body, Expr::Block(ref ss, _) if ss.len() == 2));
    }
}

//! Library knowledge base: per-API stage pipelines.
//!
//! A recognized library call (`KMeans.train`, `graph.staticPageRank`, …)
//! expands into the same stage templates the simulator's physical planner
//! produces for it. Each pipeline has two parts: a *materialization* stage
//! derived from the input's real lineage (what the first job computes on
//! its way into the library), and the library's own internal stages, which
//! are fixed per API — that is exactly the knowledge a static analyzer has
//! to carry, because the library internals are not present in user source.

use crate::dataflow::{ActionKind, ApiKind, ChainOp, Flow, LibCall, RegKind, SourceKind};
use lite_sparksim::plan::OpKind;

/// One stage emission: template name + operator chain (one instance).
pub type StageEmit = (String, Vec<OpKind>);

/// Expand a library call into stage emissions, in scheduler order.
///
/// `iters` is the iteration count the caller wants the expansion for
/// (dataset-tier dependent, so it cannot come from the source text).
pub fn lib_pipeline(flow: &Flow, call: &LibCall, iters: usize) -> Vec<StageEmit> {
    let it = iters.max(1);
    let mut out: Vec<StageEmit> = Vec::new();
    match call.api {
        ApiKind::KMeansTrain => {
            out.push(ml_mat(flow, call.input));
            push_n(&mut out, it, "km-assign", &[OpKind::MapPartitions, OpKind::TreeAggregate]);
        }
        ApiKind::ComputeCost => {
            out.push(("compute-cost".into(), vec![OpKind::MapPartitions, OpKind::TreeReduce]));
        }
        ApiKind::RegressionRun(kind) => {
            out.push(ml_mat(flow, call.input));
            let name = match kind {
                RegKind::Linear => "lir-gradient",
                RegKind::Logistic => "lor-gradient",
                RegKind::Svm => "svm-gradient",
            };
            push_n(&mut out, it, name, &[OpKind::MapPartitions, OpKind::TreeAggregate]);
        }
        ApiKind::PredictEval(_) => {
            out.push(("predict-eval".into(), vec![OpKind::Map, OpKind::Count]));
        }
        ApiKind::DecisionTreeTrain => {
            out.push(ml_mat(flow, call.input));
            for _ in 0..it {
                out.push((
                    "dt-aggregate-stats".into(),
                    vec![OpKind::MapPartitions, OpKind::AggregateByKey],
                ));
                out.push((
                    "dt-best-split".into(),
                    vec![OpKind::ShuffledRdd, OpKind::ReduceByKey, OpKind::CollectAsMap],
                ));
            }
        }
        ApiKind::AlsTrain => {
            let mut ops = lineage_ops(flow, call.input);
            ops.push(OpKind::KeyBy);
            out.push(("parse-ratings".into(), ops));
            let als =
                [OpKind::ShuffledRdd, OpKind::Join, OpKind::AggregateByKey, OpKind::MapValues];
            for _ in 0..it {
                out.push(("als-update-users".into(), als.to_vec()));
                out.push(("als-update-items".into(), als.to_vec()));
            }
        }
        ApiKind::SvdPlusPlus => {
            let mut ops = lineage_ops(flow, call.input);
            ops.push(OpKind::PartitionBy);
            out.push(("build-graph".into(), ops));
            out.push((
                "init-latent".into(),
                vec![OpKind::ShuffledRdd, OpKind::MapValues, OpKind::Cache],
            ));
            push_n(
                &mut out,
                it,
                "svdpp-gradient",
                &[OpKind::AggregateMessages, OpKind::JoinVertices, OpKind::MapValues],
            );
        }
        ApiKind::StaticPageRank => {
            out.push(graph_mat(flow, call.input));
            out.push(("init-ranks".into(), vec![OpKind::ShuffledRdd, OpKind::MapValues]));
            for _ in 0..it {
                out.push(("pr-contrib".into(), vec![OpKind::Join, OpKind::FlatMap]));
                out.push((
                    "pr-update".into(),
                    vec![OpKind::ShuffledRdd, OpKind::ReduceByKey, OpKind::MapValues],
                ));
            }
            if has_sorted_take_followup(flow, call) {
                out.push(("top-ranks".into(), vec![OpKind::SortByKey, OpKind::Take]));
            }
        }
        ApiKind::TriangleCount => {
            out.push(graph_mat(flow, call.input));
            out.push((
                "build-adjacency".into(),
                vec![OpKind::ShuffledRdd, OpKind::GroupByKey, OpKind::MapValues],
            ));
            out.push((
                "join-neighbor-sets".into(),
                vec![OpKind::ShuffledRdd, OpKind::Join, OpKind::FlatMap],
            ));
            out.push((
                "count-triangles".into(),
                vec![OpKind::ShuffledRdd, OpKind::TriangleCountOp, OpKind::Map, OpKind::TreeReduce],
            ));
        }
        ApiKind::ConnectedComponents => {
            out.push(graph_mat(flow, call.input));
            for _ in 0..it {
                out.push((
                    "cc-min-label".into(),
                    vec![
                        OpKind::ConnectedComponentsOp,
                        OpKind::AggregateMessages,
                        OpKind::ReduceByKey,
                    ],
                ));
                out.push((
                    "cc-apply".into(),
                    vec![OpKind::ShuffledRdd, OpKind::JoinVertices, OpKind::MapValues],
                ));
            }
        }
        ApiKind::StronglyConnectedComponents => {
            out.push(graph_mat(flow, call.input));
            let reach = [OpKind::Pregel, OpKind::AggregateMessages, OpKind::Join];
            for _ in 0..it {
                out.push((
                    "scc-trim".into(),
                    vec![OpKind::SubGraph, OpKind::Filter, OpKind::Count],
                ));
                for _ in 0..3 {
                    out.push(("scc-forward-reach".into(), reach.to_vec()));
                }
                for _ in 0..3 {
                    out.push(("scc-backward-reach".into(), reach.to_vec()));
                }
                out.push((
                    "scc-label".into(),
                    vec![OpKind::ShuffledRdd, OpKind::ReduceByKey, OpKind::JoinVertices],
                ));
            }
        }
        ApiKind::ShortestPaths => {
            out.push(graph_mat(flow, call.input));
            push_n(
                &mut out,
                it,
                "sp-pregel-step",
                &[OpKind::Pregel, OpKind::AggregateMessages, OpKind::Join, OpKind::MapValues],
            );
        }
        ApiKind::LabelPropagation => {
            out.push(graph_mat(flow, call.input));
            for _ in 0..it {
                out.push((
                    "lp-send-labels".into(),
                    vec![OpKind::AggregateMessages, OpKind::FlatMap],
                ));
                out.push((
                    "lp-adopt-label".into(),
                    vec![OpKind::ShuffledRdd, OpKind::ReduceByKey, OpKind::JoinVertices],
                ));
            }
        }
    }
    out
}

fn push_n(out: &mut Vec<StageEmit>, n: usize, name: &str, ops: &[OpKind]) {
    for _ in 0..n {
        out.push((name.into(), ops.to_vec()));
    }
}

/// ML-style materialization: the input lineage parsed and cached
/// ("parse-cache" in the physical planner).
fn ml_mat(flow: &Flow, input: usize) -> StageEmit {
    let mut ops = lineage_ops(flow, input);
    if lineage_cached(flow, input) {
        ops.push(OpKind::Cache);
    }
    ("parse-cache".into(), ops)
}

/// Graph materialization: edge-list loading is the library's own job, so
/// its shape depends only on orientation and caching — explicit
/// re-partitioning of the loaded graph is absorbed into it.
fn graph_mat(flow: &Flow, input: usize) -> StageEmit {
    let canonical = flow
        .lineage(input)
        .first()
        .map(|&root| {
            matches!(flow.nodes[root].op, ChainOp::Source(SourceKind::EdgeList { canonical: true }))
        })
        .unwrap_or(false);
    if canonical {
        ("canonical-edges".into(), vec![OpKind::TextFile, OpKind::Map, OpKind::Distinct])
    } else {
        let mut ops = vec![OpKind::TextFile, OpKind::Map, OpKind::PartitionBy];
        if lineage_cached(flow, input) {
            ops.push(OpKind::Cache);
        }
        ("load-edges".into(), ops)
    }
}

/// Operator chain of a lineage, root first. Library load helpers expand to
/// their physical shape (`loadLibSVMFile` parses, so `TextFile, Map`).
pub fn lineage_ops(flow: &Flow, node: usize) -> Vec<OpKind> {
    let mut ops = Vec::new();
    for id in flow.lineage(node) {
        match flow.nodes[id].op {
            ChainOp::Source(SourceKind::TextFile) => ops.push(OpKind::TextFile),
            ChainOp::Source(SourceKind::LibSvm | SourceKind::LabeledPoints) => {
                ops.push(OpKind::TextFile);
                ops.push(OpKind::Map);
            }
            ChainOp::Source(SourceKind::EdgeList { .. }) => {
                ops.push(OpKind::TextFile);
                ops.push(OpKind::Map);
            }
            ChainOp::Map { keyby: true, .. } => {
                ops.push(OpKind::Map);
                ops.push(OpKind::KeyBy);
            }
            ChainOp::Map { value_proj: true, .. } => ops.push(OpKind::MapValues),
            ChainOp::Map { .. } => ops.push(OpKind::Map),
            ChainOp::FlatMap => ops.push(OpKind::FlatMap),
            ChainOp::MapValues => ops.push(OpKind::MapValues),
            ChainOp::Filter => ops.push(OpKind::Filter),
            ChainOp::Distinct => ops.push(OpKind::Distinct),
            ChainOp::Sample => ops.push(OpKind::Sample),
            ChainOp::GroupByKey => ops.push(OpKind::GroupByKey),
            ChainOp::ReduceByKey => ops.push(OpKind::ReduceByKey),
            ChainOp::AggregateByKey => ops.push(OpKind::AggregateByKey),
            ChainOp::SortByKey | ChainOp::SortBy => ops.push(OpKind::SortByKey),
            ChainOp::RepartitionAndSort { .. } => ops.push(OpKind::RepartitionAndSort),
            ChainOp::PartitionBy => ops.push(OpKind::PartitionBy),
            ChainOp::Repartition => ops.push(OpKind::Repartition),
            ChainOp::Coalesce => ops.push(OpKind::Coalesce),
            ChainOp::KeyBy => ops.push(OpKind::KeyBy),
            ChainOp::Join => ops.push(OpKind::Join),
            ChainOp::Vertices | ChainOp::LibResult(_) | ChainOp::Opaque => {}
        }
    }
    ops
}

fn lineage_cached(flow: &Flow, node: usize) -> bool {
    flow.lineage(node).iter().any(|&id| flow.nodes[id].cached)
}

/// Does any visible `take` action sort-then-sample this call's result?
/// (PageRank's `ranks.sortBy(…).take(k)` follow-up job.)
fn has_sorted_take_followup(flow: &Flow, call: &LibCall) -> bool {
    let Some(result) = call.result else { return false };
    flow.actions.iter().any(|a| {
        if a.kind != ActionKind::Take {
            return false;
        }
        let chain = flow.lineage(a.node);
        chain.first() == Some(&result)
            && chain.iter().any(|&id| matches!(flow.nodes[id].op, ChainOp::SortBy))
    })
}

/// Stage-template names for the generic (library-free) stage cutter, per
/// application. Returns `None` for unknown apps (caller falls back to
/// positional names).
pub fn generic_stage_name(app: Option<&str>, role: GenericRole) -> Option<&'static str> {
    match (app?, role) {
        ("TeraSort", GenericRole::PreSample) => Some("sample-bounds"),
        ("TeraSort", GenericRole::PreCount) => Some("count-records"),
        ("TeraSort", GenericRole::MapSide) => Some("partition-records"),
        ("TeraSort", GenericRole::Sort) => Some("sort-partitions"),
        ("Sort", GenericRole::MapSide) => Some("key-lines"),
        ("Sort", GenericRole::Sort) => Some("sort-by-key"),
        ("Sort", GenericRole::Result) => Some("save-output"),
        _ => None,
    }
}

/// Role a generically-cut stage plays in its job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenericRole {
    /// Range-sampling pre-job (terasort).
    PreSample,
    /// Record-count pre-job (terasort).
    PreCount,
    /// Map side of the shuffle.
    MapSide,
    /// The shuffle/sort stage itself.
    Sort,
    /// Post-sort result stage.
    Result,
}

//! Semantic lints over the dataflow graph.
//!
//! Five rules, each keyed to a tuning-relevant anti-pattern. All rules are
//! span-accurate: a diagnostic points at the defining expression of the
//! offending lineage node (or the action site). The clean 15-app corpus
//! produces zero diagnostics — asserted by an integration test in
//! `lite-workloads` — so every firing is signal.

use crate::dataflow::{ActionKind, ChainOp, Flow};
use crate::lex::Span;
use serde::{Deserialize, Serialize};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule id (kebab-case).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Source location of the offending definition or call.
    pub span: Span,
}

/// R1: a named RDD recomputed by ≥ 2 job sites without `cache()`.
pub const UNCACHED_REUSE: &str = "uncached-reuse";
/// R2: a wide shuffle straight off raw, uncombined lineage (or a
/// `repartition` immediately feeding another shuffle).
pub const REDUNDANT_SHUFFLE: &str = "redundant-shuffle";
/// R3: `collect()` on data no operator has reduced, filtered, or sampled.
pub const COLLECT_UNREDUCED: &str = "collect-unreduced";
/// R4: a key-preserving `map` that silently drops the parent's
/// partitioner before a key-wide operation (use `mapValues`).
pub const PARTITIONER_LOSS: &str = "partitioner-loss";
/// R5: `cache()` on an RDD only ever consumed once.
pub const SINGLE_USE_CACHE: &str = "single-use-cache";
/// A chunk of the document that failed to parse (emitted by incremental
/// analysis, never by [`run_lints`] — the dataflow pass only sees code
/// that parsed).
pub const SYNTAX_ERROR: &str = "syntax-error";

/// Run every rule; diagnostics come out grouped by rule, then in node
/// order within a rule.
pub fn run_lints(flow: &Flow) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    uncached_reuse(flow, &mut out);
    redundant_shuffle(flow, &mut out);
    collect_unreduced(flow, &mut out);
    partitioner_loss(flow, &mut out);
    single_use_cache(flow, &mut out);
    out
}

fn uncached_reuse(flow: &Flow, out: &mut Vec<Diagnostic>) {
    for n in &flow.nodes {
        if n.cached || n.trigger_sites < 2 {
            continue;
        }
        let Some(name) = &n.var_name else { continue };
        out.push(Diagnostic {
            rule: UNCACHED_REUSE,
            message: format!(
                "`{name}` is recomputed by {} separate jobs but never cached; \
                 add `.cache()` after its definition",
                n.trigger_sites
            ),
            span: n.def_span,
        });
    }
}

fn redundant_shuffle(flow: &Flow, out: &mut Vec<Diagnostic>) {
    for n in &flow.nodes {
        match n.op {
            ChainOp::GroupByKey => {
                // Upstream to the root (or nearest cache): any combining or
                // wide op already shrank/partitioned the data?
                let combined = upstream(flow, n.id)
                    .any(|id| flow.nodes[id].op.reducing() || flow.nodes[id].op.wide());
                if !combined {
                    out.push(Diagnostic {
                        rule: REDUNDANT_SHUFFLE,
                        message: "groupByKey shuffles raw, uncombined records; \
                                  reduceByKey/aggregateByKey combine map-side first"
                            .to_string(),
                        span: n.def_span,
                    });
                }
            }
            ChainOp::Repartition
                if flow.children(n.id).iter().any(|&c| flow.nodes[c].op.wide()) =>
            {
                out.push(Diagnostic {
                    rule: REDUNDANT_SHUFFLE,
                    message: "repartition immediately feeds another shuffle; \
                              drop it or fold the partitioning into the wide op"
                        .to_string(),
                    span: n.def_span,
                });
            }
            _ => {}
        }
    }
}

fn collect_unreduced(flow: &Flow, out: &mut Vec<Diagnostic>) {
    for a in &flow.actions {
        if !matches!(a.kind, ActionKind::Collect | ActionKind::CollectAsMap) {
            continue;
        }
        let chain = flow.lineage(a.node);
        let reduced = chain.iter().any(|&id| {
            matches!(flow.nodes[id].op, ChainOp::LibResult(_)) || flow.nodes[id].op.reducing()
        });
        if !reduced {
            out.push(Diagnostic {
                rule: COLLECT_UNREDUCED,
                message: "collect() pulls the full un-reduced dataset to the driver; \
                          filter/sample/aggregate first, or use take(n)"
                    .to_string(),
                span: a.span,
            });
        }
    }
}

fn partitioner_loss(flow: &Flow, out: &mut Vec<Diagnostic>) {
    for n in &flow.nodes {
        let ChainOp::Map { key_preserving: true, .. } = n.op else { continue };
        let Some(parent) = n.parent else { continue };
        if !flow.nodes[parent].has_partitioner {
            continue;
        }
        // Only a problem if the keys get shuffled again downstream.
        let key_wide_downstream = descendants(flow, n.id).into_iter().any(|id| {
            matches!(
                flow.nodes[id].op,
                ChainOp::GroupByKey
                    | ChainOp::ReduceByKey
                    | ChainOp::AggregateByKey
                    | ChainOp::SortByKey
                    | ChainOp::Join
            )
        });
        if key_wide_downstream {
            out.push(Diagnostic {
                rule: PARTITIONER_LOSS,
                message: "map over a partitioned pair RDD keeps the keys but drops the \
                          partitioner, forcing a re-shuffle; use mapValues"
                    .to_string(),
                span: n.def_span,
            });
        }
    }
}

fn single_use_cache(flow: &Flow, out: &mut Vec<Diagnostic>) {
    for n in &flow.nodes {
        if n.cached && n.iter_weight <= 1 {
            let name = n.var_name.as_deref().unwrap_or("this RDD");
            out.push(Diagnostic {
                rule: SINGLE_USE_CACHE,
                message: format!(
                    "`{name}` is cached but consumed by a single non-iterative job; \
                     the cache only costs memory here"
                ),
                span: n.def_span,
            });
        }
    }
}

/// Ancestors of `id` (excluding `id`), stopping after the first cached
/// node — matching the recomputation-visibility rule used for trigger
/// accounting.
fn upstream(flow: &Flow, id: usize) -> impl Iterator<Item = usize> + '_ {
    let mut chain = Vec::new();
    let mut cur = flow.nodes[id].parent;
    while let Some(p) = cur {
        chain.push(p);
        if flow.nodes[p].cached {
            break;
        }
        cur = flow.nodes[p].parent;
    }
    chain.into_iter()
}

/// Transitive children of `id`.
fn descendants(flow: &Flow, id: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut stack = flow.children(id);
    while let Some(c) = stack.pop() {
        out.push(c);
        stack.extend(flow.children(c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::analyze;
    use crate::parse::parse;

    fn lints(src: &str) -> Vec<Diagnostic> {
        run_lints(&analyze(&parse(src).expect("parse")))
    }

    fn rules(src: &str) -> Vec<&'static str> {
        lints(src).into_iter().map(|d| d.rule).collect()
    }

    const PRELUDE: &str = "val sc = new SparkContext(sparkConf)\n";

    #[test]
    fn r1_fires_on_reused_unpersisted_rdd_and_is_quiet_when_cached() {
        let defect = format!(
            "{PRELUDE}val parsed = sc.textFile(p).map(x => x)\nval a = parsed.count\nval b = parsed.count"
        );
        let ds = lints(&defect);
        assert_eq!(ds.iter().filter(|d| d.rule == UNCACHED_REUSE).count(), 1);
        assert!(ds[0].message.contains("parsed"));
        // Span points at the definition, line 2.
        assert_eq!(ds[0].span.line, 2);

        let clean = format!(
            "{PRELUDE}val parsed = sc.textFile(p).map(x => x).cache()\nval a = parsed.count\nval b = parsed.count"
        );
        assert!(!rules(&clean).contains(&UNCACHED_REUSE));
    }

    #[test]
    fn r2_fires_on_groupbykey_over_raw_lineage() {
        let defect = format!(
            "{PRELUDE}val sums = sc.textFile(p).map(x => x).groupByKey().mapValues(v => v).count"
        );
        assert!(rules(&defect).contains(&REDUNDANT_SHUFFLE));
        // Pre-combined upstream: quiet.
        let clean = format!(
            "{PRELUDE}val sums = sc.textFile(p).map(x => x).reduceByKey(f).groupByKey().count"
        );
        assert!(!rules(&clean).contains(&REDUNDANT_SHUFFLE));
        // repartition feeding a shuffle.
        let defect2 =
            format!("{PRELUDE}val r = sc.textFile(p).repartition(n)\nval s = r.sortByKey(t).count");
        assert!(rules(&defect2).contains(&REDUNDANT_SHUFFLE));
    }

    #[test]
    fn r3_fires_on_collect_of_unreduced_data() {
        let defect = format!("{PRELUDE}val all = sc.textFile(p).map(x => x).collect()");
        assert!(rules(&defect).contains(&COLLECT_UNREDUCED));
        let clean = format!("{PRELUDE}val some = sc.textFile(p).filter(f).collect()");
        assert!(!rules(&clean).contains(&COLLECT_UNREDUCED));
    }

    #[test]
    fn r4_fires_on_key_preserving_map_after_partitionby() {
        let defect = format!(
            "{PRELUDE}val part = sc.textFile(p).keyBy(f).partitionBy(h)\n\
             val bumped = part.map {{ case (k, v) => (k, v) }}\n\
             val out = bumped.reduceByKey(g).count"
        );
        let ds = lints(&defect);
        let d = ds.iter().find(|d| d.rule == PARTITIONER_LOSS).expect("R4 fires");
        assert!(d.message.contains("mapValues"));
        assert_eq!(d.span.line, 3);
        // mapValues instead: quiet.
        let clean = format!(
            "{PRELUDE}val part = sc.textFile(p).keyBy(f).partitionBy(h)\n\
             val bumped = part.mapValues(f)\nval out = bumped.reduceByKey(g).count"
        );
        assert!(!rules(&clean).contains(&PARTITIONER_LOSS));
        // Re-keying map: quiet (the shuffle is genuinely needed).
        let rekey = format!(
            "{PRELUDE}val part = sc.textFile(p).keyBy(f).partitionBy(h)\n\
             val swapped = part.map {{ case (k, v) => (v, k) }}\n\
             val out = swapped.reduceByKey(g).count"
        );
        assert!(!rules(&rekey).contains(&PARTITIONER_LOSS));
    }

    #[test]
    fn r5_fires_on_cache_with_a_single_consumer() {
        let defect =
            format!("{PRELUDE}val data = sc.textFile(p).map(x => x).cache()\nval n = data.count");
        let ds = lints(&defect);
        assert_eq!(ds.iter().filter(|d| d.rule == SINGLE_USE_CACHE).count(), 1);
        // Two consumers (or an iterative library consumer) justify it.
        let clean =
            format!("{PRELUDE}val data = sc.textFile(p).map(x => x).cache()\nval n = data.count\nval m = data.count");
        assert!(!rules(&clean).contains(&SINGLE_USE_CACHE));
        let iterative = format!(
            "{PRELUDE}val data = sc.textFile(p).map(x => x).cache()\nval model = KMeans.train(data, k, iters)"
        );
        assert!(!rules(&iterative).contains(&SINGLE_USE_CACHE));
    }
}

//! lite-analyze: static stage-code analysis for the Scala-like workload
//! subset — batch extraction, and the interactive layers built on it.
//!
//! LITE's cold-start step (paper §III-B, step 1) runs an application once
//! on the smallest dataset to harvest stage templates, operator DAGs and
//! stage source code from the event log. This crate recovers the same
//! artifacts **without any run**:
//!
//! * [`lex`] — the workspace's one lexer (also backing
//!   `lite-workloads::tokenize`), producing spanned tokens;
//! * [`ast`] + [`parse`] — a typed AST and recursive-descent parser with a
//!   canonical pretty-printer (`parse ∘ pretty = id` up to spans);
//! * [`dataflow`] — RDD-lineage recovery: nodes, caching, partitioners,
//!   library calls, actions, trigger-site accounting;
//! * [`model`] — the library knowledge base mapping recognized API calls
//!   to their internal stage pipelines;
//! * [`extract`] — [`extract_stages`]: source text → stage templates,
//!   cross-validated against the dynamic `instrument_app` path on all 15
//!   workloads;
//! * [`lint`] — five span-accurate semantic lints for tuning-relevant
//!   anti-patterns.
//!
//! On top of the batch pipeline sit the interactive layers that power the
//! `lite-lsp` editor server:
//!
//! * [`fix`] — machine-applicable [`Fix`]es for the fixable lints
//!   (insert `.cache()`, drop single-use caches, `map`→`mapValues`),
//!   applied as AST rewrites through the canonical printer and proven
//!   lineage-safe on the dataflow graph;
//! * [`incremental`] — [`DocAnalyzer`]: statement-level memoized
//!   re-analysis for editor-latency updates, surfacing parse failures as
//!   `syntax-error` diagnostics instead of hard errors
//!   ([`analyze_source`] is the one-shot form).

pub mod ast;
pub mod dataflow;
pub mod extract;
pub mod fix;
pub mod incremental;
pub mod lex;
pub mod lint;
pub mod model;
pub mod parse;

pub use extract::{extract_stages, AnalyzeError, ExtractOptions, Extraction, StageTemplate};
pub use fix::{apply_fixes, plan_fixes, Fix, FixKind, FixOutcome};
pub use incremental::{analyze_source, Analysis, DocAnalyzer};
pub use lint::{run_lints, Diagnostic};

/// Convenience: lint source text directly (parse + dataflow + rules).
#[deprecated(note = "use `analyze_source`, which reports parse failures as \
            span-carrying `syntax-error` diagnostics instead of bailing")]
pub fn lint_source(source: &str) -> Result<Vec<Diagnostic>, parse::ParseError> {
    let prog = parse::parse(source)?;
    Ok(lint::run_lints(&dataflow::analyze(&prog)))
}

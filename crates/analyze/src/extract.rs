//! Static stage extraction: source text in, stage templates out — zero
//! simulator runs.
//!
//! The pipeline is lex → parse → dataflow → emit. Library calls expand
//! through the knowledge base in [`crate::model`]; library-free programs
//! (sort-style jobs) go through a generic stage cutter that breaks the
//! lineage chain at wide dependencies. Emissions are merged by template
//! name in first-appearance order, mirroring how the dynamic
//! `instrument_app` path dedupes `StageSubmitted` events.

use crate::dataflow::{analyze, ActionKind, ChainOp, Flow};
use crate::lint::{run_lints, Diagnostic};
use crate::model::{generic_stage_name, lib_pipeline, lineage_ops, GenericRole};
use crate::parse::{parse, ParseError};
use lite_sparksim::plan::OpKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Extraction failure.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeError {
    /// The source did not parse.
    Parse(ParseError),
    /// The program parsed but produced no stages (no lineage, no jobs).
    NoStages,
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Parse(e) => write!(f, "{e}"),
            AnalyzeError::NoStages => write!(f, "no stages recovered from source"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<ParseError> for AnalyzeError {
    fn from(e: ParseError) -> Self {
        AnalyzeError::Parse(e)
    }
}

/// Knobs the source text cannot provide.
#[derive(Debug, Clone, Copy)]
pub struct ExtractOptions {
    /// Iteration count for iterative pipelines (dataset-tier dependent;
    /// clamped to ≥ 1).
    pub iterations: u32,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions { iterations: 1 }
    }
}

/// One recovered stage template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTemplate {
    /// Template name (stable across iterations).
    pub template: String,
    /// Operator chain.
    pub ops: Vec<OpKind>,
    /// Stage instances per run at the requested iteration count.
    pub instances_per_run: usize,
}

/// Full static-extraction result.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction {
    /// `setAppName` value, when present.
    pub app_name: Option<String>,
    /// Stage templates in first-appearance order.
    pub stages: Vec<StageTemplate>,
    /// Lint diagnostics for the same source (computed on the same flow).
    pub diagnostics: Vec<Diagnostic>,
}

/// Statically extract stage templates from application source.
pub fn extract_stages(source: &str, opts: ExtractOptions) -> Result<Extraction, AnalyzeError> {
    let prog = parse(source)?;
    let flow = analyze(&prog);
    let diagnostics = run_lints(&flow);
    let mut em = Emitter::default();

    if flow.calls.is_empty() {
        generic_cut(&flow, &mut em);
    } else {
        for call in &flow.calls {
            for (name, ops) in lib_pipeline(&flow, call, opts.iterations.max(1) as usize) {
                em.emit(&name, ops);
            }
        }
    }

    if em.stages.is_empty() {
        return Err(AnalyzeError::NoStages);
    }
    Ok(Extraction { app_name: flow.app_name.clone(), stages: em.stages, diagnostics })
}

#[derive(Default)]
struct Emitter {
    stages: Vec<StageTemplate>,
}

impl Emitter {
    /// Record one stage instance; repeat emissions of a template merge
    /// into its instance count (first-appearance order preserved).
    fn emit(&mut self, template: &str, ops: Vec<OpKind>) {
        if let Some(s) = self.stages.iter_mut().find(|s| s.template == template) {
            s.instances_per_run += 1;
            return;
        }
        self.stages.push(StageTemplate {
            template: template.to_string(),
            ops,
            instances_per_run: 1,
        });
    }
}

/// Generic stage cutter for library-free programs: each visible action is
/// a job; its lineage chain is cut at wide dependencies.
fn generic_cut(flow: &Flow, em: &mut Emitter) {
    let app = flow.app_name.as_deref();
    let mut fallback_idx = 0usize;
    let name_for = |role: GenericRole, idx: &mut usize| -> String {
        if let Some(n) = generic_stage_name(app, role) {
            return n.to_string();
        }
        let n = format!("stage-{}", *idx);
        *idx += 1;
        n
    };

    for action in &flow.actions {
        let chain = flow.lineage(action.node);
        // A terasort-partitioned job runs two sampling pre-jobs first.
        let terasort = chain
            .iter()
            .any(|&id| matches!(flow.nodes[id].op, ChainOp::RepartitionAndSort { terasort: true }));
        if terasort {
            em.emit(
                &name_for(GenericRole::PreSample, &mut fallback_idx),
                vec![OpKind::TextFile, OpKind::Sample, OpKind::Collect],
            );
            em.emit(
                &name_for(GenericRole::PreCount, &mut fallback_idx),
                vec![OpKind::TextFile, OpKind::Count],
            );
        }

        let mut cur: Vec<OpKind> = Vec::new();
        let mut cur_role = GenericRole::MapSide;
        for &id in &chain {
            let op = flow.nodes[id].op;
            if op.wide() {
                // Close the map side, open the shuffle/sort stage.
                match op {
                    ChainOp::RepartitionAndSort { .. } => cur.push(OpKind::PartitionBy),
                    ChainOp::SortByKey | ChainOp::SortBy => {}
                    _ => {}
                }
                em.emit(&name_for(cur_role, &mut fallback_idx), std::mem::take(&mut cur));
                cur.push(OpKind::ShuffledRdd);
                cur.extend(node_ops(flow, id));
                cur_role = GenericRole::Sort;
            } else if cur_role == GenericRole::Sort && !matches!(op, ChainOp::Source(_)) {
                // Narrow work after the sort runs as a separate result
                // stage in the planner's tables.
                em.emit(&name_for(cur_role, &mut fallback_idx), std::mem::take(&mut cur));
                cur.extend(node_ops(flow, id));
                cur_role = GenericRole::Result;
            } else {
                cur.extend(node_ops(flow, id));
            }
        }
        cur.push(action_op(action.kind));
        em.emit(&name_for(cur_role, &mut fallback_idx), cur);
    }
}

/// Ops contributed by a single lineage node (shuffle-read prefix excluded).
fn node_ops(flow: &Flow, id: usize) -> Vec<OpKind> {
    // Reuse the lineage mapping on a single node by diffing against the
    // parent chain would be wasteful; map directly instead.
    let single = Flow {
        app_name: None,
        nodes: vec![crate::dataflow::RddNode { id: 0, parent: None, ..flow.nodes[id].clone() }],
        calls: Vec::new(),
        actions: Vec::new(),
    };
    lineage_ops(&single, 0)
}

fn action_op(kind: ActionKind) -> OpKind {
    match kind {
        ActionKind::Count => OpKind::Count,
        ActionKind::Collect => OpKind::Collect,
        ActionKind::CollectAsMap => OpKind::CollectAsMap,
        ActionKind::Take | ActionKind::First => OpKind::Take,
        ActionKind::Foreach | ActionKind::Max | ActionKind::Reduce => OpKind::Reduce,
        ActionKind::SaveAsTextFile => OpKind::SaveAsTextFile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names_and_counts(x: &Extraction) -> Vec<(String, usize)> {
        x.stages.iter().map(|s| (s.template.clone(), s.instances_per_run)).collect()
    }

    #[test]
    fn kmeans_extraction_matches_the_planner_tables() {
        let src = r#"
val sparkConf = new SparkConf().setAppName("KMeans")
val sc = new SparkContext(sparkConf)
val data = sc.textFile(inputPath)
val parsedData = data.map(s => Vectors.dense(s.split(' ').map(_.toDouble))).cache()
val clusters = KMeans.train(parsedData, numClusters, numIterations, KMeans.K_MEANS_PARALLEL)
val WSSSE = clusters.computeCost(parsedData)
println(s"Within Set Sum of Squared Errors = $WSSSE")
sc.stop()
"#;
        let x = extract_stages(src, ExtractOptions { iterations: 8 }).expect("extract");
        assert_eq!(x.app_name.as_deref(), Some("KMeans"));
        assert_eq!(
            names_and_counts(&x),
            [
                ("parse-cache".to_string(), 1),
                ("km-assign".to_string(), 8),
                ("compute-cost".to_string(), 1)
            ]
        );
        assert_eq!(x.stages[0].ops, vec![OpKind::TextFile, OpKind::Map, OpKind::Cache]);
    }

    #[test]
    fn sort_extraction_cuts_stages_at_wide_dependencies() {
        let src = r#"
val sparkConf = new SparkConf().setAppName("Sort")
val sc = new SparkContext(sparkConf)
val lines = sc.textFile(inputFile)
val keyed = lines.map(line => (line.split("\t")(0), line))
val sorted = keyed.sortByKey(ascending = true, numPartitions = partitions)
sorted.map(_._2).saveAsTextFile(outputFile)
sc.stop()
"#;
        let x = extract_stages(src, ExtractOptions::default()).expect("extract");
        assert_eq!(
            names_and_counts(&x),
            [
                ("key-lines".to_string(), 1),
                ("sort-by-key".to_string(), 1),
                ("save-output".to_string(), 1)
            ]
        );
        assert_eq!(x.stages[0].ops, vec![OpKind::TextFile, OpKind::Map, OpKind::KeyBy]);
        assert_eq!(x.stages[1].ops, vec![OpKind::ShuffledRdd, OpKind::SortByKey]);
        assert_eq!(x.stages[2].ops, vec![OpKind::MapValues, OpKind::SaveAsTextFile]);
    }

    #[test]
    fn terasort_extraction_includes_sampling_prejobs() {
        let src = r#"
val sparkConf = new SparkConf().setAppName("TeraSort")
val sc = new SparkContext(sparkConf)
val file = sc.textFile(inputFile)
val data = file.map(line => (line.substring(0, 10), line.substring(10)))
val partitioned = data.repartitionAndSortWithinPartitions(new TeraSortPartitioner(partitions))
partitioned.saveAsTextFile(outputFile)
sc.stop()
"#;
        let x = extract_stages(src, ExtractOptions::default()).expect("extract");
        assert_eq!(
            names_and_counts(&x),
            [
                ("sample-bounds".to_string(), 1),
                ("count-records".to_string(), 1),
                ("partition-records".to_string(), 1),
                ("sort-partitions".to_string(), 1)
            ]
        );
        assert_eq!(
            x.stages[3].ops,
            vec![OpKind::ShuffledRdd, OpKind::RepartitionAndSort, OpKind::SaveAsTextFile]
        );
    }

    #[test]
    fn empty_source_yields_no_stages_error() {
        assert!(matches!(
            extract_stages("val a = 1\n", ExtractOptions::default()),
            Err(AnalyzeError::NoStages)
        ));
        assert!(matches!(
            extract_stages("val x = (", ExtractOptions::default()),
            Err(AnalyzeError::Parse(_))
        ));
    }
}

//! RDD-lineage dataflow over the AST.
//!
//! Walks a parsed program statement by statement, tracking what every
//! binding evaluates to (Spark context, configured algorithm, trained
//! model, RDD lineage node, …) and recording three kinds of facts:
//!
//! * **nodes** — the RDD lineage graph, one node per transformation, with
//!   caching, partitioner and trigger-site accounting,
//! * **calls** — library API invocations (`KMeans.train`,
//!   `graph.staticPageRank`, …) that expand into whole stage pipelines,
//! * **actions** — job-triggering calls (`count`, `collect`, `take`,
//!   `saveAsTextFile`, …).
//!
//! Interpolated-string contents are opaque: an action referenced only
//! inside `s"${…}"` is invisible, matching the fact that the simulator's
//! stage tables never materialize those driver-side chains either.

use crate::ast::{Arg, Case, Expr, Pat, Program, Stmt};
use crate::lex::Span;
use std::collections::HashMap;

/// Regression family (shared by train and predict sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegKind {
    /// `LinearRegressionWithSGD`
    Linear,
    /// `LogisticRegressionWithLBFGS`
    Logistic,
    /// `SVMWithSGD`
    Svm,
}

/// What a trained model value is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// `KMeans.train` result.
    KMeans,
    /// `<algorithm>.run` result.
    Regression(RegKind),
    /// `DecisionTree.train` result.
    DecisionTree,
    /// `ALS.train` result.
    Als,
}

/// How an input RDD is loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `sc.textFile`
    TextFile,
    /// `MLUtils.loadLibSVMFile`
    LibSvm,
    /// `MLUtils.loadLabeledPoints`
    LabeledPoints,
    /// `GraphLoader.edgeListFile`
    EdgeList {
        /// `canonicalOrientation = true` was passed.
        canonical: bool,
    },
}

/// A recognized library API call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiKind {
    /// `KMeans.train`
    KMeansTrain,
    /// `model.computeCost`
    ComputeCost,
    /// `<algo>.run`
    RegressionRun(RegKind),
    /// model-applying `map` / `model.predict` over an RDD
    PredictEval(RegKind),
    /// `DecisionTree.train`
    DecisionTreeTrain,
    /// `ALS.train`
    AlsTrain,
    /// `SVDPlusPlus.run`
    SvdPlusPlus,
    /// `graph.staticPageRank`
    StaticPageRank,
    /// `graph.triangleCount`
    TriangleCount,
    /// `graph.connectedComponents`
    ConnectedComponents,
    /// `graph.stronglyConnectedComponents`
    StronglyConnectedComponents,
    /// `ShortestPaths.run`
    ShortestPaths,
    /// `LabelPropagation.run`
    LabelPropagation,
}

impl ApiKind {
    /// Whether the call re-evaluates its input lineage once per iteration.
    pub fn iterative(self) -> bool {
        !matches!(self, ApiKind::ComputeCost | ApiKind::PredictEval(_) | ApiKind::TriangleCount)
    }
}

/// The transformation a lineage node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainOp {
    /// Input load.
    Source(SourceKind),
    /// Output of a library call — a lineage barrier (`parent` is `None`).
    LibResult(ApiKind),
    /// `.map(f)` with what we learned about `f`.
    Map {
        /// `x => (key(x), x)` shape.
        keyby: bool,
        /// `_._2`-style projection.
        value_proj: bool,
        /// `case (k, v) => (k, f(v))` shape — keys flow through untouched.
        key_preserving: bool,
    },
    /// `.flatMap`
    FlatMap,
    /// `.mapValues`
    MapValues,
    /// `.filter`
    Filter,
    /// `.distinct`
    Distinct,
    /// `.sample`
    Sample,
    /// `.groupByKey`
    GroupByKey,
    /// `.reduceByKey`
    ReduceByKey,
    /// `.aggregateByKey`
    AggregateByKey,
    /// `.sortByKey`
    SortByKey,
    /// `.sortBy`
    SortBy,
    /// `.repartitionAndSortWithinPartitions`
    RepartitionAndSort {
        /// Partitioner is a `TeraSortPartitioner`.
        terasort: bool,
    },
    /// `.partitionBy`
    PartitionBy,
    /// `.repartition`
    Repartition,
    /// `.coalesce`
    Coalesce,
    /// `.keyBy`
    KeyBy,
    /// `.vertices` / `.edges` projection of a graph value.
    Vertices,
    /// `.join`
    Join,
    /// Unrecognized transformation (lineage preserved, shape unknown).
    Opaque,
}

impl ChainOp {
    /// Whether the op shuffles (a stage boundary in the generic cutter).
    pub fn wide(self) -> bool {
        matches!(
            self,
            ChainOp::GroupByKey
                | ChainOp::ReduceByKey
                | ChainOp::AggregateByKey
                | ChainOp::SortByKey
                | ChainOp::SortBy
                | ChainOp::RepartitionAndSort { .. }
                | ChainOp::PartitionBy
                | ChainOp::Repartition
                | ChainOp::Distinct
                | ChainOp::Join
        )
    }

    /// Whether the op combines/reduces data volume (for the collect lint).
    pub fn reducing(self) -> bool {
        matches!(
            self,
            ChainOp::GroupByKey
                | ChainOp::ReduceByKey
                | ChainOp::AggregateByKey
                | ChainOp::Distinct
                | ChainOp::Filter
                | ChainOp::Sample
        )
    }
}

/// One RDD lineage node.
#[derive(Debug, Clone, PartialEq)]
pub struct RddNode {
    /// Index in [`Flow::nodes`].
    pub id: usize,
    /// `val` name this node was bound to, if any.
    pub var_name: Option<String>,
    /// Span of the defining expression.
    pub def_span: Span,
    /// Upstream node (`None` for sources and library results).
    pub parent: Option<usize>,
    /// The transformation.
    pub op: ChainOp,
    /// `.cache()`/`.persist()` was called on this exact node.
    pub cached: bool,
    /// Number of job sites whose evaluation recomputes this node.
    pub trigger_sites: usize,
    /// Like `trigger_sites` but iterative library sites count double.
    pub iter_weight: usize,
    /// A partitioner is in effect at this node.
    pub has_partitioner: bool,
}

/// A library call site.
#[derive(Debug, Clone, PartialEq)]
pub struct LibCall {
    /// Which API.
    pub api: ApiKind,
    /// Consumed lineage node.
    pub input: usize,
    /// Result lineage node, when the call yields a distributed value.
    pub result: Option<usize>,
    /// Call-site span.
    pub span: Span,
}

/// Job-triggering action kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// `count`
    Count,
    /// `collect`
    Collect,
    /// `collectAsMap`
    CollectAsMap,
    /// `take(n)`
    Take,
    /// `first`
    First,
    /// `foreach`
    Foreach,
    /// `reduce`
    Reduce,
    /// `max`
    Max,
    /// `saveAsTextFile`
    SaveAsTextFile,
}

/// One action site.
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    /// Which action.
    pub kind: ActionKind,
    /// The node it runs on.
    pub node: usize,
    /// Call-site span.
    pub span: Span,
}

/// Everything the dataflow pass learned about a program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Flow {
    /// `setAppName` argument, if seen.
    pub app_name: Option<String>,
    /// Lineage nodes in creation order.
    pub nodes: Vec<RddNode>,
    /// Library call sites in source order.
    pub calls: Vec<LibCall>,
    /// Action sites in source order.
    pub actions: Vec<Action>,
}

impl Flow {
    /// Lineage chain of `id`, root first, ending at `id` itself.
    pub fn lineage(&self, id: usize) -> Vec<usize> {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(p) = self.nodes[cur].parent {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Children of `id` in creation order.
    pub fn children(&self, id: usize) -> Vec<usize> {
        self.nodes.iter().filter(|n| n.parent == Some(id)).map(|n| n.id).collect()
    }
}

/// Run the dataflow pass.
pub fn analyze(prog: &Program) -> Flow {
    let mut a = Analyzer { flow: Flow::default(), env: HashMap::new() };
    for s in &prog.stmts {
        a.stmt(s);
    }
    a.flow
}

#[derive(Debug, Clone)]
enum AlgoKind {
    Reg(RegKind),
    Other,
}

#[derive(Debug, Clone)]
enum Val {
    Conf(Option<String>),
    Context,
    Algo(AlgoKind),
    Model(ModelKind),
    Rdd(usize),
    TupleV(Vec<Val>),
    Opaque,
}

struct Analyzer {
    flow: Flow,
    env: HashMap<String, Val>,
}

impl Analyzer {
    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Val { pat, value, .. } => {
                let v = self.eval(value);
                self.bind(pat, v);
            }
            Stmt::Expr(e) => {
                self.eval(e);
            }
        }
    }

    fn bind(&mut self, pat: &Pat, v: Val) {
        match (pat, v) {
            (Pat::Ident(n), v) => {
                if let Val::Rdd(id) = v {
                    if self.flow.nodes[id].var_name.is_none() {
                        self.flow.nodes[id].var_name = Some(n.clone());
                    }
                }
                self.env.insert(n.clone(), v);
            }
            (Pat::Tuple(ps), Val::TupleV(vs)) => {
                for (p, x) in ps.iter().zip(vs) {
                    self.bind(p, x);
                }
            }
            _ => {}
        }
    }

    fn node(
        &mut self,
        parent: Option<usize>,
        op: ChainOp,
        span: Span,
        has_partitioner: bool,
    ) -> usize {
        let id = self.flow.nodes.len();
        self.flow.nodes.push(RddNode {
            id,
            var_name: None,
            def_span: span,
            parent,
            op,
            cached: false,
            trigger_sites: 0,
            iter_weight: 0,
            has_partitioner,
        });
        id
    }

    /// Partitioner state for a derived node.
    fn derived_partitioner(&self, parent: usize, op: &ChainOp) -> bool {
        match op {
            ChainOp::PartitionBy
            | ChainOp::RepartitionAndSort { .. }
            | ChainOp::GroupByKey
            | ChainOp::ReduceByKey
            | ChainOp::AggregateByKey
            | ChainOp::SortByKey
            | ChainOp::Join => true,
            ChainOp::MapValues | ChainOp::Filter | ChainOp::Vertices => {
                self.flow.nodes[parent].has_partitioner
            }
            ChainOp::Map { key_preserving, .. } => {
                // A key-preserving `map` *logically* keeps the keys, but the
                // partitioner is still dropped by Spark — that mismatch is
                // exactly lint R4's business; lineage-wise we keep the flag
                // so the lint can see the parent had one.
                *key_preserving && self.flow.nodes[parent].has_partitioner
            }
            _ => false,
        }
    }

    /// Register a job site rooted at `node`: walk the lineage upward
    /// crediting every node, stopping after the first cached one (a cache
    /// hit cuts off recomputation of anything above it).
    fn touch(&mut self, node: usize, weight: usize) {
        let mut cur = Some(node);
        while let Some(id) = cur {
            self.flow.nodes[id].trigger_sites += 1;
            self.flow.nodes[id].iter_weight += weight;
            if self.flow.nodes[id].cached {
                break;
            }
            cur = self.flow.nodes[id].parent;
        }
    }

    fn lib_call(&mut self, api: ApiKind, input: usize, span: Span, with_result: bool) -> Val {
        let weight = if api.iterative() { 2 } else { 1 };
        self.touch(input, weight);
        let result = if with_result {
            Some(self.node(None, ChainOp::LibResult(api), span, true))
        } else {
            None
        };
        self.flow.calls.push(LibCall { api, input, result, span });
        match result {
            Some(id) => Val::Rdd(id),
            None => Val::Opaque,
        }
    }

    fn action(&mut self, kind: ActionKind, node: usize, span: Span) -> Val {
        self.touch(node, 1);
        self.flow.actions.push(Action { kind, node, span });
        Val::Opaque
    }

    fn eval_args(&mut self, args: &[Arg]) {
        for a in args {
            if !matches!(a.value, Expr::Lambda { .. } | Expr::Cases(..)) {
                self.eval(&a.value);
            }
        }
    }

    fn eval(&mut self, e: &Expr) -> Val {
        match e {
            Expr::Ident(n, _) => self.env.get(n).cloned().unwrap_or(Val::Opaque),
            Expr::Num(..) | Expr::Str(..) | Expr::Interp(..) | Expr::Char(..) | Expr::Under(..) => {
                Val::Opaque
            }
            Expr::New { path, args, .. } => {
                if let Some(a) = args {
                    self.eval_args(a);
                }
                match path.last().map(String::as_str) {
                    Some("SparkConf") => Val::Conf(None),
                    Some("SparkContext") => {
                        // Adopt the app name configured on the conf argument.
                        if let Some(a) = args {
                            for arg in a {
                                if let Val::Conf(Some(name)) = self.eval(&arg.value) {
                                    self.flow.app_name.get_or_insert(name);
                                }
                            }
                        }
                        Val::Context
                    }
                    Some("LinearRegressionWithSGD") => Val::Algo(AlgoKind::Reg(RegKind::Linear)),
                    Some("LogisticRegressionWithLBFGS") => {
                        Val::Algo(AlgoKind::Reg(RegKind::Logistic))
                    }
                    Some("SVMWithSGD") => Val::Algo(AlgoKind::Reg(RegKind::Svm)),
                    Some("Strategy") => Val::Algo(AlgoKind::Other),
                    _ => Val::Opaque,
                }
            }
            Expr::Tuple(es, _) => {
                let vs = es.iter().map(|x| self.eval(x)).collect();
                Val::TupleV(vs)
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.eval(lhs);
                self.eval(rhs);
                Val::Opaque
            }
            Expr::Unary { expr, .. } => {
                self.eval(expr);
                Val::Opaque
            }
            Expr::Block(stmts, _) => {
                for s in stmts {
                    self.stmt(s);
                }
                Val::Opaque
            }
            Expr::Match { scrutinee, .. } => {
                self.eval(scrutinee);
                Val::Opaque
            }
            // Lambda/case bodies run with unbound parameters; their
            // contents are analyzed structurally at the call sites that
            // receive them, not evaluated here.
            Expr::Lambda { .. } | Expr::Cases(..) => Val::Opaque,
            Expr::Apply { f, args, .. } => {
                self.eval_args(args);
                self.eval(f);
                Val::Opaque
            }
            Expr::Field { recv, name, span } => self.field(recv, name, *span),
            Expr::Method { recv, name, args, span, .. } => self.method(recv, name, args, *span),
        }
    }

    fn field(&mut self, recv: &Expr, name: &str, span: Span) -> Val {
        let r = self.eval(recv);
        match r {
            Val::Rdd(id) => match name {
                "vertices" | "edges" => {
                    let hp = self.flow.nodes[id].has_partitioner;
                    Val::Rdd(self.node(Some(id), ChainOp::Vertices, span, hp))
                }
                _ => match field_action(name) {
                    Some(kind) => self.action(kind, id, span),
                    None => Val::Opaque,
                },
            },
            // `algorithm.optimizer.set…` chains configure in place.
            Val::Algo(k) => Val::Algo(k),
            _ => Val::Opaque,
        }
    }

    fn method(&mut self, recv: &Expr, name: &str, args: &[Arg], span: Span) -> Val {
        // Static library objects: an identifier receiver with no binding.
        if let Expr::Ident(obj, _) = recv {
            if !self.env.contains_key(obj) {
                return self.static_call(obj, name, args, span);
            }
        }
        let r = self.eval(recv);
        match r {
            Val::Context => match name {
                "textFile" => {
                    self.eval_args(args);
                    Val::Rdd(self.node(None, ChainOp::Source(SourceKind::TextFile), span, false))
                }
                _ => {
                    self.eval_args(args);
                    Val::Opaque
                }
            },
            Val::Conf(app) => {
                if name == "setAppName" {
                    if let Some(Arg { value: Expr::Str(s, _), .. }) = args.first() {
                        return Val::Conf(Some(s.clone()));
                    }
                }
                Val::Conf(app)
            }
            Val::Algo(AlgoKind::Reg(kind)) => {
                if name == "run" {
                    if let Some(input) = self.arg_rdd(args) {
                        self.lib_call(ApiKind::RegressionRun(kind), input, span, false);
                        return Val::Model(ModelKind::Regression(kind));
                    }
                }
                self.eval_args(args);
                Val::Algo(AlgoKind::Reg(kind))
            }
            Val::Algo(k) => {
                self.eval_args(args);
                Val::Algo(k)
            }
            Val::Model(kind) => self.model_call(kind, name, args, span),
            Val::Rdd(id) => self.rdd_call(id, name, args, span),
            _ => {
                self.eval_args(args);
                Val::Opaque
            }
        }
    }

    fn static_call(&mut self, obj: &str, name: &str, args: &[Arg], span: Span) -> Val {
        match (obj, name) {
            ("MLUtils", "loadLibSVMFile") => {
                Val::Rdd(self.node(None, ChainOp::Source(SourceKind::LibSvm), span, false))
            }
            ("MLUtils", "loadLabeledPoints") => {
                Val::Rdd(self.node(None, ChainOp::Source(SourceKind::LabeledPoints), span, false))
            }
            ("GraphLoader", "edgeListFile") => {
                let canonical = args.iter().any(|a| {
                    a.name.as_deref() == Some("canonicalOrientation")
                        && matches!(&a.value, Expr::Ident(b, _) if b == "true")
                });
                let kind = SourceKind::EdgeList { canonical };
                Val::Rdd(self.node(None, ChainOp::Source(kind), span, false))
            }
            ("KMeans", "train") => match self.arg_rdd(args) {
                Some(input) => {
                    self.lib_call(ApiKind::KMeansTrain, input, span, false);
                    Val::Model(ModelKind::KMeans)
                }
                None => Val::Opaque,
            },
            ("ALS", "train") => match self.arg_rdd(args) {
                Some(input) => {
                    self.lib_call(ApiKind::AlsTrain, input, span, false);
                    Val::Model(ModelKind::Als)
                }
                None => Val::Opaque,
            },
            ("DecisionTree", "train") => match self.arg_rdd(args) {
                Some(input) => {
                    self.lib_call(ApiKind::DecisionTreeTrain, input, span, false);
                    Val::Model(ModelKind::DecisionTree)
                }
                None => Val::Opaque,
            },
            ("SVDPlusPlus", "run") => match self.arg_rdd(args) {
                Some(input) => {
                    let g = self.lib_call(ApiKind::SvdPlusPlus, input, span, true);
                    Val::TupleV(vec![g, Val::Opaque])
                }
                None => Val::Opaque,
            },
            ("ShortestPaths", "run") => match self.arg_rdd(args) {
                Some(input) => self.lib_call(ApiKind::ShortestPaths, input, span, true),
                None => Val::Opaque,
            },
            ("LabelPropagation", "run") => match self.arg_rdd(args) {
                Some(input) => self.lib_call(ApiKind::LabelPropagation, input, span, true),
                None => Val::Opaque,
            },
            _ => {
                self.eval_args(args);
                Val::Opaque
            }
        }
    }

    fn model_call(&mut self, kind: ModelKind, name: &str, args: &[Arg], span: Span) -> Val {
        match (kind, name) {
            (ModelKind::KMeans, "computeCost") => {
                if let Some(input) = self.arg_rdd(args) {
                    self.lib_call(ApiKind::ComputeCost, input, span, false);
                }
                Val::Opaque
            }
            (ModelKind::Regression(r), "predict") => {
                // `model.predict(rdd)` over a distributed argument is a
                // predict-eval job; scalar predicts are driver-side.
                if let Some(input) = self.arg_rdd(args) {
                    self.lib_call(ApiKind::PredictEval(r), input, span, false);
                }
                Val::Opaque
            }
            // ALS / DecisionTree predictions are lazy or folded into the
            // training pipeline by the simulator's stage tables: no job.
            _ => {
                self.eval_args(args);
                Val::Opaque
            }
        }
    }

    fn rdd_call(&mut self, id: usize, name: &str, args: &[Arg], span: Span) -> Val {
        match name {
            "cache" | "persist" => {
                self.flow.nodes[id].cached = true;
                Val::Rdd(id)
            }
            "map" => {
                let shape = args.first().map(|a| map_shape(&a.value, &self.env));
                let shape = shape.unwrap_or_default();
                let op = ChainOp::Map {
                    keyby: shape.keyby,
                    value_proj: shape.value_proj,
                    key_preserving: shape.key_preserving,
                };
                let hp = self.derived_partitioner(id, &op);
                let new = self.node(Some(id), op, span, hp);
                if let Some(ModelKind::Regression(r)) = shape.uses_model {
                    // The map applies a regression model: this is the
                    // predict-eval job itself.
                    self.lib_call(ApiKind::PredictEval(r), new, span, false);
                }
                Val::Rdd(new)
            }
            "flatMap" | "mapValues" | "filter" | "distinct" | "sample" | "groupByKey"
            | "reduceByKey" | "aggregateByKey" | "sortByKey" | "sortBy" | "keyBy"
            | "partitionBy" | "repartition" | "coalesce" | "join" => {
                let op = match name {
                    "flatMap" => ChainOp::FlatMap,
                    "mapValues" => ChainOp::MapValues,
                    "filter" => ChainOp::Filter,
                    "distinct" => ChainOp::Distinct,
                    "sample" => ChainOp::Sample,
                    "groupByKey" => ChainOp::GroupByKey,
                    "reduceByKey" => ChainOp::ReduceByKey,
                    "aggregateByKey" => ChainOp::AggregateByKey,
                    "sortByKey" => ChainOp::SortByKey,
                    "sortBy" => ChainOp::SortBy,
                    "keyBy" => ChainOp::KeyBy,
                    "partitionBy" => ChainOp::PartitionBy,
                    "repartition" => ChainOp::Repartition,
                    "coalesce" => ChainOp::Coalesce,
                    _ => ChainOp::Join,
                };
                let hp = self.derived_partitioner(id, &op);
                Val::Rdd(self.node(Some(id), op, span, hp))
            }
            "repartitionAndSortWithinPartitions" => {
                let terasort = matches!(
                    args.first().map(|a| &a.value),
                    Some(Expr::New { path, .. })
                        if path.last().is_some_and(|s| s == "TeraSortPartitioner")
                );
                let op = ChainOp::RepartitionAndSort { terasort };
                Val::Rdd(self.node(Some(id), op, span, true))
            }
            "staticPageRank" => self.lib_call(ApiKind::StaticPageRank, id, span, true),
            "triangleCount" => self.lib_call(ApiKind::TriangleCount, id, span, true),
            "connectedComponents" => self.lib_call(ApiKind::ConnectedComponents, id, span, true),
            "stronglyConnectedComponents" => {
                self.lib_call(ApiKind::StronglyConnectedComponents, id, span, true)
            }
            _ => match method_action(name) {
                Some(kind) => {
                    self.eval_args(args);
                    self.action(kind, id, span)
                }
                None => {
                    self.eval_args(args);
                    let op = ChainOp::Opaque;
                    let hp = self.derived_partitioner(id, &op);
                    Val::Rdd(self.node(Some(id), op, span, hp))
                }
            },
        }
    }

    /// First argument that evaluates to an RDD.
    fn arg_rdd(&mut self, args: &[Arg]) -> Option<usize> {
        let mut found = None;
        for a in args {
            match self.eval(&a.value) {
                Val::Rdd(id) if found.is_none() => found = Some(id),
                _ => {}
            }
        }
        found
    }
}

fn field_action(name: &str) -> Option<ActionKind> {
    Some(match name {
        "count" => ActionKind::Count,
        "collect" => ActionKind::Collect,
        "first" => ActionKind::First,
        "max" => ActionKind::Max,
        _ => return None,
    })
}

fn method_action(name: &str) -> Option<ActionKind> {
    Some(match name {
        "count" => ActionKind::Count,
        "collect" => ActionKind::Collect,
        "collectAsMap" => ActionKind::CollectAsMap,
        "take" => ActionKind::Take,
        "first" => ActionKind::First,
        "foreach" => ActionKind::Foreach,
        "reduce" => ActionKind::Reduce,
        "max" => ActionKind::Max,
        "saveAsTextFile" => ActionKind::SaveAsTextFile,
        _ => return None,
    })
}

/// What a `map` argument's shape tells us.
#[derive(Debug, Default)]
struct MapShape {
    keyby: bool,
    value_proj: bool,
    key_preserving: bool,
    uses_model: Option<ModelKind>,
}

fn map_shape(arg: &Expr, env: &HashMap<String, Val>) -> MapShape {
    let mut shape = MapShape::default();
    match arg {
        Expr::Lambda { params, body, .. } => {
            shape.uses_model = body_model(body, env);
            if let [Pat::Ident(p)] = params.as_slice() {
                if let Expr::Tuple(es, _) = &**body {
                    if es.len() == 2 {
                        shape.keyby = matches!(&es[1], Expr::Ident(n, _) if n == p);
                    }
                }
                if let Expr::Field { recv, name, .. } = &**body {
                    shape.value_proj =
                        matches!(&**recv, Expr::Ident(n, _) if n == p) && name == "_2";
                }
            }
        }
        Expr::Cases(cases, _) => {
            if let [Case { pat: Pat::Tuple(ps), body }] = cases.as_slice() {
                shape.uses_model = body_model(body, env);
                if let (Some(Pat::Ident(k)), Expr::Tuple(es, _)) = (ps.first(), body) {
                    if es.len() == 2 {
                        shape.key_preserving = matches!(&es[0], Expr::Ident(n, _) if n == k);
                    }
                }
            } else if let [Case { body, .. }] = cases.as_slice() {
                shape.uses_model = body_model(body, env);
            }
        }
        // Placeholder projection `_._2`.
        Expr::Field { recv, name, .. } => {
            shape.value_proj = matches!(&**recv, Expr::Under(_)) && name == "_2";
        }
        _ => {}
    }
    shape
}

/// Does the body call `.predict` on a bound model? Which model?
fn body_model(e: &Expr, env: &HashMap<String, Val>) -> Option<ModelKind> {
    let mut found = None;
    walk(e, &mut |x| {
        if let Expr::Method { recv, name, .. } = x {
            if name == "predict" {
                if let Expr::Ident(m, _) = &**recv {
                    if let Some(Val::Model(k)) = env.get(m) {
                        found.get_or_insert(*k);
                    }
                }
            }
        }
    });
    found
}

fn walk(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::New { args: Some(args), .. } => {
            for a in args {
                walk(&a.value, f);
            }
        }
        Expr::Field { recv, .. } => walk(recv, f),
        Expr::Method { recv, args, .. } => {
            walk(recv, f);
            for a in args {
                walk(&a.value, f);
            }
        }
        Expr::Apply { f: callee, args, .. } => {
            walk(callee, f);
            for a in args {
                walk(&a.value, f);
            }
        }
        Expr::Lambda { body, .. } => walk(body, f),
        Expr::Cases(cases, _) => {
            for c in cases {
                walk(&c.body, f);
            }
        }
        Expr::Block(stmts, _) => {
            for s in stmts {
                match s {
                    Stmt::Val { value, .. } => walk(value, f),
                    Stmt::Expr(x) => walk(x, f),
                }
            }
        }
        Expr::Tuple(es, _) => {
            for x in es {
                walk(x, f);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk(lhs, f);
            walk(rhs, f);
        }
        Expr::Unary { expr, .. } => walk(expr, f),
        Expr::Match { scrutinee, cases, .. } => {
            walk(scrutinee, f);
            for c in cases {
                walk(&c.body, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn flow_of(src: &str) -> Flow {
        analyze(&parse(src).expect("parse"))
    }

    #[test]
    fn kmeans_flow_has_cached_input_and_two_lib_calls() {
        let f = flow_of(
            r#"
val sparkConf = new SparkConf().setAppName("KMeans")
val sc = new SparkContext(sparkConf)
val data = sc.textFile(inputPath)
val parsedData = data.map(s => Vectors.dense(s)).cache()
val clusters = KMeans.train(parsedData, numClusters, numIterations)
val WSSSE = clusters.computeCost(parsedData)
"#,
        );
        assert_eq!(f.app_name.as_deref(), Some("KMeans"));
        assert_eq!(f.calls.len(), 2);
        assert_eq!(f.calls[0].api, ApiKind::KMeansTrain);
        assert_eq!(f.calls[1].api, ApiKind::ComputeCost);
        let parsed = &f.nodes[f.calls[0].input];
        assert!(parsed.cached);
        assert_eq!(parsed.trigger_sites, 2);
        // The cache cuts recomputation: the raw textFile node is untouched.
        let source = &f.nodes[parsed.parent.expect("parent")];
        assert_eq!(source.trigger_sites, 0);
    }

    #[test]
    fn sort_flow_classifies_keyby_and_value_projection() {
        let f = flow_of(
            r#"
val sc = new SparkContext(sparkConf)
val lines = sc.textFile(inputFile)
val keyed = lines.map(line => (line.split(d)(0), line))
val sorted = keyed.sortByKey(ascending = true, numPartitions = partitions)
sorted.map(_._2).saveAsTextFile(outputFile)
"#,
        );
        assert_eq!(f.actions.len(), 1);
        assert_eq!(f.actions[0].kind, ActionKind::SaveAsTextFile);
        let chain = f.lineage(f.actions[0].node);
        let ops: Vec<_> = chain.iter().map(|&i| f.nodes[i].op).collect();
        assert!(matches!(ops[0], ChainOp::Source(SourceKind::TextFile)));
        assert!(matches!(ops[1], ChainOp::Map { keyby: true, .. }));
        assert!(matches!(ops[2], ChainOp::SortByKey));
        assert!(matches!(ops[3], ChainOp::Map { value_proj: true, .. }));
        // Exactly one job: every chain node has one trigger site.
        assert!(chain.iter().all(|&i| f.nodes[i].trigger_sites == 1));
    }

    #[test]
    fn interp_contents_are_opaque_so_no_phantom_actions() {
        let f = flow_of(
            r#"
val sc = new SparkContext(sparkConf)
val cc = sc.textFile(p).map(x => x)
println(s"${cc.count}")
"#,
        );
        assert!(f.actions.is_empty());
    }

    #[test]
    fn model_using_map_is_a_predict_eval_site_for_regressions_only() {
        let f = flow_of(
            r#"
val sc = new SparkContext(sparkConf)
val training = MLUtils.loadLibSVMFile(sc, inputPath).cache()
val lr = new LogisticRegressionWithLBFGS().setNumClasses(numClasses)
val model = lr.run(training)
val pl = training.map { case (label, features) => (model.predict(features), label) }
"#,
        );
        let apis: Vec<_> = f.calls.iter().map(|c| c.api).collect();
        assert_eq!(
            apis,
            [ApiKind::RegressionRun(RegKind::Logistic), ApiKind::PredictEval(RegKind::Logistic)]
        );
        // ALS predictions are folded into training: no predict site.
        let f = flow_of(
            r#"
val sc = new SparkContext(sparkConf)
val ratings = sc.textFile(inputPath).map(x => x)
val model = ALS.train(ratings, rank, numIterations, lambda)
val up = ratings.map(x => x)
val predictions = model.predict(up)
"#,
        );
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].api, ApiKind::AlsTrain);
        let ratings = &f.nodes[f.calls[0].input];
        assert_eq!(ratings.trigger_sites, 1);
    }

    #[test]
    fn graph_pipeline_results_are_lineage_barriers() {
        let f = flow_of(
            r#"
val sc = new SparkContext(sparkConf)
val graph = GraphLoader.edgeListFile(sc, inputPath).cache()
val ranks = graph.staticPageRank(numIterations, resetProb = 0.15).vertices
val top = ranks.sortBy(_._2, ascending = false).take(topK)
"#,
        );
        assert_eq!(f.calls.len(), 1);
        let result = f.calls[0].result.expect("graph result node");
        assert!(f.nodes[result].parent.is_none());
        let graph = &f.nodes[f.calls[0].input];
        assert!(graph.cached);
        // One library site only — the downstream take stops at the barrier.
        assert_eq!(graph.trigger_sites, 1);
        assert!(graph.iter_weight >= 2);
        assert_eq!(f.actions.len(), 1);
        assert_eq!(f.actions[0].kind, ActionKind::Take);
    }
}

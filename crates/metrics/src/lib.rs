//! # lite-metrics — evaluation metrics and statistical tests
//!
//! The paper evaluates with ranking metrics from information retrieval
//! (HR@K, NDCG@K against a gold-standard configuration ranking), the
//! Execution Time Reduction metric (Eq. 9, with a 7200 s cap on failed or
//! over-long runs), and the Wilcoxon signed-rank test for the Adaptive
//! Model Update comparison (Table IX). All are implemented here, plus
//! Spearman correlation used in diagnostics.

pub mod ranking;
pub mod stats;

pub use ranking::{etr, hr_at_k, ndcg_at_k, rank_by, spearman, EXECUTION_CAP_S};
pub use stats::{wilcoxon_signed_rank, WilcoxonResult};

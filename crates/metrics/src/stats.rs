//! Statistical tests: Wilcoxon signed-rank (paper Table IX).

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences.
    pub w_plus: f64,
    /// Sum of ranks of negative differences.
    pub w_minus: f64,
    /// Number of non-zero differences actually tested.
    pub n: usize,
    /// One-sided p-value for the alternative "b > a" (i.e. the second
    /// sample is an *increase* over the first — the direction the paper
    /// tests when comparing NECS_u against NECS).
    pub p_value: f64,
}

/// Wilcoxon signed-rank test on paired samples.
///
/// Zero differences are dropped (the standard Wilcoxon treatment); ties in
/// `|diff|` receive mid-ranks. For `n ≤ 20` the exact null distribution of
/// `W⁻` is enumerated by dynamic programming; above that the normal
/// approximation with continuity correction is used.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let mut diffs: Vec<f64> =
        a.iter().zip(b.iter()).map(|(x, y)| y - x).filter(|d| *d != 0.0).collect();
    let n = diffs.len();
    if n == 0 {
        return WilcoxonResult { w_plus: 0.0, w_minus: 0.0, n: 0, p_value: 1.0 };
    }
    diffs.sort_by(|x, y| x.abs().total_cmp(&y.abs()));

    // Mid-ranks over |diff| with tie handling.
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[j + 1].abs() == diffs[i].abs() {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = mid;
        }
        i = j + 1;
    }

    let mut w_plus = 0.0;
    let mut w_minus = 0.0;
    for (d, r) in diffs.iter().zip(ranks.iter()) {
        if *d > 0.0 {
            w_plus += r;
        } else {
            w_minus += r;
        }
    }

    // One-sided alternative b > a: small W- is evidence. p = P(W- <= w_minus).
    let p_value = if n <= 20 && ranks.iter().all(|r| r.fract() == 0.0) {
        exact_p_leq(n, w_minus)
    } else {
        normal_p_leq(n, w_minus)
    };
    WilcoxonResult { w_plus, w_minus, n, p_value: p_value.clamp(0.0, 1.0) }
}

/// Exact `P(W <= w)` under the null via subset-sum DP over ranks `1..=n`.
fn exact_p_leq(n: usize, w: f64) -> f64 {
    let max_sum = n * (n + 1) / 2;
    let mut counts = vec![0u128; max_sum + 1];
    counts[0] = 1;
    for r in 1..=n {
        for s in (r..=max_sum).rev() {
            counts[s] += counts[s - r];
        }
    }
    let total: u128 = 1u128 << n;
    let w_floor = w.floor() as usize;
    let cum: u128 = counts.iter().take(w_floor.min(max_sum) + 1).sum();
    cum as f64 / total as f64
}

/// Normal approximation `P(W <= w)` with continuity correction.
fn normal_p_leq(n: usize, w: f64) -> f64 {
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let sd = (nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0).sqrt();
    let z = (w + 0.5 - mean) / sd;
    phi(z)
}

/// Standard normal CDF via erf approximation (Abramowitz & Stegun 7.1.26).
fn phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_increase_gives_small_p() {
        let a = vec![0.40, 0.42, 0.38, 0.45, 0.41, 0.39, 0.44, 0.43];
        let b: Vec<f64> = a.iter().map(|v| v + 0.02).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert_eq!(r.w_minus, 0.0);
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn consistent_decrease_gives_large_p() {
        let a = vec![0.40, 0.42, 0.38, 0.45, 0.41, 0.39, 0.44, 0.43];
        let b: Vec<f64> = a.iter().map(|v| v - 0.02).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.p_value > 0.95, "p = {}", r.p_value);
    }

    #[test]
    fn no_difference_is_not_significant() {
        let a = vec![1.0, 2.0, 3.0];
        let r = wilcoxon_signed_rank(&a, &a);
        assert_eq!(r.n, 0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn mixed_differences_give_moderate_p() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = vec![1.5, 1.5, 3.5, 3.5, 5.5, 5.5];
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.p_value > 0.05 && r.p_value < 0.95, "p = {}", r.p_value);
    }

    #[test]
    fn exact_matches_known_small_case() {
        // n=3, all positive: W- = 0 => p = P(W <= 0) = 1/8.
        let a = vec![0.0, 0.0, 0.0];
        let b = vec![1.0, 2.0, 3.0];
        let r = wilcoxon_signed_rank(&a, &b);
        assert!((r.p_value - 0.125).abs() < 1e-12, "p = {}", r.p_value);
    }

    #[test]
    fn normal_approximation_used_for_large_n() {
        let a: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|v| v + 1.0 + (v % 3.0)).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert_eq!(r.n, 40);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn w_plus_and_w_minus_partition_rank_sum() {
        let a = vec![1.0, 5.0, 2.0, 8.0, 3.0];
        let b = vec![2.0, 4.0, 4.0, 7.0, 6.0];
        let r = wilcoxon_signed_rank(&a, &b);
        let expect = r.n * (r.n + 1) / 2;
        assert!((r.w_plus + r.w_minus - expect as f64).abs() < 1e-9);
    }

    #[test]
    fn phi_sanity() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!((phi(1.96) - 0.975).abs() < 1e-3);
        assert!((phi(-1.96) - 0.025).abs() < 1e-3);
    }
}

//! Ranking metrics: HR@K, NDCG@K, ETR, Spearman.

/// The paper's execution-time cap: runs longer than two hours (or failed
/// runs) are recorded as 7200 seconds (Section V-B).
pub const EXECUTION_CAP_S: f64 = 7200.0;

/// Indices `0..n` sorted ascending by score (ties broken by index, so the
/// ordering is deterministic).
pub fn rank_by(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    idx
}

/// Hit ratio at K: fraction of the gold top-K items recovered in the
/// predicted top-K. Both rankings are *ascending by execution time* (lower
/// is better).
pub fn hr_at_k(predicted: &[f64], gold: &[f64], k: usize) -> f64 {
    assert_eq!(predicted.len(), gold.len(), "ranking length mismatch");
    assert!(k >= 1, "k must be >= 1");
    let k = k.min(predicted.len());
    let p: std::collections::HashSet<usize> = rank_by(predicted).into_iter().take(k).collect();
    let g = rank_by(gold);
    let hits = g.iter().take(k).filter(|i| p.contains(i)).count();
    hits as f64 / k as f64
}

/// NDCG at K with graded relevance: the item at gold position `j < K` has
/// relevance `K - j` (so the metric distinguishes "good" from "better"
/// configurations, as the paper requires); items outside the gold top-K
/// have relevance 0. Discount is the standard `1 / log2(pos + 2)`.
pub fn ndcg_at_k(predicted: &[f64], gold: &[f64], k: usize) -> f64 {
    assert_eq!(predicted.len(), gold.len(), "ranking length mismatch");
    assert!(k >= 1, "k must be >= 1");
    let k = k.min(predicted.len());
    let gold_rank = rank_by(gold);
    let mut rel = vec![0.0f64; predicted.len()];
    for (pos, &item) in gold_rank.iter().take(k).enumerate() {
        rel[item] = (k - pos) as f64;
    }
    let pred_rank = rank_by(predicted);
    let dcg: f64 = pred_rank
        .iter()
        .take(k)
        .enumerate()
        .map(|(pos, &item)| rel[item] / ((pos + 2) as f64).log2())
        .sum();
    let idcg: f64 = (0..k).map(|pos| (k - pos) as f64 / ((pos + 2) as f64).log2()).sum();
    dcg / idcg
}

/// Execution Time Reduction (paper Eq. 9):
/// `ETR = (t_default - t_method) / t_default`, with both times capped at
/// [`EXECUTION_CAP_S`]. Positive means faster than default; 1.0 would mean
/// zero execution time.
pub fn etr(t_default: f64, t_method: f64) -> f64 {
    let d = t_default.min(EXECUTION_CAP_S);
    let m = t_method.min(EXECUTION_CAP_S);
    assert!(d > 0.0, "default time must be positive");
    (d - m) / d
}

/// Spearman rank correlation between two score vectors.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    assert!(n >= 2, "need at least two points");
    let rank_of = |scores: &[f64]| -> Vec<f64> {
        let order = rank_by(scores);
        let mut r = vec![0.0; scores.len()];
        for (pos, &i) in order.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let ra = rank_of(a);
    let rb = rank_of(b);
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let xa = ra[i] - mean;
        let xb = rb[i] - mean;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    num / (da * db).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let gold = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(hr_at_k(&gold, &gold, 3), 1.0);
        assert!((ndcg_at_k(&gold, &gold, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_prediction_scores_zero_hr() {
        let gold = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let pred = vec![6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(hr_at_k(&pred, &gold, 3), 0.0);
        assert_eq!(ndcg_at_k(&pred, &gold, 3), 0.0);
    }

    #[test]
    fn ndcg_rewards_ordering_within_top_k() {
        let gold = vec![1.0, 2.0, 3.0, 10.0, 11.0, 12.0];
        // Both predictions recover the right top-3 set, but one inverts it.
        let in_order = vec![0.1, 0.2, 0.3, 9.0, 9.1, 9.2];
        let inverted = vec![0.3, 0.2, 0.1, 9.0, 9.1, 9.2];
        assert_eq!(hr_at_k(&in_order, &gold, 3), hr_at_k(&inverted, &gold, 3));
        assert!(ndcg_at_k(&in_order, &gold, 3) > ndcg_at_k(&inverted, &gold, 3));
    }

    #[test]
    fn hr_is_between_zero_and_one() {
        let gold = vec![3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3];
        let pred = vec![2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0];
        let v = hr_at_k(&pred, &gold, 5);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn k_larger_than_list_is_clamped() {
        let gold = vec![1.0, 2.0];
        assert_eq!(hr_at_k(&gold, &gold, 10), 1.0);
        assert!((ndcg_at_k(&gold, &gold, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn etr_matches_paper_eq9() {
        assert!((etr(100.0, 10.0) - 0.9).abs() < 1e-12);
        assert_eq!(etr(100.0, 100.0), 0.0);
        // Failed/over-cap runs are clamped to the 7200 s cap.
        assert!((etr(10_000.0, 72.0) - (7200.0 - 72.0) / 7200.0).abs() < 1e-12);
        assert!(etr(100.0, 9_999.0) < -70.0);
    }

    #[test]
    fn spearman_detects_monotone_relations() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b: Vec<f64> = a.iter().map(|v| v * v).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c: Vec<f64> = a.iter().map(|v| -v).collect();
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_by_breaks_ties_deterministically() {
        let r = rank_by(&[1.0, 1.0, 0.5]);
        assert_eq!(r, vec![2, 0, 1]);
    }
}

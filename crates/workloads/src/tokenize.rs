//! Code tokenization and vocabulary.
//!
//! The paper represents stage-level codes as a matrix of token embeddings
//! (`C_i ∈ R^{D×N}`, `N = 1000` tokens, zero-padded). This module supplies
//! the tokenizer that turns Scala-like source into token strings, and a
//! [`Vocab`] built from the training corpus with reserved `<pad>` and
//! `<oov>` ids so unseen test-time tokens degrade gracefully.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reserved id for padding (zero embedding).
pub const PAD_TOKEN_ID: usize = 0;
/// Reserved id for out-of-vocabulary tokens.
pub const OOV_TOKEN_ID: usize = 1;

/// Split source code into tokens: identifiers (with `.`-separated parts
/// split), numbers, and single-character operators. Whitespace and string
/// literal contents are dropped.
///
/// Delegates to the workspace's one lexer in `lite-analyze`, which also
/// handles `//` line comments, `\"` escapes inside string literals, and
/// unterminated strings at EOF (the historical ad-hoc scanner mishandled
/// all three).
pub fn tokenize(source: &str) -> Vec<String> {
    lite_analyze::lex::flat_tokens(source)
}

/// A token vocabulary with reserved `<pad>` / `<oov>` entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// Build a vocabulary from a corpus of token streams. Tokens occurring
    /// fewer than `min_count` times are left out (they will map to `<oov>`).
    pub fn build<'a, I>(corpus: I, min_count: usize) -> Vocab
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for stream in corpus {
            for t in stream {
                *counts.entry(t.as_str()).or_default() += 1;
            }
        }
        let mut kept: Vec<(&str, usize)> =
            counts.into_iter().filter(|(_, c)| *c >= min_count).collect();
        // Deterministic order: by frequency desc, then lexicographic.
        kept.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mut id_to_token = vec!["<pad>".to_string(), "<oov>".to_string()];
        id_to_token.extend(kept.into_iter().map(|(t, _)| t.to_string()));
        let token_to_id = id_to_token.iter().enumerate().map(|(i, t)| (t.clone(), i)).collect();
        Vocab { token_to_id, id_to_token }
    }

    /// Vocabulary size including reserved entries.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when only the reserved tokens exist.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.len() <= 2
    }

    /// Id of a token, or `OOV_TOKEN_ID` when unknown.
    pub fn id(&self, token: &str) -> usize {
        self.token_to_id.get(token).copied().unwrap_or(OOV_TOKEN_ID)
    }

    /// Token for an id (panics on out-of-range ids).
    pub fn token(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// Encode a token stream to ids, truncated/padded to `max_len`.
    pub fn encode(&self, tokens: &[String], max_len: usize) -> Vec<usize> {
        let mut ids: Vec<usize> = tokens.iter().take(max_len).map(|t| self.id(t)).collect();
        ids.resize(max_len, PAD_TOKEN_ID);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_identifiers_and_operators() {
        let toks = tokenize("val x = rdd.map(f).reduceByKey(_ + _)");
        let expect = [
            "val",
            "x",
            "=",
            "rdd",
            ".",
            "map",
            "(",
            "f",
            ")",
            ".",
            "reduceByKey",
            "(",
            "_",
            "+",
            "_",
            ")",
        ];
        assert_eq!(toks, expect.map(String::from).to_vec());
    }

    #[test]
    fn tokenize_collapses_string_literals() {
        let toks = tokenize(r#"setAppName("TeraSort")"#);
        assert!(toks.contains(&"\"str\"".to_string()));
        assert!(!toks.iter().any(|t| t.contains("TeraSort")));
    }

    #[test]
    fn tokenize_skips_line_comments() {
        assert_eq!(tokenize("a // comment with val x = 1\nb"), ["a", "b"].map(String::from));
        // A lone slash is still an operator token.
        assert_eq!(tokenize("a / b"), ["a", "/", "b"].map(String::from));
    }

    #[test]
    fn tokenize_handles_escaped_quotes_in_strings() {
        // The escaped quote stays inside: one literal, not two.
        assert_eq!(
            tokenize(r#"f("a\"b") + g"#),
            ["f", "(", "\"str\"", ")", "+", "g"].map(String::from)
        );
    }

    #[test]
    fn tokenize_keeps_unterminated_string_at_eof() {
        assert_eq!(tokenize(r#"x = "never closed"#), ["x", "=", "\"str\""].map(String::from));
    }

    #[test]
    fn vocab_reserves_pad_and_oov() {
        let streams = [tokenize("map filter map"), tokenize("map reduce")];
        let refs: Vec<&[String]> = streams.iter().map(|s| s.as_slice()).collect();
        let v = Vocab::build(refs.iter().copied(), 1);
        assert_eq!(v.token(PAD_TOKEN_ID), "<pad>");
        assert_eq!(v.token(OOV_TOKEN_ID), "<oov>");
        // "map" is the most frequent real token -> first non-reserved id.
        assert_eq!(v.id("map"), 2);
        assert_eq!(v.id("never-seen"), OOV_TOKEN_ID);
    }

    #[test]
    fn min_count_filters_rare_tokens() {
        let streams = [tokenize("common common rare")];
        let refs: Vec<&[String]> = streams.iter().map(|s| s.as_slice()).collect();
        let v = Vocab::build(refs.iter().copied(), 2);
        assert_ne!(v.id("common"), OOV_TOKEN_ID);
        assert_eq!(v.id("rare"), OOV_TOKEN_ID);
    }

    #[test]
    fn encode_pads_and_truncates() {
        let stream = tokenize("a b c");
        let refs: Vec<&[String]> = vec![stream.as_slice()];
        let v = Vocab::build(refs.iter().copied(), 1);
        let short = v.encode(&stream, 5);
        assert_eq!(short.len(), 5);
        assert_eq!(&short[3..], &[PAD_TOKEN_ID, PAD_TOKEN_ID]);
        let truncated = v.encode(&stream, 2);
        assert_eq!(truncated.len(), 2);
        assert!(truncated.iter().all(|&id| id != PAD_TOKEN_ID));
    }

    #[test]
    fn vocab_build_is_deterministic() {
        let streams = [tokenize("x y z zz y x w v u t"), tokenize("y x q")];
        let refs: Vec<&[String]> = streams.iter().map(|s| s.as_slice()).collect();
        let a = Vocab::build(refs.iter().copied(), 1);
        let b = Vocab::build(refs.iter().copied(), 1);
        assert_eq!(a.id_to_token, b.id_to_token);
    }
}

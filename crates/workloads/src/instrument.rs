//! Instrumentation: recover stage-level codes and scheduler DAGs.
//!
//! Paper Section III-B, Step 1: a Java agent monitors which Spark-core
//! classes load during each stage and the application's event log is parsed
//! afterwards to extract stage-level codes and DAGs. Here the same contract
//! is realized against the simulator: [`instrument_app`] runs the
//! application **once on the smallest dataset** (exactly what LITE does for
//! cold-start applications), parses the emitted binary event log, and
//! expands each stage's operators into instrumented source.
//!
//! The output is a list of *stage templates*: deduplicated by template
//! name, each with its operator DAG and expanded source. Iterative stages
//! collapse onto one template, but the per-run instance multiplicity is
//! reported so Stage-based Code Organization can account for augmentation
//! (paper Figure 9).

use crate::apps::{build_job, AppId};
use crate::data::SizeTier;
use crate::srcgen::expand_stage_source;
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::ConfSpace;
use lite_sparksim::eventlog::{decode, emit, emit_v2, encode, Event};
use lite_sparksim::exec::{simulate, simulate_obs, SimObs};
use lite_sparksim::plan::OpDag;

/// One instrumented stage template.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCode {
    /// Stable template name (e.g. `"pr-contrib"`).
    pub template: String,
    /// The operator DAG recovered from the event log.
    pub dag: OpDag,
    /// Expanded stage-level source (operator implementations + closure).
    pub source: String,
    /// How many instances of this template one application run produces.
    pub instances_per_run: usize,
}

/// Instrument an application: run it once on the smallest dataset with the
/// default configuration, parse the event log, and return its stage
/// templates in first-appearance order.
///
/// This mirrors the paper's cold-start path: "we run the application on the
/// smallest dataset possible and perform instrumentation to quickly obtain
/// stage-level codes and DAG scheduler".
pub fn instrument_app(app: AppId) -> Vec<StageCode> {
    let data = app.dataset(SizeTier::Train(0));
    let plan = build_job(app, &data);
    let cluster = ClusterSpec::cluster_a();
    let conf = ConfSpace::table_iv().default_conf();
    let result = simulate(&cluster, &conf, &plan, 0x11f3);

    // Round-trip through the wire format: the extractor only sees log
    // contents, never in-memory plan structs.
    let log = decode(encode(&emit(&plan, &result))).expect("own log decodes");

    let mut templates: Vec<StageCode> = Vec::new();
    for ev in &log {
        if let Event::StageSubmitted { name, dag, .. } = ev {
            if let Some(existing) = templates.iter_mut().find(|t| &t.template == name) {
                existing.instances_per_run += 1;
                continue;
            }
            let closure = app.stage_closure(name);
            templates.push(StageCode {
                template: name.clone(),
                dag: dag.clone(),
                source: expand_stage_source(dag, closure),
                instances_per_run: 1,
            });
        }
    }
    assert!(!templates.is_empty(), "{app}: instrumentation saw no stages");
    templates
}

/// Statically recover the same stage templates [`instrument_app`] gets
/// from an instrumented run — zero simulator runs.
///
/// The `lite-analyze` crate parses the application's main source, walks
/// RDD lineage, and expands recognized library calls through its stage
/// knowledge base. Only the iteration count (a property of the dataset
/// tier, not of the code) is passed in from the dynamic side. Equivalence
/// against [`instrument_app`] on all 15 workloads is asserted by the
/// `static_equivalence` integration test.
pub fn static_stage_codes(app: AppId) -> Vec<StageCode> {
    let data = app.dataset(SizeTier::Train(0));
    let opts = lite_analyze::ExtractOptions { iterations: data.iterations.max(1) };
    let extraction = lite_analyze::extract_stages(app.main_source(), opts)
        .unwrap_or_else(|e| panic!("{app}: static extraction failed: {e}"));
    extraction
        .stages
        .into_iter()
        .map(|s| {
            let dag = OpDag::chain(&s.ops);
            let closure = app.stage_closure(&s.template);
            StageCode {
                source: expand_stage_source(&dag, closure),
                template: s.template,
                dag,
                instances_per_run: s.instances_per_run,
            }
        })
        .collect()
}

/// Total stage instances per application run (the augmentation factor of
/// paper Figure 9: one application instance yields this many stage-level
/// training instances).
pub fn augmentation_factor(templates: &[StageCode]) -> usize {
    templates.iter().map(|t| t.instances_per_run).sum()
}

/// Task-level signals for one stage template, aggregated from the SLOG v2
/// `TaskEnd` records of an instrumentation run. These are the per-task
/// Spark-UI metrics an operator inspects when diagnosing skew, spill and GC
/// pressure; the stage-level [`StageCode`] view deliberately omits them.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTaskProfile {
    /// Stable template name, matching [`StageCode::template`].
    pub template: String,
    /// Tasks observed across all instances of the template.
    pub tasks: usize,
    /// Scheduling waves (max wave index + 1, over instances).
    pub waves: u32,
    /// Mean task duration in seconds.
    pub mean_task_s: f64,
    /// Slowest task duration in seconds.
    pub max_task_s: f64,
    /// Skew ratio: slowest task over mean task duration (≥ 1).
    pub skew: f64,
    /// Total bytes spilled by the template's tasks.
    pub spill_bytes: u64,
    /// Total GC seconds across the template's tasks.
    pub gc_time_s: f64,
    /// Total shuffle bytes fetched.
    pub shuffle_read_bytes: u64,
    /// Total shuffle bytes written.
    pub shuffle_write_bytes: u64,
}

/// Instrument an application at task granularity: run it once on the
/// smallest dataset with per-task statistics enabled, round-trip the v2
/// event log, and aggregate `TaskEnd` records per stage template.
///
/// Like [`instrument_app`], the extractor only reads decoded log records —
/// the `stage_id → template` mapping itself comes from the
/// `StageSubmitted` records in the same log.
pub fn task_profiles(app: AppId) -> Vec<StageTaskProfile> {
    let data = app.dataset(SizeTier::Train(0));
    let plan = build_job(app, &data);
    let cluster = ClusterSpec::cluster_a();
    let conf = ConfSpace::table_iv().default_conf();
    let obs = SimObs { collect_tasks: true, ..SimObs::disabled() };
    let result = simulate_obs(&cluster, &conf, &plan, 0x11f3, &obs);
    let log = decode(encode(&emit_v2(&plan, &result))).expect("own v2 log decodes");

    let mut stage_template: Vec<(u32, String)> = Vec::new();
    let mut profiles: Vec<StageTaskProfile> = Vec::new();
    for ev in &log {
        match ev {
            Event::StageSubmitted { stage_id, name, .. } => {
                stage_template.push((*stage_id, name.clone()));
                if !profiles.iter().any(|p| &p.template == name) {
                    profiles.push(StageTaskProfile {
                        template: name.clone(),
                        tasks: 0,
                        waves: 0,
                        mean_task_s: 0.0,
                        max_task_s: 0.0,
                        skew: 1.0,
                        spill_bytes: 0,
                        gc_time_s: 0.0,
                        shuffle_read_bytes: 0,
                        shuffle_write_bytes: 0,
                    });
                }
            }
            Event::TaskEnd {
                stage_id,
                wave,
                duration_s,
                spill_bytes,
                gc_time_s,
                shuffle_read_bytes,
                shuffle_write_bytes,
                ..
            } => {
                let template = stage_template
                    .iter()
                    .find(|(id, _)| id == stage_id)
                    .map(|(_, name)| name.clone())
                    .expect("TaskEnd before StageSubmitted");
                let p =
                    profiles.iter_mut().find(|p| p.template == template).expect("profile exists");
                p.tasks += 1;
                p.waves = p.waves.max(wave + 1);
                // Accumulate the sum in `mean_task_s`; normalized below.
                p.mean_task_s += duration_s;
                p.max_task_s = p.max_task_s.max(*duration_s);
                p.spill_bytes += spill_bytes;
                p.gc_time_s += gc_time_s;
                p.shuffle_read_bytes += shuffle_read_bytes;
                p.shuffle_write_bytes += shuffle_write_bytes;
            }
            _ => {}
        }
    }
    for p in &mut profiles {
        if p.tasks > 0 {
            p.mean_task_s /= p.tasks as f64;
            p.skew = (p.max_task_s / p.mean_task_s.max(1e-12)).max(1.0);
        }
    }
    profiles.retain(|p| p.tasks > 0);
    assert!(!profiles.is_empty(), "{app}: no task records in v2 log");
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    #[test]
    fn instrumentation_recovers_all_stage_templates() {
        let templates = instrument_app(AppId::PageRank);
        let names: Vec<&str> = templates.iter().map(|t| t.template.as_str()).collect();
        assert!(names.contains(&"load-edges"));
        assert!(names.contains(&"pr-contrib"));
        assert!(names.contains(&"pr-update"));
        // 10 iterations of the contrib template in one run.
        let contrib = templates.iter().find(|t| t.template == "pr-contrib").unwrap();
        assert_eq!(contrib.instances_per_run, 10);
    }

    #[test]
    fn augmentation_factors_match_figure_9_shape() {
        // Terasort: smallest augmentation (4 stages); SCC: by far the most.
        let ts = augmentation_factor(&instrument_app(AppId::Terasort));
        let scc = augmentation_factor(&instrument_app(AppId::StronglyConnectedComponent));
        assert_eq!(ts, 4);
        assert!(scc > 10 * ts, "scc={scc} ts={ts}");
    }

    #[test]
    fn stage_sources_are_denser_than_main_body() {
        for app in [AppId::Terasort, AppId::KMeans, AppId::TriangleCount] {
            let main_tokens = tokenize(app.main_source()).len();
            let templates = instrument_app(app);
            let avg_stage_tokens: usize =
                templates.iter().map(|t| tokenize(&t.source).len()).sum::<usize>()
                    / templates.len();
            assert!(
                avg_stage_tokens * 2 > main_tokens,
                "{app}: stage codes not denser ({avg_stage_tokens} vs {main_tokens})"
            );
        }
    }

    #[test]
    fn dags_come_from_the_event_log() {
        let templates = instrument_app(AppId::Sort);
        for t in &templates {
            t.dag.validate().unwrap();
            assert!(!t.dag.is_empty());
        }
    }

    #[test]
    fn instrumentation_is_deterministic() {
        let a = instrument_app(AppId::Svm);
        let b = instrument_app(AppId::Svm);
        assert_eq!(a, b);
    }

    #[test]
    fn task_profiles_cover_every_stage_template() {
        let templates = instrument_app(AppId::PageRank);
        let profiles = task_profiles(AppId::PageRank);
        for t in &templates {
            let p = profiles
                .iter()
                .find(|p| p.template == t.template)
                .unwrap_or_else(|| panic!("no task profile for {}", t.template));
            assert!(p.tasks > 0);
            assert!(p.waves >= 1);
            assert!(p.mean_task_s > 0.0);
            assert!(p.skew >= 1.0);
            assert!(p.max_task_s >= p.mean_task_s);
        }
    }

    #[test]
    fn shuffle_heavy_templates_show_shuffle_reads() {
        // Terasort's sort stage reads its input over the shuffle.
        let profiles = task_profiles(AppId::Terasort);
        assert!(
            profiles.iter().any(|p| p.shuffle_read_bytes > 0),
            "no shuffle reads in {profiles:?}"
        );
    }

    #[test]
    fn task_profiles_are_deterministic() {
        assert_eq!(task_profiles(AppId::Sort), task_profiles(AppId::Sort));
    }
}

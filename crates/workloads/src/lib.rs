//! # lite-workloads — the spark-bench application suite
//!
//! The paper evaluates LITE on fifteen spark-bench applications covering
//! machine learning, graph analytics and MapReduce. This crate provides
//! those applications as *synthetic but structurally faithful* workloads:
//!
//! * each application has a brief Scala-like **main body** whose important
//!   tokens are rare and distinctive (paper Figure 4),
//! * a **stage decomposition** with per-stage operator DAGs and cost
//!   profiles consumed by the `lite-sparksim` engine, and
//! * an **instrumentation** step that expands each stage's operators into
//!   the underlying RDD-implementation source, yielding the dense
//!   stage-level token streams of paper Figure 5.
//!
//! Entry points:
//! * [`apps::AppId`] — the fifteen applications,
//! * [`data::DataSpec`] / [`data::SizeTier`] — Table V's data ladders,
//! * [`apps::build_job`] — application × data → simulator [`JobPlan`],
//! * [`instrument::instrument_app`] — stage-level codes + DAGs from a
//!   profiling run on the smallest dataset (the paper's cold-start path).
//!
//! [`JobPlan`]: lite_sparksim::plan::JobPlan

pub mod apps;
pub mod data;
pub mod instrument;
pub mod srcgen;
pub mod tokenize;

pub use apps::{build_job, AppId};
pub use data::{DataSpec, SizeTier};
pub use instrument::{instrument_app, StageCode};
pub use tokenize::{tokenize, Vocab, OOV_TOKEN_ID, PAD_TOKEN_ID};

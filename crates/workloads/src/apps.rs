//! The fifteen spark-bench applications (paper Table V).
//!
//! Each application defines:
//! * a **data ladder** ([`AppId::dataset`]) following Table V's
//!   small/mid/large sizes,
//! * a brief **main body** ([`AppId::main_source`]) whose distinguishing
//!   tokens are rare (paper Figure 4) — this is what the `WC` baselines
//!   see, and
//! * a **job builder** ([`build_job`]) producing the stage-level physical
//!   plan with operator DAGs and cost profiles for the simulator.
//!
//! Stage *templates* are shared across iterations: running PageRank for ten
//! iterations yields ten instances of the same two stage templates, which
//! is exactly the data augmentation Stage-based Code Organization exploits
//! (paper Figure 9).

use crate::data::{DataSpec, SizeTier};
use lite_sparksim::plan::{InputSource, JobPlan, OpDag, OpKind, StagePlan};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The fifteen evaluation applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AppId {
    KMeans,
    LinearRegression,
    LogisticRegression,
    Svm,
    DecisionTree,
    MatrixFactorization,
    SvdPlusPlus,
    PageRank,
    TriangleCount,
    ConnectedComponent,
    StronglyConnectedComponent,
    ShortestPaths,
    LabelPropagation,
    Terasort,
    Sort,
}

/// Workload category (paper: ML, graph and MapReduce algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Category {
    /// Iterative machine-learning algorithms.
    Ml,
    /// Graph analytics (GraphX-style).
    Graph,
    /// MapReduce-style batch jobs.
    MapReduce,
}

impl AppId {
    /// All applications in a stable order.
    pub fn all() -> [AppId; 15] {
        use AppId::*;
        [
            KMeans,
            LinearRegression,
            LogisticRegression,
            Svm,
            DecisionTree,
            MatrixFactorization,
            SvdPlusPlus,
            PageRank,
            TriangleCount,
            ConnectedComponent,
            StronglyConnectedComponent,
            ShortestPaths,
            LabelPropagation,
            Terasort,
            Sort,
        ]
    }

    /// Full name as used in spark-bench.
    pub fn name(self) -> &'static str {
        match self {
            AppId::KMeans => "KMeans",
            AppId::LinearRegression => "LinearRegression",
            AppId::LogisticRegression => "LogisticRegression",
            AppId::Svm => "SVM",
            AppId::DecisionTree => "DecisionTree",
            AppId::MatrixFactorization => "MatrixFactorization",
            AppId::SvdPlusPlus => "SVDPlusPlus",
            AppId::PageRank => "PageRank",
            AppId::TriangleCount => "TriangleCount",
            AppId::ConnectedComponent => "ConnectedComponent",
            AppId::StronglyConnectedComponent => "StronglyConnectedComponent",
            AppId::ShortestPaths => "ShortestPaths",
            AppId::LabelPropagation => "LabelPropagation",
            AppId::Terasort => "Terasort",
            AppId::Sort => "Sort",
        }
    }

    /// Abbreviation used in the paper's tables and figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            AppId::KMeans => "KM",
            AppId::LinearRegression => "LiR",
            AppId::LogisticRegression => "LoR",
            AppId::Svm => "SVM",
            AppId::DecisionTree => "DT",
            AppId::MatrixFactorization => "MF",
            AppId::SvdPlusPlus => "SVD",
            AppId::PageRank => "PR",
            AppId::TriangleCount => "TC",
            AppId::ConnectedComponent => "CC",
            AppId::StronglyConnectedComponent => "SCC",
            AppId::ShortestPaths => "SP",
            AppId::LabelPropagation => "LP",
            AppId::Terasort => "TS",
            AppId::Sort => "SRT",
        }
    }

    /// Workload category.
    pub fn category(self) -> Category {
        match self {
            AppId::KMeans
            | AppId::LinearRegression
            | AppId::LogisticRegression
            | AppId::Svm
            | AppId::DecisionTree
            | AppId::MatrixFactorization
            | AppId::SvdPlusPlus => Category::Ml,
            AppId::PageRank
            | AppId::TriangleCount
            | AppId::ConnectedComponent
            | AppId::StronglyConnectedComponent
            | AppId::ShortestPaths
            | AppId::LabelPropagation => Category::Graph,
            AppId::Terasort | AppId::Sort => Category::MapReduce,
        }
    }

    /// Stable index in [`AppId::all`].
    pub fn index(self) -> usize {
        AppId::all().iter().position(|a| *a == self).expect("app in all()")
    }

    /// Dataset for a tier of the Table V ladder. Base sizes are ~40 MB at
    /// `Train(0)` scaling to ~16 GB at `Test`.
    pub fn dataset(self, tier: SizeTier) -> DataSpec {
        const BASE_BYTES: f64 = 40.0 * 1024.0 * 1024.0;
        let bytes = BASE_BYTES * tier.scale();
        match self {
            AppId::KMeans => tabular_for_bytes(bytes, 20, 8),
            AppId::LinearRegression => tabular_for_bytes(bytes, 50, 10),
            AppId::LogisticRegression => tabular_for_bytes(bytes, 50, 10),
            AppId::Svm => tabular_for_bytes(bytes, 100, 10),
            AppId::DecisionTree => tabular_for_bytes(bytes, 30, 5),
            AppId::MatrixFactorization => tabular_for_bytes(bytes, 3, 8),
            AppId::SvdPlusPlus => DataSpec::graph((bytes / 16.0) as u64, 6),
            AppId::PageRank => DataSpec::graph((bytes / 16.0) as u64, 10),
            AppId::TriangleCount => DataSpec::graph((bytes / 16.0) as u64, 0),
            AppId::ConnectedComponent => DataSpec::graph((bytes / 16.0) as u64, 8),
            AppId::StronglyConnectedComponent => DataSpec::graph((bytes / 16.0) as u64, 6),
            AppId::ShortestPaths => DataSpec::graph((bytes / 16.0) as u64, 8),
            AppId::LabelPropagation => DataSpec::graph((bytes / 16.0) as u64, 8),
            AppId::Terasort => DataSpec::records((bytes / 100.0) as u64, 100, 64),
            AppId::Sort => DataSpec::records((bytes / 100.0) as u64, 100, 64),
        }
    }

    /// The application's brief main body (what an engineer submits; paper
    /// Figure 4). Distinctive tokens are deliberately rare across apps.
    pub fn main_source(self) -> &'static str {
        match self {
            AppId::KMeans => {
                r#"
val sparkConf = new SparkConf().setAppName("KMeans")
val sc = new SparkContext(sparkConf)
val data = sc.textFile(inputPath)
val parsedData = data.map(s => Vectors.dense(s.split(' ').map(_.toDouble))).cache()
val clusters = KMeans.train(parsedData, numClusters, numIterations, KMeans.K_MEANS_PARALLEL)
val WSSSE = clusters.computeCost(parsedData)
println(s"Within Set Sum of Squared Errors = $WSSSE")
sc.stop()
"#
            }
            AppId::LinearRegression => {
                r#"
val sparkConf = new SparkConf().setAppName("LinearRegression")
val sc = new SparkContext(sparkConf)
val examples = MLUtils.loadLibSVMFile(sc, inputPath).cache()
val algorithm = new LinearRegressionWithSGD()
algorithm.optimizer.setNumIterations(numIterations).setStepSize(stepSize)
val model = algorithm.run(examples)
val prediction = model.predict(examples.map(_.features))
sc.stop()
"#
            }
            AppId::LogisticRegression => {
                r#"
val sparkConf = new SparkConf().setAppName("LogisticRegression")
val sc = new SparkContext(sparkConf)
val training = MLUtils.loadLibSVMFile(sc, inputPath).cache()
val lr = new LogisticRegressionWithLBFGS().setNumClasses(numClasses)
val model = lr.run(training)
val predictionAndLabels = training.map { case LabeledPoint(label, features) =>
  (model.predict(features), label) }
sc.stop()
"#
            }
            AppId::Svm => {
                r#"
val sparkConf = new SparkConf().setAppName("SVM")
val sc = new SparkContext(sparkConf)
val training = MLUtils.loadLibSVMFile(sc, inputPath).cache()
val svmAlg = new SVMWithSGD()
svmAlg.optimizer.setNumIterations(numIterations).setRegParam(regParam).setUpdater(new SquaredL2Updater)
val model = svmAlg.run(training)
val scoreAndLabels = training.map(p => (model.predict(p.features), p.label))
sc.stop()
"#
            }
            AppId::DecisionTree => {
                r#"
val sparkConf = new SparkConf().setAppName("DecisionTree")
val sc = new SparkContext(sparkConf)
val data = MLUtils.loadLabeledPoints(sc, inputPath).cache()
val strategy = new Strategy(Classification, Gini, maxDepth, numClasses, maxBins)
val model = DecisionTree.train(data, strategy)
val labelAndPreds = data.map(point => (point.label, model.predict(point.features)))
val testErr = labelAndPreds.filter(r => r._1 != r._2).count.toDouble / data.count
sc.stop()
"#
            }
            AppId::MatrixFactorization => {
                r#"
val sparkConf = new SparkConf().setAppName("MatrixFactorization")
val sc = new SparkContext(sparkConf)
val ratings = sc.textFile(inputPath).map(_.split("::") match {
  case Array(user, item, rate) => Rating(user.toInt, item.toInt, rate.toDouble) })
val model = ALS.train(ratings, rank, numIterations, lambda)
val usersProducts = ratings.map { case Rating(user, product, rate) => (user, product) }
val predictions = model.predict(usersProducts)
sc.stop()
"#
            }
            AppId::SvdPlusPlus => {
                r#"
val sparkConf = new SparkConf().setAppName("SVDPlusPlus")
val sc = new SparkContext(sparkConf)
val edges = sc.textFile(inputPath).map { line =>
  val fields = line.split(",")
  Edge(fields(0).toLong, fields(1).toLong, fields(2).toDouble) }
val conf = new SVDPlusPlus.Conf(rank, maxIters, minVal, maxVal, gamma1, gamma2, gamma6, gamma7)
val (g, mean) = SVDPlusPlus.run(edges, conf)
sc.stop()
"#
            }
            AppId::PageRank => {
                r#"
val sparkConf = new SparkConf().setAppName("PageRank")
val sc = new SparkContext(sparkConf)
val graph = GraphLoader.edgeListFile(sc, inputPath).cache()
val ranks = graph.staticPageRank(numIterations, resetProb = 0.15).vertices
val top = ranks.sortBy(_._2, ascending = false).take(topK)
top.foreach { case (id, rank) => println(s"$id has rank $rank") }
sc.stop()
"#
            }
            AppId::TriangleCount => {
                r#"
val sparkConf = new SparkConf().setAppName("TriangleCount")
val sc = new SparkContext(sparkConf)
val graph = GraphLoader.edgeListFile(sc, inputPath, canonicalOrientation = true)
  .partitionBy(PartitionStrategy.RandomVertexCut)
val triCounts = graph.triangleCount().vertices
val totalTriangles = triCounts.map(_._2).reduce(_ + _) / 3
println(s"Total triangles: $totalTriangles")
sc.stop()
"#
            }
            AppId::ConnectedComponent => {
                r#"
val sparkConf = new SparkConf().setAppName("ConnectedComponent")
val sc = new SparkContext(sparkConf)
val graph = GraphLoader.edgeListFile(sc, inputPath).cache()
val cc = graph.connectedComponents().vertices
val componentSizes = cc.map { case (_, cid) => (cid, 1L) }.reduceByKey(_ + _)
println(s"Number of components: ${componentSizes.count}")
sc.stop()
"#
            }
            AppId::StronglyConnectedComponent => {
                r#"
val sparkConf = new SparkConf().setAppName("StronglyConnectedComponent")
val sc = new SparkContext(sparkConf)
val graph = GraphLoader.edgeListFile(sc, inputPath).cache()
val sccGraph = graph.stronglyConnectedComponents(numIter)
val sccSizes = sccGraph.vertices.map { case (_, root) => (root, 1L) }.reduceByKey(_ + _)
println(s"Largest SCC: ${sccSizes.map(_._2).max}")
sc.stop()
"#
            }
            AppId::ShortestPaths => {
                r#"
val sparkConf = new SparkConf().setAppName("ShortestPaths")
val sc = new SparkContext(sparkConf)
val graph = GraphLoader.edgeListFile(sc, inputPath).cache()
val landmarks = Seq(1L, 4L, 7L)
val results = ShortestPaths.run(graph, landmarks).vertices
results.take(topK).foreach { case (id, spMap) => println(s"$id -> $spMap") }
sc.stop()
"#
            }
            AppId::LabelPropagation => {
                r#"
val sparkConf = new SparkConf().setAppName("LabelPropagation")
val sc = new SparkContext(sparkConf)
val graph = GraphLoader.edgeListFile(sc, inputPath).cache()
val communities = LabelPropagation.run(graph, maxSteps)
val communitySizes = communities.vertices.map { case (_, label) => (label, 1L) }.reduceByKey(_ + _)
sc.stop()
"#
            }
            AppId::Terasort => {
                r#"
val sparkConf = new SparkConf().setAppName("TeraSort")
val sc = new SparkContext(sparkConf)
val file = sc.textFile(inputFile)
val data = file.map(line => (line.substring(0, 10), line.substring(10)))
val partitioned = data.repartitionAndSortWithinPartitions(new TeraSortPartitioner(partitions))
partitioned.saveAsTextFile(outputFile)
sc.stop()
"#
            }
            AppId::Sort => {
                r#"
val sparkConf = new SparkConf().setAppName("Sort")
val sc = new SparkContext(sparkConf)
val lines = sc.textFile(inputFile)
val keyed = lines.map(line => (line.split("\t")(0), line))
val sorted = keyed.sortByKey(ascending = true, numPartitions = partitions)
sorted.map(_._2).saveAsTextFile(outputFile)
sc.stop()
"#
            }
        }
    }

    /// The app-specific closure source injected into a stage's expanded
    /// code, keyed by the stage's template name. Iterative stage templates
    /// share one closure across iterations.
    pub fn stage_closure(self, template: &str) -> &'static str {
        closure_for(self, template)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn tabular_for_bytes(bytes: f64, cols: u32, iterations: u32) -> DataSpec {
    let rows = (bytes / ((cols as f64 + 1.0) * 8.0)) as u64;
    DataSpec::tabular(rows, cols, iterations)
}

/// Small builder to keep stage definitions terse.
struct Sb(StagePlan);

impl Sb {
    fn new(name: &str, ops: &[OpKind], bytes: u64) -> Sb {
        Sb(StagePlan::new(name, OpDag::chain(ops), bytes))
    }
    fn src(mut self, s: InputSource) -> Sb {
        self.0.input = s;
        self
    }
    fn shuffle_out(mut self, bytes: u64) -> Sb {
        self.0.shuffle_write_bytes = bytes;
        self
    }
    fn result(mut self, bytes: u64) -> Sb {
        self.0.result_bytes = bytes;
        self
    }
    fn cycles(mut self, c: f64) -> Sb {
        self.0.cycles_per_byte = c;
        self
    }
    fn mem(mut self, m: f64) -> Sb {
        self.0.mem_intensity = m;
        self
    }
    fn ws(mut self, w: f64) -> Sb {
        self.0.working_set_factor = w;
        self
    }
    fn cache(mut self) -> Sb {
        self.0.cache_output = true;
        self
    }
    fn skew(mut self, s: f64) -> Sb {
        self.0.skew_sigma = s;
        self
    }
    fn done(self) -> StagePlan {
        self.0
    }
}

/// Build the physical job plan for an application on a dataset.
///
/// Stage template names (`"parse-cache"`, `"pr-contrib"`, …) are stable
/// across iterations and data sizes; they key both the closure sources and
/// the stage-template grouping used by Stage-based Code Organization.
pub fn build_job(app: AppId, data: &DataSpec) -> JobPlan {
    use InputSource::{Cache, Shuffle};
    use OpKind::*;
    let b = data.bytes;
    let iters = data.iterations.max(1) as usize;
    let mut stages: Vec<StagePlan> = Vec::new();

    match app {
        AppId::KMeans => {
            stages.push(
                Sb::new("parse-cache", &[TextFile, Map, Cache2()], b)
                    .cycles(40.0)
                    .mem(0.5)
                    .ws(0.4)
                    .cache()
                    .done(),
            );
            for _ in 0..iters {
                stages.push(
                    Sb::new("km-assign", &[MapPartitions, TreeAggregate], b)
                        .src(Cache)
                        .cycles(320.0)
                        .mem(0.75)
                        .ws(0.35)
                        .shuffle_out(2 << 20)
                        .result(64 << 10)
                        .done(),
                );
            }
            stages.push(
                Sb::new("compute-cost", &[MapPartitions, TreeReduce], b)
                    .src(Cache)
                    .cycles(120.0)
                    .mem(0.7)
                    .result(8 << 10)
                    .done(),
            );
        }
        AppId::LinearRegression | AppId::LogisticRegression | AppId::Svm => {
            let (grad_name, cycles) = match app {
                AppId::LinearRegression => ("lir-gradient", 240.0),
                AppId::LogisticRegression => ("lor-gradient", 360.0),
                _ => ("svm-gradient", 300.0),
            };
            stages.push(
                Sb::new("parse-cache", &[TextFile, Map, Cache2()], b)
                    .cycles(50.0)
                    .mem(0.5)
                    .ws(0.4)
                    .cache()
                    .done(),
            );
            for _ in 0..iters {
                stages.push(
                    Sb::new(grad_name, &[MapPartitions, TreeAggregate], b)
                        .src(Cache)
                        .cycles(cycles)
                        .mem(0.85)
                        .ws(0.3)
                        .shuffle_out(1 << 20)
                        .result((data.cols as u64 + 1) * 8 * 64)
                        .done(),
                );
            }
            stages.push(
                Sb::new("predict-eval", &[Map, Count], b)
                    .src(Cache)
                    .cycles(90.0)
                    .mem(0.6)
                    .result(4 << 10)
                    .done(),
            );
        }
        AppId::DecisionTree => {
            stages.push(
                Sb::new("parse-cache", &[TextFile, Map, Cache2()], b)
                    .cycles(45.0)
                    .mem(0.5)
                    .ws(0.4)
                    .cache()
                    .done(),
            );
            for level in 0..iters {
                // Histogram volume grows with the number of open tree nodes.
                let hist = ((1u64 << level.min(6)) * data.cols as u64 * 32 * 8 * 64).min(b / 2);
                stages.push(
                    Sb::new("dt-aggregate-stats", &[MapPartitions, AggregateByKey], b)
                        .src(Cache)
                        .cycles(420.0)
                        .mem(0.65)
                        .ws(1.9)
                        .shuffle_out(hist)
                        .done(),
                );
                stages.push(
                    Sb::new("dt-best-split", &[ShuffledRdd, ReduceByKey, CollectAsMap], hist)
                        .src(Shuffle)
                        .cycles(60.0)
                        .ws(1.1)
                        .result((hist / 16).max(32 << 10))
                        .done(),
                );
            }
        }
        AppId::MatrixFactorization => {
            stages.push(
                Sb::new("parse-ratings", &[TextFile, Map, KeyBy], b)
                    .cycles(35.0)
                    .shuffle_out(b)
                    .done(),
            );
            for _ in 0..iters {
                stages.push(
                    Sb::new("als-update-users", &[ShuffledRdd, Join, AggregateByKey, MapValues], b)
                        .src(Shuffle)
                        .cycles(520.0)
                        .mem(0.6)
                        .ws(1.3)
                        .shuffle_out(b)
                        .skew(0.25)
                        .done(),
                );
                stages.push(
                    Sb::new("als-update-items", &[ShuffledRdd, Join, AggregateByKey, MapValues], b)
                        .src(Shuffle)
                        .cycles(520.0)
                        .mem(0.6)
                        .ws(1.3)
                        .shuffle_out(b)
                        .skew(0.35)
                        .done(),
                );
            }
        }
        AppId::SvdPlusPlus => {
            stages.push(
                Sb::new("build-graph", &[TextFile, Map, PartitionBy], b)
                    .cycles(40.0)
                    .shuffle_out(b)
                    .done(),
            );
            stages.push(
                Sb::new("init-latent", &[ShuffledRdd, MapValues, Cache2()], b)
                    .src(Shuffle)
                    .cycles(80.0)
                    .ws(0.8)
                    .cache()
                    .done(),
            );
            for _ in 0..iters {
                stages.push(
                    Sb::new("svdpp-gradient", &[AggregateMessages, JoinVertices, MapValues], b)
                        .src(Cache)
                        .cycles(480.0)
                        .mem(0.6)
                        .ws(1.4)
                        .shuffle_out((b as f64 * 1.2) as u64)
                        .skew(0.3)
                        .done(),
                );
            }
        }
        AppId::PageRank => {
            stages.push(
                Sb::new("load-edges", &[TextFile, Map, PartitionBy, Cache2()], b)
                    .cycles(30.0)
                    .ws(0.7)
                    .shuffle_out(b)
                    .cache()
                    .done(),
            );
            stages.push(
                Sb::new("init-ranks", &[ShuffledRdd, MapValues], b / 4)
                    .src(Shuffle)
                    .cycles(20.0)
                    .done(),
            );
            for _ in 0..iters {
                stages.push(
                    Sb::new("pr-contrib", &[Join, FlatMap], b)
                        .src(Cache)
                        .cycles(45.0)
                        .mem(0.55)
                        .ws(0.8)
                        .shuffle_out((b as f64 * 0.8) as u64)
                        .skew(0.3)
                        .done(),
                );
                stages.push(
                    Sb::new(
                        "pr-update",
                        &[ShuffledRdd, ReduceByKey, MapValues],
                        (b as f64 * 0.8) as u64,
                    )
                    .src(Shuffle)
                    .cycles(30.0)
                    .ws(0.9)
                    .skew(0.25)
                    .done(),
                );
            }
            stages.push(
                Sb::new("top-ranks", &[SortByKey, Take], b / 4)
                    .src(Shuffle)
                    .cycles(25.0)
                    .ws(1.2)
                    .result(1 << 20)
                    .done(),
            );
        }
        AppId::TriangleCount => {
            stages.push(
                Sb::new("canonical-edges", &[TextFile, Map, Distinct], b)
                    .cycles(40.0)
                    .ws(1.0)
                    .shuffle_out(b)
                    .done(),
            );
            stages.push(
                Sb::new("build-adjacency", &[ShuffledRdd, GroupByKey, MapValues], b)
                    .src(Shuffle)
                    .cycles(70.0)
                    .ws(2.2)
                    .shuffle_out(b)
                    .skew(0.4)
                    .done(),
            );
            stages.push(
                Sb::new(
                    "join-neighbor-sets",
                    &[ShuffledRdd, Join, FlatMap],
                    (b as f64 * 2.4) as u64,
                )
                .src(Shuffle)
                .cycles(220.0)
                .mem(0.6)
                .ws(2.8)
                .shuffle_out(b / 2)
                .skew(0.5)
                .done(),
            );
            stages.push(
                Sb::new("count-triangles", &[ShuffledRdd, TriangleCountOp, Map, TreeReduce], b / 2)
                    .src(Shuffle)
                    .cycles(40.0)
                    .result(8 << 10)
                    .done(),
            );
        }
        AppId::ConnectedComponent => {
            stages.push(
                Sb::new("load-edges", &[TextFile, Map, PartitionBy, Cache2()], b)
                    .cycles(30.0)
                    .ws(0.7)
                    .shuffle_out(b)
                    .cache()
                    .done(),
            );
            for _ in 0..iters {
                stages.push(
                    Sb::new(
                        "cc-min-label",
                        &[ConnectedComponentsOp, AggregateMessages, ReduceByKey],
                        b,
                    )
                    .src(Cache)
                    .cycles(35.0)
                    .ws(0.7)
                    .shuffle_out((b as f64 * 0.6) as u64)
                    .done(),
                );
                stages.push(
                    Sb::new(
                        "cc-apply",
                        &[ShuffledRdd, JoinVertices, MapValues],
                        (b as f64 * 0.6) as u64,
                    )
                    .src(Shuffle)
                    .cycles(25.0)
                    .ws(0.8)
                    .done(),
                );
            }
        }
        AppId::StronglyConnectedComponent => {
            stages.push(
                Sb::new("load-edges", &[TextFile, Map, PartitionBy, Cache2()], b)
                    .cycles(30.0)
                    .ws(0.7)
                    .shuffle_out(b)
                    .cache()
                    .done(),
            );
            for _ in 0..iters {
                // Trim, forward reach, backward reach, label — the classic
                // SCC decomposition generates many short stages per round,
                // which is why SCC shows the largest augmentation factor in
                // paper Figure 9.
                stages.push(
                    Sb::new("scc-trim", &[SubGraph, Filter, Count], b)
                        .src(Cache)
                        .cycles(20.0)
                        .result(4 << 10)
                        .done(),
                );
                for _ in 0..3 {
                    stages.push(
                        Sb::new("scc-forward-reach", &[Pregel, AggregateMessages, Join], b / 2)
                            .src(Cache)
                            .cycles(28.0)
                            .ws(0.8)
                            .shuffle_out((b as f64 * 0.4) as u64)
                            .done(),
                    );
                }
                for _ in 0..3 {
                    stages.push(
                        Sb::new("scc-backward-reach", &[Pregel, AggregateMessages, Join], b / 2)
                            .src(Cache)
                            .cycles(28.0)
                            .ws(0.8)
                            .shuffle_out((b as f64 * 0.4) as u64)
                            .done(),
                    );
                }
                stages.push(
                    Sb::new(
                        "scc-label",
                        &[ShuffledRdd, ReduceByKey, JoinVertices],
                        (b as f64 * 0.4) as u64,
                    )
                    .src(Shuffle)
                    .cycles(22.0)
                    .ws(0.9)
                    .done(),
                );
            }
        }
        AppId::ShortestPaths => {
            stages.push(
                Sb::new("load-edges", &[TextFile, Map, PartitionBy, Cache2()], b)
                    .cycles(30.0)
                    .ws(0.7)
                    .shuffle_out(b)
                    .cache()
                    .done(),
            );
            for _ in 0..iters {
                stages.push(
                    Sb::new("sp-pregel-step", &[Pregel, AggregateMessages, Join, MapValues], b)
                        .src(Cache)
                        .cycles(40.0)
                        .ws(0.8)
                        .shuffle_out((b as f64 * 0.5) as u64)
                        .done(),
                );
            }
        }
        AppId::LabelPropagation => {
            stages.push(
                Sb::new("load-edges", &[TextFile, Map, PartitionBy, Cache2()], b)
                    .cycles(30.0)
                    .ws(0.7)
                    .shuffle_out(b)
                    .cache()
                    .done(),
            );
            for _ in 0..iters {
                stages.push(
                    Sb::new("lp-send-labels", &[AggregateMessages, FlatMap], b)
                        .src(Cache)
                        .cycles(30.0)
                        .ws(1.0)
                        .shuffle_out(b)
                        .skew(0.35)
                        .done(),
                );
                stages.push(
                    Sb::new("lp-adopt-label", &[ShuffledRdd, ReduceByKey, JoinVertices], b)
                        .src(Shuffle)
                        .cycles(28.0)
                        .ws(1.0)
                        .skew(0.3)
                        .done(),
                );
            }
        }
        AppId::Terasort => {
            stages.push(
                Sb::new("sample-bounds", &[TextFile, Sample, Collect], (b / 100).max(1 << 20))
                    .cycles(15.0)
                    .result(512 << 10)
                    .done(),
            );
            stages.push(
                Sb::new("count-records", &[TextFile, Count], b).cycles(8.0).result(1 << 10).done(),
            );
            stages.push(
                Sb::new("partition-records", &[TextFile, Map, PartitionBy], b)
                    .cycles(18.0)
                    .shuffle_out(b)
                    .done(),
            );
            stages.push(
                Sb::new("sort-partitions", &[ShuffledRdd, RepartitionAndSort, SaveAsTextFile], b)
                    .src(Shuffle)
                    .cycles(55.0)
                    .mem(0.55)
                    .ws(1.6)
                    .skew(0.25)
                    .done(),
            );
        }
        AppId::Sort => {
            stages.push(
                Sb::new("key-lines", &[TextFile, Map, KeyBy], b).cycles(15.0).shuffle_out(b).done(),
            );
            stages.push(
                Sb::new("sort-by-key", &[ShuffledRdd, SortByKey], b)
                    .src(Shuffle)
                    .cycles(45.0)
                    .mem(0.5)
                    .ws(1.5)
                    .skew(0.2)
                    .done(),
            );
            stages.push(
                Sb::new("save-output", &[MapValues, SaveAsTextFile], b)
                    .src(Shuffle)
                    .cycles(12.0)
                    .done(),
            );
        }
    }

    let plan = JobPlan { app_name: app.name().to_string(), stages };
    debug_assert!(plan.validate().is_ok());
    plan
}

/// `OpKind::Cache` clashes with the builder's `cache()` method name in
/// imports; tiny alias keeps the tables readable.
#[allow(non_snake_case)]
fn Cache2() -> OpKind {
    OpKind::Cache
}

fn closure_for(app: AppId, template: &str) -> &'static str {
    match (app, template) {
        (_, "parse-cache") => {
            "val parsed = line.split(' ').map(_.toDouble); Vectors.dense(parsed)"
        }
        (AppId::KMeans, "km-assign") => {
            "val cost = points.map(p => centers.map(c => Vectors.sqdist(p, c)).min).sum; \
             bcCenters.value.zipWithIndex.map { case (c, i) => (i, (sums(i), counts(i))) }"
        }
        (AppId::KMeans, "compute-cost") => {
            "points.map(p => centers.map(c => Vectors.sqdist(p, c)).min).sum"
        }
        (AppId::LinearRegression, "lir-gradient") => {
            "val diff = dot(weights, features) - label; axpy(diff, features, cumGradient)"
        }
        (AppId::LogisticRegression, "lor-gradient") => {
            "val margin = -1.0 * dot(weights, features); val multiplier = (1.0 / (1.0 + math.exp(margin))) - label; axpy(multiplier, features, cumGradient)"
        }
        (AppId::Svm, "svm-gradient") => {
            "val dotProduct = dot(features, weights); if (1.0 > label * dotProduct) { axpy(-label, features, cumGradient) }"
        }
        (_, "predict-eval") => "points.map(p => (model.predict(p.features), p.label))",
        (AppId::DecisionTree, "dt-aggregate-stats") => {
            "agg.update(treePoint.binnedFeatures, label, instanceWeight); DTStatsAggregator.merge(a, b)"
        }
        (AppId::DecisionTree, "dt-best-split") => {
            "val (bestSplit, bestGain) = binsToBestSplit(binAggregates, splits, featuresForNode)"
        }
        (AppId::MatrixFactorization, "parse-ratings") => {
            "Rating(fields(0).toInt, fields(1).toInt, fields(2).toDouble)"
        }
        (AppId::MatrixFactorization, "als-update-users") | (AppId::MatrixFactorization, "als-update-items") => {
            "val YtY = Ys.map(y => y * y.t).reduce(_ + _); CholeskyDecomposition.solve(YtY + lambda * I, Yr)"
        }
        (AppId::SvdPlusPlus, "build-graph") => "Edge(src, dst, rating)",
        (AppId::SvdPlusPlus, "init-latent") => {
            "(randomFactor(rank), randomFactor(rank), 0.0, 0.0)"
        }
        (AppId::SvdPlusPlus, "svdpp-gradient") => {
            "val pred = u + itemBias + userBias + q.dot(p + usr._2); val err = rating - pred; q += gamma2 * (err * p - gamma7 * q)"
        }
        (_, "load-edges") => "val parts = line.split(\"\\\\s+\"); Edge(parts(0).toLong, parts(1).toLong, 1)",
        (AppId::PageRank, "init-ranks") => "vertices.mapValues(v => resetProb)",
        (AppId::PageRank, "pr-contrib") => {
            "edges.flatMap { e => Iterator((e.dstId, e.srcAttr * e.attr)) }"
        }
        (AppId::PageRank, "pr-update") => {
            "ranks.mapValues(msgSum => resetProb + (1.0 - resetProb) * msgSum)"
        }
        (AppId::PageRank, "top-ranks") => "ranks.sortBy(_._2, ascending = false).take(topK)",
        (AppId::TriangleCount, "canonical-edges") => {
            "if (src < dst) (src, dst) else (dst, src)"
        }
        (AppId::TriangleCount, "build-adjacency") => {
            "val set = new VertexSet(nbrs.length); nbrs.foreach(set.add)"
        }
        (AppId::TriangleCount, "join-neighbor-sets") => {
            "val (smallSet, largeSet) = if (vs.size < ws.size) (vs, ws) else (ws, vs); smallSet.iterator.count(largeSet.contains)"
        }
        (AppId::TriangleCount, "count-triangles") => "triCounts.map(_._2).reduce(_ + _) / 3",
        (AppId::ConnectedComponent, "cc-min-label") => {
            "ctx.sendToDst(math.min(ctx.srcAttr, ctx.dstAttr))"
        }
        (AppId::ConnectedComponent, "cc-apply") => "(vid, attr, msg) => math.min(attr, msg)",
        (AppId::StronglyConnectedComponent, "scc-trim") => {
            "graph.subgraph(vpred = (vid, deg) => deg._1 > 0 && deg._2 > 0)"
        }
        (AppId::StronglyConnectedComponent, "scc-forward-reach") => {
            "if (ctx.srcAttr._1) ctx.sendToDst(true)"
        }
        (AppId::StronglyConnectedComponent, "scc-backward-reach") => {
            "if (ctx.dstAttr._2) ctx.sendToSrc(true)"
        }
        (AppId::StronglyConnectedComponent, "scc-label") => {
            "(vid, attr, root) => if (attr._1 && attr._2) root else attr._3"
        }
        (AppId::ShortestPaths, "sp-pregel-step") => {
            "addMaps(spMap1, spMap2); ctx.sendToSrc(incrementMap(ctx.dstAttr))"
        }
        (AppId::LabelPropagation, "lp-send-labels") => {
            "Iterator((ctx.dstId, Map(ctx.srcAttr -> 1L)), (ctx.srcId, Map(ctx.dstAttr -> 1L)))"
        }
        (AppId::LabelPropagation, "lp-adopt-label") => {
            "if (message.isEmpty) attr else message.maxBy(_._2)._1"
        }
        (AppId::Terasort, "sample-bounds") => {
            "val bounds = RangePartitioner.sketch(sampled, sampleSizePerPartition)"
        }
        (AppId::Terasort, "count-records") => "file.count()",
        (AppId::Terasort, "partition-records") => {
            "new TeraSortPartitioner(partitions).getPartition(line.substring(0, 10))"
        }
        (AppId::Terasort, "sort-partitions") => {
            "sorter.insertAll(records); writer.write(key, value)"
        }
        (AppId::Sort, "key-lines") => "(line.split(\"\\t\")(0), line)",
        (AppId::Sort, "sort-by-key") => "new ShuffledRDD[K, V, V](self, part).setKeyOrdering(ordering)",
        (AppId::Sort, "save-output") => "sorted.map(_._2).saveAsTextFile(outputFile)",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_apps_with_unique_names() {
        let all = AppId::all();
        assert_eq!(all.len(), 15);
        let mut names: Vec<&str> = all.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
        let mut abbrevs: Vec<&str> = all.iter().map(|a| a.abbrev()).collect();
        abbrevs.sort_unstable();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), 15);
        for (i, a) in all.iter().enumerate() {
            assert_eq!(a.index(), i);
        }
    }

    #[test]
    fn categories_cover_ml_graph_mapreduce() {
        let all = AppId::all();
        let ml = all.iter().filter(|a| a.category() == Category::Ml).count();
        let graph = all.iter().filter(|a| a.category() == Category::Graph).count();
        let mr = all.iter().filter(|a| a.category() == Category::MapReduce).count();
        assert_eq!((ml, graph, mr), (7, 6, 2));
    }

    #[test]
    fn all_plans_validate_on_all_tiers() {
        for app in AppId::all() {
            for tier in SizeTier::all() {
                let data = app.dataset(tier);
                let plan = build_job(app, &data);
                plan.validate().unwrap_or_else(|e| panic!("{app} {tier:?}: {e}"));
                assert!(!plan.stages.is_empty());
            }
        }
    }

    #[test]
    fn data_ladder_scales_bytes() {
        for app in AppId::all() {
            let small = app.dataset(SizeTier::Train(0));
            let large = app.dataset(SizeTier::Test);
            assert!(large.bytes > 100 * small.bytes, "{app}: {} !>> {}", large.bytes, small.bytes);
        }
    }

    #[test]
    fn main_sources_are_brief_and_distinctive() {
        for app in AppId::all() {
            let src = app.main_source();
            let lines = src.trim().lines().count();
            assert!((5..=12).contains(&lines), "{app}: {lines} lines");
        }
        // Distinctive tokens appear in exactly one app's main body.
        for rare in ["TeraSortPartitioner", "KMeans.train", "triangleCount", "SVDPlusPlus.run"] {
            let hits = AppId::all().iter().filter(|a| a.main_source().contains(rare)).count();
            assert_eq!(hits, 1, "token {rare} appears in {hits} apps");
        }
    }

    #[test]
    fn scc_has_the_most_stages_terasort_few() {
        let counts: Vec<(AppId, usize)> = AppId::all()
            .iter()
            .map(|a| (*a, build_job(*a, &a.dataset(SizeTier::Train(0))).stages.len()))
            .collect();
        let scc = counts.iter().find(|(a, _)| *a == AppId::StronglyConnectedComponent).unwrap().1;
        let ts = counts.iter().find(|(a, _)| *a == AppId::Terasort).unwrap().1;
        assert_eq!(ts, 4, "Terasort has 4 stage instances (paper Figure 4)");
        assert!(scc > 40, "SCC should dominate augmentation: {scc}");
        for (_, c) in &counts {
            assert!(*c >= 3);
        }
    }

    #[test]
    fn iterative_apps_reuse_stage_templates() {
        let plan = build_job(AppId::PageRank, &AppId::PageRank.dataset(SizeTier::Train(1)));
        let contribs = plan.stages.iter().filter(|s| s.name == "pr-contrib").count();
        assert_eq!(contribs, 10);
        // All instances of a template share the operator DAG.
        let dags: Vec<_> =
            plan.stages.iter().filter(|s| s.name == "pr-contrib").map(|s| &s.ops).collect();
        assert!(dags.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn every_stage_template_has_a_closure_or_shared_default() {
        for app in AppId::all() {
            let plan = build_job(app, &app.dataset(SizeTier::Train(0)));
            let mut missing = Vec::new();
            for s in &plan.stages {
                if app.stage_closure(&s.name).is_empty() {
                    missing.push(s.name.clone());
                }
            }
            assert!(missing.is_empty(), "{app}: templates without closures {missing:?}");
        }
    }

    #[test]
    fn iteration_counts_follow_data_spec() {
        let d = AppId::KMeans.dataset(SizeTier::Valid);
        assert_eq!(d.iterations, 8);
        let plan = build_job(AppId::KMeans, &d);
        let assigns = plan.stages.iter().filter(|s| s.name == "km-assign").count();
        assert_eq!(assigns, 8);
    }
}

//! Data specifications and the Table V size ladders.
//!
//! Every application instance runs on a concrete dataset described by a
//! [`DataSpec`]. Its four observable entries — rows, columns, iterations,
//! partitions — are exactly the paper's Table I data features (`d_i ∈ R^4`,
//! with zeros for entries an application does not define).

use serde::{Deserialize, Serialize};

/// Which rung of the paper's data ladder an instance uses.
///
/// * `Train(k)`, `k = 0..4` — four small sizes per application per cluster,
///   chosen so one run takes on the order of a minute (Table V "training
///   data of small sizes").
/// * `Valid` — mid-scale validation data, noticeably larger than any
///   training size.
/// * `Test` — large test data used on cluster C to emulate production jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeTier {
    /// k-th training size, `k < 4`.
    Train(u8),
    /// Mid-scale validation size.
    Valid,
    /// Large-scale test size.
    Test,
}

impl SizeTier {
    /// All tiers in ladder order.
    pub fn all() -> [SizeTier; 6] {
        [
            SizeTier::Train(0),
            SizeTier::Train(1),
            SizeTier::Train(2),
            SizeTier::Train(3),
            SizeTier::Valid,
            SizeTier::Test,
        ]
    }

    /// The four training tiers.
    pub fn train_tiers() -> [SizeTier; 4] {
        [SizeTier::Train(0), SizeTier::Train(1), SizeTier::Train(2), SizeTier::Train(3)]
    }

    /// Scale factor relative to the smallest training size. The ladder
    /// spans ~3 orders of magnitude from `Train(0)` to `Test`, mirroring the
    /// paper's 40 MB-ish training inputs vs tens-of-GB test inputs.
    pub fn scale(self) -> f64 {
        match self {
            SizeTier::Train(k) => 1.0 + k.min(3) as f64, // 1x, 2x, 3x, 4x
            SizeTier::Valid => 24.0,
            SizeTier::Test => 400.0,
        }
    }
}

/// A concrete dataset for one application instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataSpec {
    /// Number of rows (records, ratings, edges, …).
    pub rows: u64,
    /// Number of columns/features (0 when not meaningful, e.g. sort keys).
    pub cols: u32,
    /// Number of iterations declared at data-generation time (0 when the
    /// application has no iteration parameter).
    pub iterations: u32,
    /// Number of partitions declared at data-generation time (0 when the
    /// generator leaves partitioning to Spark).
    pub partitions: u32,
    /// Bytes of the serialized input.
    pub bytes: u64,
}

impl DataSpec {
    /// Tabular data: `rows × cols` of 8-byte values plus a label.
    pub fn tabular(rows: u64, cols: u32, iterations: u32) -> Self {
        DataSpec { rows, cols, iterations, partitions: 0, bytes: rows * (cols as u64 + 1) * 8 }
    }

    /// Graph data: `edges` edges at ~16 bytes each; `rows` records the edge
    /// count (the paper records node counts for graph apps; either is a
    /// size surrogate).
    pub fn graph(edges: u64, iterations: u32) -> Self {
        DataSpec { rows: edges, cols: 2, iterations, partitions: 0, bytes: edges * 16 }
    }

    /// Key-value records of fixed width (Terasort-style 100-byte records).
    pub fn records(rows: u64, record_bytes: u32, partitions: u32) -> Self {
        DataSpec { rows, cols: 0, iterations: 0, partitions, bytes: rows * record_bytes as u64 }
    }

    /// The paper's four-dimensional data-feature vector
    /// `[#rows, #columns, #iterations, #partitions]` (Table I).
    pub fn features(&self) -> [f64; 4] {
        [self.rows as f64, self.cols as f64, self.iterations as f64, self.partitions as f64]
    }

    /// Log-scaled feature vector used by learned models (raw row counts
    /// span six orders of magnitude).
    pub fn log_features(&self) -> [f64; 4] {
        [
            (1.0 + self.rows as f64).ln(),
            self.cols as f64,
            self.iterations as f64,
            (1.0 + self.partitions as f64).ln(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone() {
        let scales: Vec<f64> = SizeTier::all().iter().map(|t| t.scale()).collect();
        for w in scales.windows(2) {
            assert!(w[1] > w[0], "ladder not increasing: {scales:?}");
        }
        // Test data is much larger than any training size.
        assert!(SizeTier::Test.scale() / SizeTier::Train(3).scale() > 50.0);
    }

    #[test]
    fn tabular_bytes_account_for_label() {
        let d = DataSpec::tabular(1000, 10, 5);
        assert_eq!(d.bytes, 1000 * 11 * 8);
        assert_eq!(d.features(), [1000.0, 10.0, 5.0, 0.0]);
    }

    #[test]
    fn graph_and_records_fill_optional_entries_with_zero() {
        let g = DataSpec::graph(500, 8);
        assert_eq!(g.features()[2], 8.0);
        assert_eq!(g.features()[3], 0.0);
        let r = DataSpec::records(100, 100, 16);
        assert_eq!(r.features()[1], 0.0);
        assert_eq!(r.features()[3], 16.0);
    }

    #[test]
    fn log_features_are_finite_for_zero_entries() {
        let d = DataSpec::records(0, 100, 0);
        assert!(d.log_features().iter().all(|v| v.is_finite()));
    }
}

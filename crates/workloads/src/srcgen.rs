//! RDD-operator implementation sources for stage-code expansion.
//!
//! The paper's instrumentation agent records the Spark-core sources loaded
//! while each stage runs (`org/apache/spark/rdd`, `api`, `mllib`,
//! `graphx`). The effect is that a brief main-body line like
//! `data.sortByKey()` expands into the much longer implementation code of
//! the operators involved — dense with common tokens like `map` and
//! `iterator` that *do* generalize across applications (paper Figure 5).
//!
//! This module is the deterministic stand-in for that agent: each
//! [`OpKind`] maps to a faithful excerpt of its RDD implementation.

use lite_sparksim::plan::{OpDag, OpKind};

/// Implementation source excerpt for an operator.
pub fn op_impl_source(op: OpKind) -> &'static str {
    match op {
        OpKind::TextFile => {
            "def textFile(path: String, minPartitions: Int): RDD[String] = withScope {\n  hadoopFile(path, classOf[TextInputFormat], classOf[LongWritable], classOf[Text], minPartitions)\n    .map(pair => pair._2.toString).setName(path)\n}"
        }
        OpKind::ObjectFile => {
            "def objectFile[T](path: String, minPartitions: Int): RDD[T] = withScope {\n  sequenceFile(path, classOf[NullWritable], classOf[BytesWritable], minPartitions)\n    .flatMap(x => Utils.deserialize[Array[T]](x._2.getBytes))\n}"
        }
        OpKind::Parallelize => {
            "def parallelize[T](seq: Seq[T], numSlices: Int): RDD[T] = withScope {\n  new ParallelCollectionRDD[T](this, seq, numSlices, Map[Int, Seq[String]]())\n}"
        }
        OpKind::Map => {
            "def map[U: ClassTag](f: T => U): RDD[U] = withScope {\n  val cleanF = sc.clean(f)\n  new MapPartitionsRDD[U, T](this, (context, pid, iter) => iter.map(cleanF))\n}"
        }
        OpKind::MapValues => {
            "def mapValues[U](f: V => U): RDD[(K, U)] = self.withScope {\n  val cleanF = self.context.clean(f)\n  new MapPartitionsRDD[(K, U), (K, V)](self,\n    (context, pid, iter) => iter.map { case (k, v) => (k, cleanF(v)) },\n    preservesPartitioning = true)\n}"
        }
        OpKind::MapPartitions => {
            "def mapPartitions[U: ClassTag](f: Iterator[T] => Iterator[U], preservesPartitioning: Boolean): RDD[U] = withScope {\n  val cleanedF = sc.clean(f)\n  new MapPartitionsRDD(this, (context, index, iter) => cleanedF(iter), preservesPartitioning)\n}"
        }
        OpKind::FlatMap => {
            "def flatMap[U: ClassTag](f: T => TraversableOnce[U]): RDD[U] = withScope {\n  val cleanF = sc.clean(f)\n  new MapPartitionsRDD[U, T](this, (context, pid, iter) => iter.flatMap(cleanF))\n}"
        }
        OpKind::Filter => {
            "def filter(f: T => Boolean): RDD[T] = withScope {\n  val cleanF = sc.clean(f)\n  new MapPartitionsRDD[T, T](this, (context, pid, iter) => iter.filter(cleanF), preservesPartitioning = true)\n}"
        }
        OpKind::Distinct => {
            "def distinct(numPartitions: Int): RDD[T] = withScope {\n  map(x => (x, null)).reduceByKey((x, _) => x, numPartitions).map(_._1)\n}"
        }
        OpKind::Sample => {
            "def sample(withReplacement: Boolean, fraction: Double, seed: Long): RDD[T] = {\n  new PartitionwiseSampledRDD[T, T](this, new BernoulliSampler[T](fraction), true, seed)\n}"
        }
        OpKind::Union => {
            "def union(other: RDD[T]): RDD[T] = withScope {\n  sc.union(this, other)\n}"
        }
        OpKind::ZipPartitions => {
            "def zipPartitions[B, V](rdd2: RDD[B], preservesPartitioning: Boolean)(f: (Iterator[T], Iterator[B]) => Iterator[V]): RDD[V] = withScope {\n  new ZippedPartitionsRDD2(sc, sc.clean(f), this, rdd2, preservesPartitioning)\n}"
        }
        OpKind::ZipWithIndex => {
            "def zipWithIndex(): RDD[(T, Long)] = withScope {\n  new ZippedWithIndexRDD(this)\n}"
        }
        OpKind::KeyBy => {
            "def keyBy[K](f: T => K): RDD[(K, T)] = withScope {\n  val cleanedF = sc.clean(f)\n  map(x => (cleanedF(x), x))\n}"
        }
        OpKind::GroupByKey => {
            "def groupByKey(partitioner: Partitioner): RDD[(K, Iterable[V])] = self.withScope {\n  val createCombiner = (v: V) => CompactBuffer(v)\n  val mergeValue = (buf: CompactBuffer[V], v: V) => buf += v\n  val mergeCombiners = (c1: CompactBuffer[V], c2: CompactBuffer[V]) => c1 ++= c2\n  combineByKeyWithClassTag(createCombiner, mergeValue, mergeCombiners, partitioner, mapSideCombine = false)\n}"
        }
        OpKind::ReduceByKey => {
            "def reduceByKey(partitioner: Partitioner, func: (V, V) => V): RDD[(K, V)] = self.withScope {\n  combineByKeyWithClassTag[V]((v: V) => v, func, func, partitioner)\n}"
        }
        OpKind::CombineByKey => {
            "def combineByKeyWithClassTag[C](createCombiner: V => C, mergeValue: (C, V) => C, mergeCombiners: (C, C) => C, partitioner: Partitioner): RDD[(K, C)] = self.withScope {\n  val aggregator = new Aggregator[K, V, C](self.context.clean(createCombiner), self.context.clean(mergeValue), self.context.clean(mergeCombiners))\n  new ShuffledRDD[K, V, C](self, partitioner).setSerializer(serializer).setAggregator(aggregator).setMapSideCombine(mapSideCombine)\n}"
        }
        OpKind::AggregateByKey => {
            "def aggregateByKey[U](zeroValue: U, partitioner: Partitioner)(seqOp: (U, V) => U, combOp: (U, U) => U): RDD[(K, U)] = self.withScope {\n  val zeroBuffer = SparkEnv.get.serializer.newInstance().serialize(zeroValue)\n  combineByKeyWithClassTag[U]((v: V) => seqOp(createZero(), v), seqOp, combOp, partitioner)\n}"
        }
        OpKind::FoldByKey => {
            "def foldByKey(zeroValue: V, partitioner: Partitioner)(func: (V, V) => V): RDD[(K, V)] = self.withScope {\n  combineByKeyWithClassTag[V]((v: V) => func(createZero(), v), func, func, partitioner)\n}"
        }
        OpKind::SortByKey => {
            "def sortByKey(ascending: Boolean, numPartitions: Int): RDD[(K, V)] = self.withScope {\n  val part = new RangePartitioner(numPartitions, self, ascending)\n  new ShuffledRDD[K, V, V](self, part).setKeyOrdering(if (ascending) ordering else ordering.reverse)\n}"
        }
        OpKind::RepartitionAndSort => {
            "def repartitionAndSortWithinPartitions(partitioner: Partitioner): RDD[(K, V)] = self.withScope {\n  new ShuffledRDD[K, V, V](self, partitioner).setKeyOrdering(ordering)\n}"
        }
        OpKind::PartitionBy => {
            "def partitionBy(partitioner: Partitioner): RDD[(K, V)] = self.withScope {\n  if (self.partitioner == Some(partitioner)) self\n  else new ShuffledRDD[K, V, V](self, partitioner)\n}"
        }
        OpKind::Join => {
            "def join[W](other: RDD[(K, W)], partitioner: Partitioner): RDD[(K, (V, W))] = self.withScope {\n  this.cogroup(other, partitioner).flatMapValues { case (vs, ws) =>\n    for (v <- vs.iterator; w <- ws.iterator) yield (v, w)\n  }\n}"
        }
        OpKind::LeftOuterJoin => {
            "def leftOuterJoin[W](other: RDD[(K, W)], partitioner: Partitioner): RDD[(K, (V, Option[W]))] = self.withScope {\n  this.cogroup(other, partitioner).flatMapValues { pair =>\n    if (pair._2.isEmpty) pair._1.iterator.map(v => (v, None))\n    else for (v <- pair._1.iterator; w <- pair._2.iterator) yield (v, Some(w))\n  }\n}"
        }
        OpKind::CoGroup => {
            "def cogroup[W](other: RDD[(K, W)], partitioner: Partitioner): RDD[(K, (Iterable[V], Iterable[W]))] = self.withScope {\n  val cg = new CoGroupedRDD[K](Seq(self, other), partitioner)\n  cg.mapValues { case Array(vs, w1s) => (vs.asInstanceOf[Iterable[V]], w1s.asInstanceOf[Iterable[W]]) }\n}"
        }
        OpKind::Cartesian => {
            "def cartesian[U: ClassTag](other: RDD[U]): RDD[(T, U)] = withScope {\n  new CartesianRDD(sc, this, other)\n}"
        }
        OpKind::Broadcast => {
            "def broadcast[T: ClassTag](value: T): Broadcast[T] = {\n  val bc = env.broadcastManager.newBroadcast[T](value, isLocal)\n  cleaner.foreach(_.registerBroadcastForCleanup(bc))\n  bc\n}"
        }
        OpKind::TreeAggregate => {
            "def treeAggregate[U: ClassTag](zeroValue: U)(seqOp: (U, T) => U, combOp: (U, U) => U, depth: Int): U = withScope {\n  var partiallyAggregated = mapPartitions(it => Iterator(it.aggregate(zeroValue)(cleanSeqOp, cleanCombOp)))\n  while (numPartitions > scale + math.ceil(numPartitions.toDouble / scale)) {\n    partiallyAggregated = partiallyAggregated.mapPartitionsWithIndex { (i, iter) => iter.map((i % curNumPartitions, _)) }\n      .foldByKey(zeroValue, new HashPartitioner(curNumPartitions))(cleanCombOp).values\n  }\n  partiallyAggregated.reduce(cleanCombOp)\n}"
        }
        OpKind::TreeReduce => {
            "def treeReduce(f: (T, T) => T, depth: Int): T = withScope {\n  val reducePartition: Iterator[T] => Option[T] = iter => iter.reduceLeftOption(cleanF)\n  partiallyReduced.treeAggregate(Option.empty[T])(op, op, depth).getOrElse(throw new UnsupportedOperationException(\"empty collection\"))\n}"
        }
        OpKind::Coalesce => {
            "def coalesce(numPartitions: Int, shuffle: Boolean): RDD[T] = withScope {\n  if (shuffle) new CoalescedRDD(new ShuffledRDD[Int, T, T](mapPartitionsWithIndexInternal(distributePartition), new HashPartitioner(numPartitions)).values, numPartitions)\n  else new CoalescedRDD(this, numPartitions)\n}"
        }
        OpKind::Repartition => {
            "def repartition(numPartitions: Int): RDD[T] = withScope {\n  coalesce(numPartitions, shuffle = true)\n}"
        }
        OpKind::Cache => {
            "def persist(newLevel: StorageLevel): this.type = {\n  sc.persistRDD(this)\n  storageLevel = newLevel\n  this\n}\ndef cache(): this.type = persist(StorageLevel.MEMORY_ONLY)"
        }
        OpKind::Checkpoint => {
            "def checkpoint(): Unit = RDDCheckpointData.synchronized {\n  checkpointData = Some(new ReliableRDDCheckpointData(this))\n}"
        }
        OpKind::Collect => {
            "def collect(): Array[T] = withScope {\n  val results = sc.runJob(this, (iter: Iterator[T]) => iter.toArray)\n  Array.concat(results: _*)\n}"
        }
        OpKind::CollectAsMap => {
            "def collectAsMap(): Map[K, V] = self.withScope {\n  val data = self.collect()\n  val map = new mutable.HashMap[K, V]\n  map.sizeHint(data.length)\n  data.foreach { pair => map.put(pair._1, pair._2) }\n  map\n}"
        }
        OpKind::Count => {
            "def count(): Long = sc.runJob(this, Utils.getIteratorSize _).sum"
        }
        OpKind::Reduce => {
            "def reduce(f: (T, T) => T): T = withScope {\n  val cleanF = sc.clean(f)\n  val reducePartition: Iterator[T] => Option[T] = iter => iter.reduceLeftOption(cleanF)\n  sc.runJob(this, reducePartition, mergeResult)\n  jobResult.getOrElse(throw new UnsupportedOperationException(\"empty collection\"))\n}"
        }
        OpKind::Fold => {
            "def fold(zeroValue: T)(op: (T, T) => T): T = withScope {\n  val cleanOp = sc.clean(op)\n  val foldPartition = (iter: Iterator[T]) => iter.fold(zeroValue)(cleanOp)\n  sc.runJob(this, foldPartition, mergeResult)\n  jobResult\n}"
        }
        OpKind::Take => {
            "def take(num: Int): Array[T] = withScope {\n  while (buf.size < num && partsScanned < totalParts) {\n    val res = sc.runJob(this, (it: Iterator[T]) => it.take(left).toArray, p)\n    res.foreach(buf ++= _.take(num - buf.size))\n  }\n  buf.toArray\n}"
        }
        OpKind::SaveAsTextFile => {
            "def saveAsTextFile(path: String): Unit = withScope {\n  this.mapPartitions { iter => iter.map(x => (NullWritable.get(), new Text(x.toString))) }\n    .saveAsHadoopFile[TextOutputFormat[NullWritable, Text]](path)\n}"
        }
        OpKind::SaveAsObjectFile => {
            "def saveAsObjectFile(path: String): Unit = withScope {\n  this.mapPartitions(iter => iter.grouped(10).map(_.toArray))\n    .map(x => (NullWritable.get(), new BytesWritable(Utils.serialize(x))))\n    .saveAsSequenceFile(path)\n}"
        }
        OpKind::ShuffledRdd => {
            "class ShuffledRDD[K, V, C](var prev: RDD[(K, V)], part: Partitioner) extends RDD[(K, C)] {\n  override def compute(split: Partition, context: TaskContext): Iterator[(K, C)] = {\n    val dep = dependencies.head.asInstanceOf[ShuffleDependency[K, V, C]]\n    SparkEnv.get.shuffleManager.getReader(dep.shuffleHandle, split.index, split.index + 1, context)\n      .read().asInstanceOf[Iterator[(K, C)]]\n  }\n}"
        }
        OpKind::MapPartitionsWithIndex => {
            "def mapPartitionsWithIndex[U: ClassTag](f: (Int, Iterator[T]) => Iterator[U], preservesPartitioning: Boolean): RDD[U] = withScope {\n  val cleanedF = sc.clean(f)\n  new MapPartitionsRDD(this, (context, index, iter) => cleanedF(index, iter), preservesPartitioning)\n}"
        }
        OpKind::Pregel => {
            "def apply[VD, ED, A](graph: Graph[VD, ED], initialMsg: A, maxIterations: Int)(vprog: (VertexId, VD, A) => VD, sendMsg: EdgeTriplet[VD, ED] => Iterator[(VertexId, A)], mergeMsg: (A, A) => A): Graph[VD, ED] = {\n  var g = graph.mapVertices((vid, vdata) => vprog(vid, vdata, initialMsg))\n  var messages = GraphXUtils.mapReduceTriplets(g, sendMsg, mergeMsg)\n  while (activeMessages > 0 && i < maxIterations) {\n    g = g.joinVertices(messages)(vprog)\n    messages = GraphXUtils.mapReduceTriplets(g, sendMsg, mergeMsg, Some((oldMessages, EdgeDirection.Either)))\n  }\n  g\n}"
        }
        OpKind::AggregateMessages => {
            "def aggregateMessages[A: ClassTag](sendMsg: EdgeContext[VD, ED, A] => Unit, mergeMsg: (A, A) => A, tripletFields: TripletFields): VertexRDD[A] = {\n  aggregateMessagesWithActiveSet(sendMsg, mergeMsg, tripletFields, None)\n}"
        }
        OpKind::JoinVertices => {
            "def joinVertices[U](table: RDD[(VertexId, U)])(mapFunc: (VertexId, VD, U) => VD): Graph[VD, ED] = {\n  val uf = (id: VertexId, data: VD, o: Option[U]) => o match {\n    case Some(u) => mapFunc(id, data, u)\n    case None => data\n  }\n  graph.outerJoinVertices(table)(uf)\n}"
        }
        OpKind::OuterJoinVertices => {
            "def outerJoinVertices[U, VD2](other: RDD[(VertexId, U)])(updateF: (VertexId, VD, Option[U]) => VD2): Graph[VD2, ED] = {\n  val newVerts = vertices.leftJoin(other)(updateF).cache()\n  val changedVerts = vertices.asInstanceOf[VertexRDD[VD2]].diff(newVerts)\n  new GraphImpl(newVerts, new ReplicatedVertexView(edges.asInstanceOf[EdgeRDDImpl[ED, VD2]]))\n}"
        }
        OpKind::SubGraph => {
            "def subgraph(epred: EdgeTriplet[VD, ED] => Boolean, vpred: (VertexId, VD) => Boolean): Graph[VD, ED] = {\n  vertices.cache()\n  val newVerts = vertices.mapVertexPartitions(_.filter(vpred))\n  val newEdges = edges.filter(epred, vpred)\n  new GraphImpl(newVerts, new ReplicatedVertexView(newEdges))\n}"
        }
        OpKind::ConnectedComponentsOp => {
            "def run[VD, ED](graph: Graph[VD, ED], maxIterations: Int): Graph[VertexId, ED] = {\n  val ccGraph = graph.mapVertices { case (vid, _) => vid }\n  def sendMessage(edge: EdgeTriplet[VertexId, ED]): Iterator[(VertexId, VertexId)] = {\n    if (edge.srcAttr < edge.dstAttr) Iterator((edge.dstId, edge.srcAttr))\n    else if (edge.srcAttr > edge.dstAttr) Iterator((edge.srcId, edge.dstAttr))\n    else Iterator.empty\n  }\n  Pregel(ccGraph, initialMessage, maxIterations)(vprog = (id, attr, msg) => math.min(attr, msg), sendMessage, mergeMessage = math.min)\n}"
        }
        OpKind::TriangleCountOp => {
            "def run[VD, ED](graph: Graph[VD, ED]): Graph[Int, ED] = {\n  val canonicalGraph = graph.mapEdges(e => true).removeSelfEdges().convertToCanonicalEdges()\n  val nbrSets: VertexRDD[VertexSet] = canonicalGraph.collectNeighborIds(EdgeDirection.Either).mapValues { nbrs =>\n    val set = new VertexSet(nbrs.length)\n    nbrs.foreach(set.add)\n    set\n  }\n  graph.outerJoinVertices(counters) { (_, _, optCounter) => optCounter.getOrElse(0) }\n}"
        }
    }
}

/// Expand a stage DAG into its instrumented source: the implementation of
/// every operator node (in topological node order) plus the app-specific
/// closure snippet.
pub fn expand_stage_source(dag: &OpDag, closure: &str) -> String {
    let mut out = String::new();
    for op in &dag.nodes {
        out.push_str(op_impl_source(*op));
        out.push('\n');
    }
    if !closure.is_empty() {
        out.push_str(closure);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    #[test]
    fn every_op_has_nonempty_impl_source() {
        for op in OpKind::all() {
            let src = op_impl_source(*op);
            assert!(!src.trim().is_empty(), "{op} has empty impl");
            assert!(tokenize(src).len() >= 8, "{op} impl too short");
        }
    }

    #[test]
    fn expansion_is_much_longer_than_the_main_line() {
        // Paper Figure 4 vs 5: one brief line expands to dense stage code.
        let dag = OpDag::chain(&[OpKind::ShuffledRdd, OpKind::SortByKey, OpKind::SaveAsTextFile]);
        let expanded = expand_stage_source(&dag, "sorter.insertAll(records)");
        let main_line = "val sorted = keyed.sortByKey(ascending = true)";
        assert!(tokenize(&expanded).len() > 5 * tokenize(main_line).len());
    }

    #[test]
    fn common_tokens_are_dense_in_expansions() {
        // "map"-family tokens appear across many operator implementations —
        // the cross-application signal instrumentation is meant to surface.
        let mut count = 0;
        for op in OpKind::all() {
            if op_impl_source(*op).contains("map") || op_impl_source(*op).contains("Partitions") {
                count += 1;
            }
        }
        assert!(count > OpKind::all().len() / 3, "only {count} impls share map tokens");
    }

    #[test]
    fn expansion_includes_closure() {
        let dag = OpDag::chain(&[OpKind::Map]);
        let s = expand_stage_source(&dag, "uniqueClosureToken42");
        assert!(s.contains("uniqueClosureToken42"));
        let t = expand_stage_source(&dag, "");
        assert!(!t.contains("uniqueClosureToken42"));
    }
}

//! Static-vs-dynamic cold-start cross-validation.
//!
//! The tentpole guarantee of the static analysis plane: on every workload,
//! `static_stage_codes` (pure source analysis, zero simulator runs) must
//! produce exactly what `instrument_app` recovers from an instrumented run
//! — same templates in the same order, same operator DAGs, same expanded
//! sources (hence identical token streams after vocabulary mapping), same
//! per-run instance counts. `StageCode` derives `PartialEq`, so one
//! assert covers all four.

use lite_workloads::apps::AppId;
use lite_workloads::instrument::{instrument_app, static_stage_codes};
use lite_workloads::tokenize::tokenize;

#[test]
fn static_extraction_matches_instrumented_run_on_all_15_apps() {
    for app in AppId::all() {
        let dynamic = instrument_app(app);
        let statik = static_stage_codes(app);
        assert_eq!(
            statik.len(),
            dynamic.len(),
            "{app}: template count mismatch\n static: {:?}\ndynamic: {:?}",
            statik.iter().map(|s| &s.template).collect::<Vec<_>>(),
            dynamic.iter().map(|s| &s.template).collect::<Vec<_>>(),
        );
        for (s, d) in statik.iter().zip(&dynamic) {
            assert_eq!(s, d, "{app}: stage template `{}` differs", d.template);
        }
    }
}

#[test]
fn static_token_streams_match_dynamic_after_tokenization() {
    // Equality of sources implies equality of token streams, but this is
    // the property downstream feature builders actually consume — pin it
    // explicitly on a representative app per category.
    for app in [AppId::KMeans, AppId::PageRank, AppId::Terasort] {
        let dynamic = instrument_app(app);
        let statik = static_stage_codes(app);
        for (s, d) in statik.iter().zip(&dynamic) {
            assert_eq!(
                tokenize(&s.source),
                tokenize(&d.source),
                "{app}: token stream mismatch for `{}`",
                d.template
            );
        }
    }
}

#[test]
fn lints_stay_silent_on_the_clean_corpus() {
    for app in AppId::all() {
        let diags = lite_analyze::analyze_source(app.main_source()).diagnostics;
        assert!(
            diags.is_empty(),
            "{app}: lints fired on clean corpus: {:?}",
            diags.iter().map(|d| (d.rule, &d.message)).collect::<Vec<_>>()
        );
        // The deprecated Result-returning shim must agree.
        #[allow(deprecated)]
        let shim = lite_analyze::lint_source(app.main_source())
            .unwrap_or_else(|e| panic!("{app}: parse failed: {e}"));
        assert_eq!(shim, diags, "{app}: lint_source shim diverged from analyze_source");
    }
}

#[test]
fn auto_fix_is_a_no_op_on_the_clean_corpus() {
    // Zero diagnostics must mean zero planned fixes and zero fix passes;
    // a fix engine that "improves" clean code would be rewriting
    // semantics, not resolving lints.
    for app in AppId::all() {
        let out = lite_analyze::apply_fixes(app.main_source())
            .unwrap_or_else(|e| panic!("{app}: fix run failed: {e}"));
        assert_eq!(out.passes, 0, "{app}: auto-fix touched a clean program");
        assert!(out.applied.is_empty());
        assert!(out.remaining.is_empty());
    }
}

#[test]
fn incremental_analysis_matches_from_scratch_on_the_corpus() {
    // Cold and warm DocAnalyzer updates must reproduce the from-scratch
    // parse exactly — spans included — on every real main source.
    for app in AppId::all() {
        let src = app.main_source();
        let full =
            lite_analyze::parse::parse(src).unwrap_or_else(|e| panic!("{app}: parse failed: {e}"));
        let mut doc = lite_analyze::DocAnalyzer::new();
        let cold = doc.update(src);
        assert_eq!(cold.program, full, "{app}: cold incremental parse diverged");
        let warm = doc.update(src);
        assert_eq!(warm.program, full, "{app}: warm incremental parse diverged");
        assert_eq!(warm.stats.reparsed, 0, "{app}: warm update reparsed a chunk");
    }
}

#[test]
fn corpus_sources_round_trip_through_the_parser() {
    // parse → pretty → reparse is the identity (up to spans) on every
    // main source — the printer/parser pair is exercised on real code,
    // not only on property-generated ASTs.
    for app in AppId::all() {
        let mut first = lite_analyze::parse::parse(app.main_source())
            .unwrap_or_else(|e| panic!("{app}: parse failed: {e}"));
        let pretty = first.pretty();
        let mut second = lite_analyze::parse::parse(&pretty)
            .unwrap_or_else(|e| panic!("{app}: reparse of pretty-print failed: {e}\n{pretty}"));
        first.zero_spans();
        second.zero_spans();
        assert_eq!(first, second, "{app}: pretty-print round trip changed the AST\n{pretty}");
    }
}

//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records operations eagerly (define-by-run); [`Tape::backward`]
//! walks the tape in reverse, accumulating gradients into a [`Params`]
//! store. Parameters live *outside* the tape so a fresh tape can be built
//! per minibatch while optimizers step on the persistent store.
//!
//! The op set is exactly what the paper's models need: dense algebra for
//! MLPs, `im2col`+matmul convolution for the CNN code encoder, gather /
//! stack ops so per-template encodings can be shared across a minibatch,
//! masked max-pooling for the GCN scheduler encoder, softmax/layer-norm for
//! the Transformer baseline, and a gradient-reversal op for the adversarial
//! Adaptive Model Update.

use crate::tensor::Tensor;

/// Handle to a parameter tensor in a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(pub usize);

/// Persistent parameter store (values + gradient accumulators).
#[derive(Debug, Clone, Default)]
pub struct Params {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
}

impl Params {
    /// An empty store.
    pub fn new() -> Params {
        Params::default()
    }

    /// Register a parameter tensor under a diagnostic name.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    /// Parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable parameter value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutable gradient accumulator.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Zero all gradient accumulators.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.zero_();
        }
    }

    /// Iterate `(id, name)` pairs.
    pub fn iter_ids(&self) -> impl Iterator<Item = (ParamId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (ParamId(i), n.as_str()))
    }
}

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    Leaf,
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    /// `[m,n] + [1,n]` broadcast over rows.
    AddRowBroadcast(Var, Var),
    Scale(Var, f32),
    Hadamard(Var, Var),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    RowSoftmax(Var),
    /// Max over each row: `[m,n] -> [m,1]` (argmax memo).
    RowMax(Var),
    /// Max over each column: `[m,n] -> [1,n]` (argmax memo).
    ColMax(Var),
    ConcatCols(Vec<Var>),
    VStack(Vec<Var>),
    GatherRows(Var, Vec<usize>),
    /// Sliding-window unfold of `[n,d]` into `[w*d, n-w+1]` columns.
    Im2Col(Var, usize),
    /// Row gather from an embedding table parameter.
    EmbeddingGather(ParamId, Vec<usize>),
    SliceRow(Var, usize),
    /// Row-wise layer norm with gain/bias vars.
    LayerNormRow(Var, Var, Var),
    /// Identity forward, `-lambda` scaled backward (adversarial training).
    GradReverse(Var, f32),
    /// Mean of row-wise squared error against a constant target (scalar).
    MseLoss(Var, Tensor),
    /// Mean binary cross-entropy on logits against constant labels.
    BceLogitsLoss(Var, Tensor),
    /// Mean over all elements -> `[1,1]`.
    Mean(Var),
}

struct Node {
    value: Tensor,
    op: Op,
    /// Integer memo (argmax indices for max ops).
    memo_idx: Vec<usize>,
    /// Tensor memos (layer norm normalized input / inv-std).
    memo_t: Vec<Tensor>,
}

/// An autodiff tape. Build one per forward pass.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Tape {
        Tape { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.push_full(value, op, Vec::new(), Vec::new())
    }

    fn push_full(
        &mut self,
        value: Tensor,
        op: Op,
        memo_idx: Vec<usize>,
        memo_t: Vec<Tensor>,
    ) -> Var {
        self.nodes.push(Node { value, op, memo_idx, memo_t });
        Var(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Record a constant (no gradient).
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    /// Record a parameter (gradient flows into the store on backward).
    pub fn param(&mut self, params: &Params, id: ParamId) -> Var {
        self.push(params.value(id).clone(), Op::Param(id))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise sum (same shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// `[m,n] + [1,n]`, broadcasting the bias row.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let (m, n) = self.value(a).shape();
        assert_eq!(self.value(bias).shape(), (1, n), "bias must be [1,{n}]");
        let mut out = self.value(a).clone();
        for r in 0..m {
            let b = self.value(bias).row(0).to_vec();
            for (o, bv) in out.row_mut(r).iter_mut().zip(b.iter()) {
                *o += bv;
            }
        }
        self.push(out, Op::AddRowBroadcast(a, bias))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let v = self.value(a).scaled(alpha);
        self.push(v, Op::Scale(a, alpha))
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hadamard(self.value(b));
        self.push(v, Op::Hadamard(a, b))
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Row-wise softmax.
    pub fn row_softmax(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let mut out = Tensor::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mx = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (o, &v) in out.row_mut(r).iter_mut().zip(row.iter()) {
                *o = (v - mx).exp();
                sum += *o;
            }
            for o in out.row_mut(r) {
                *o /= sum;
            }
        }
        self.push(out, Op::RowSoftmax(a))
    }

    /// Max over each row: `[m,n] -> [m,1]`.
    pub fn row_max(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let mut out = Tensor::zeros(x.rows(), 1);
        let mut arg = vec![0usize; x.rows()];
        for (r, slot) in arg.iter_mut().enumerate() {
            let (mut bi, mut bv) = (0usize, f32::NEG_INFINITY);
            for (c, &v) in x.row(r).iter().enumerate() {
                if v > bv {
                    bv = v;
                    bi = c;
                }
            }
            out.set(r, 0, bv);
            *slot = bi;
        }
        self.push_full(out, Op::RowMax(a), arg, Vec::new())
    }

    /// Max over each column: `[m,n] -> [1,n]`.
    pub fn col_max(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let (m, n) = x.shape();
        let mut out = Tensor::full(1, n, f32::NEG_INFINITY);
        let mut arg = vec![0usize; n];
        for r in 0..m {
            for (c, &v) in x.row(r).iter().enumerate() {
                if v > out.get(0, c) {
                    out.set(0, c, v);
                    arg[c] = r;
                }
            }
        }
        self.push_full(out, Op::ColMax(a), arg, Vec::new())
    }

    /// Concatenate along columns (all inputs share the row count).
    pub fn concat_cols(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty());
        let m = self.value(vars[0]).rows();
        let total: usize = vars.iter().map(|v| self.value(*v).cols()).sum();
        let mut out = Tensor::zeros(m, total);
        for r in 0..m {
            let mut off = 0;
            for v in vars {
                let t = self.value(*v);
                assert_eq!(t.rows(), m, "concat_cols row mismatch");
                out.row_mut(r)[off..off + t.cols()].copy_from_slice(t.row(r));
                off += t.cols();
            }
        }
        self.push(out, Op::ConcatCols(vars.to_vec()))
    }

    /// Stack `[1,F]` rows into `[B,F]`.
    pub fn vstack(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty());
        let f = self.value(vars[0]).cols();
        let mut out = Tensor::zeros(vars.len(), f);
        for (r, v) in vars.iter().enumerate() {
            let t = self.value(*v);
            assert_eq!(t.shape(), (1, f), "vstack expects [1,{f}] rows");
            out.row_mut(r).copy_from_slice(t.row(0));
        }
        self.push(out, Op::VStack(vars.to_vec()))
    }

    /// Gather rows of `[T,F]` by index into `[B,F]` (indices may repeat —
    /// this is how per-template encodings are shared across a batch).
    pub fn gather_rows(&mut self, a: Var, idx: &[usize]) -> Var {
        let t = self.value(a);
        let mut out = Tensor::zeros(idx.len(), t.cols());
        for (r, &i) in idx.iter().enumerate() {
            assert!(i < t.rows(), "gather index {i} out of {} rows", t.rows());
            out.row_mut(r).copy_from_slice(t.row(i));
        }
        self.push(out, Op::GatherRows(a, idx.to_vec()))
    }

    /// Unfold `[n,d]` into sliding windows of `w` rows: output `[w*d, n-w+1]`
    /// where column `j` is the flattened window starting at row `j`.
    pub fn im2col(&mut self, a: Var, w: usize) -> Var {
        let x = self.value(a);
        let (n, d) = x.shape();
        assert!(w >= 1 && w <= n, "window {w} out of range for {n} rows");
        let p = n - w + 1;
        let mut out = Tensor::zeros(w * d, p);
        for j in 0..p {
            for k in 0..w {
                for c in 0..d {
                    out.set(k * d + c, j, x.get(j + k, c));
                }
            }
        }
        self.push(out, Op::Im2Col(a, w))
    }

    /// Gather token embeddings: table `[V,D]` (parameter), ids -> `[N,D]`.
    pub fn embedding_gather(&mut self, params: &Params, table: ParamId, ids: &[usize]) -> Var {
        let t = params.value(table);
        let mut out = Tensor::zeros(ids.len(), t.cols());
        for (r, &i) in ids.iter().enumerate() {
            assert!(i < t.rows(), "token id {i} out of vocab {}", t.rows());
            out.row_mut(r).copy_from_slice(t.row(i));
        }
        self.push(out, Op::EmbeddingGather(table, ids.to_vec()))
    }

    /// Extract one row as `[1,n]`.
    pub fn slice_row(&mut self, a: Var, r: usize) -> Var {
        let x = self.value(a);
        let out = Tensor::row_vector(x.row(r).to_vec());
        self.push(out, Op::SliceRow(a, r))
    }

    /// Row-wise layer normalization with learnable gain/bias (`[1,n]`).
    pub fn layer_norm_row(&mut self, a: Var, gain: Var, bias: Var) -> Var {
        const EPS: f32 = 1e-5;
        let x = self.value(a);
        let (m, n) = x.shape();
        assert_eq!(self.value(gain).shape(), (1, n));
        assert_eq!(self.value(bias).shape(), (1, n));
        let mut xhat = Tensor::zeros(m, n);
        let mut inv_std = Tensor::zeros(m, 1);
        let mut out = Tensor::zeros(m, n);
        let g = self.value(gain).row(0).to_vec();
        let b = self.value(bias).row(0).to_vec();
        for r in 0..m {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let is = 1.0 / (var + EPS).sqrt();
            inv_std.set(r, 0, is);
            for c in 0..n {
                let xh = (row[c] - mean) * is;
                xhat.set(r, c, xh);
                out.set(r, c, g[c] * xh + b[c]);
            }
        }
        self.push_full(out, Op::LayerNormRow(a, gain, bias), Vec::new(), vec![xhat, inv_std])
    }

    /// Identity forward; backward multiplies the gradient by `-lambda`.
    /// This is the gradient-reversal layer of adversarial domain
    /// adaptation (paper's Adaptive Model Update).
    pub fn grad_reverse(&mut self, a: Var, lambda: f32) -> Var {
        let v = self.value(a).clone();
        self.push(v, Op::GradReverse(a, lambda))
    }

    /// Mean squared error against a constant target (scalar `[1,1]`).
    pub fn mse_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let p = self.value(pred);
        assert_eq!(p.shape(), target.shape(), "mse target shape");
        let n = p.len() as f32;
        let mut acc = 0.0;
        for (a, b) in p.data().iter().zip(target.data().iter()) {
            let d = a - b;
            acc += d * d;
        }
        self.push(Tensor::from_vec(1, 1, vec![acc / n]), Op::MseLoss(pred, target.clone()))
    }

    /// Mean binary cross-entropy on logits vs constant 0/1 labels
    /// (numerically stable log-sum-exp form).
    pub fn bce_logits_loss(&mut self, logits: Var, labels: &Tensor) -> Var {
        let z = self.value(logits);
        assert_eq!(z.shape(), labels.shape(), "bce labels shape");
        let n = z.len() as f32;
        let mut acc = 0.0;
        for (&x, &y) in z.data().iter().zip(labels.data().iter()) {
            // max(x,0) - x*y + ln(1 + e^{-|x|})
            acc += x.max(0.0) - x * y + (1.0 + (-x.abs()).exp()).ln();
        }
        self.push(Tensor::from_vec(1, 1, vec![acc / n]), Op::BceLogitsLoss(logits, labels.clone()))
    }

    /// Mean over all elements.
    pub fn mean(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let m = x.sum() / x.len() as f32;
        self.push(Tensor::from_vec(1, 1, vec![m]), Op::Mean(a))
    }

    /// Run reverse-mode accumulation from `loss` (must be `[1,1]`),
    /// adding parameter gradients into `params`.
    pub fn backward(&mut self, loss: Var, params: &mut Params) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::full(1, 1, 1.0));

        for idx in (0..=loss.0).rev() {
            let Some(g) = grads[idx].take() else { continue };
            // Split borrows: the node being processed vs earlier nodes.
            let (before, rest) = self.nodes.split_at_mut(idx);
            let node = &rest[0];
            let val = |v: Var| -> &Tensor {
                assert!(v.0 < idx, "op parent must precede node");
                &before[v.0].value
            };
            let accum =
                |grads: &mut Vec<Option<Tensor>>, v: Var, delta: Tensor| match &mut grads[v.0] {
                    Some(t) => t.axpy(1.0, &delta),
                    slot => *slot = Some(delta),
                };
            match &node.op {
                Op::Leaf => {}
                Op::Param(id) => params.grad_mut(*id).axpy(1.0, &g),
                Op::MatMul(a, b) => {
                    let da = g.matmul_transpose_b(val(*b));
                    let db = val(*a).transpose_a_matmul(&g);
                    accum(&mut grads, *a, da);
                    accum(&mut grads, *b, db);
                }
                Op::Add(a, b) => {
                    accum(&mut grads, *a, g.clone());
                    accum(&mut grads, *b, g);
                }
                Op::AddRowBroadcast(a, bias) => {
                    let mut db = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (c, &v) in g.row(r).iter().enumerate() {
                            db.set(0, c, db.get(0, c) + v);
                        }
                    }
                    accum(&mut grads, *a, g);
                    accum(&mut grads, *bias, db);
                }
                Op::Scale(a, alpha) => accum(&mut grads, *a, g.scaled(*alpha)),
                Op::Hadamard(a, b) => {
                    let da = g.hadamard(val(*b));
                    let db = g.hadamard(val(*a));
                    accum(&mut grads, *a, da);
                    accum(&mut grads, *b, db);
                }
                Op::Relu(a) => {
                    let mask = val(*a).map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                    accum(&mut grads, *a, g.hadamard(&mask));
                }
                Op::Sigmoid(a) => {
                    let y = &node.value;
                    let dy = y.map(|s| s * (1.0 - s));
                    accum(&mut grads, *a, g.hadamard(&dy));
                }
                Op::Tanh(a) => {
                    let y = &node.value;
                    let dy = y.map(|t| 1.0 - t * t);
                    accum(&mut grads, *a, g.hadamard(&dy));
                }
                Op::RowSoftmax(a) => {
                    let y = &node.value;
                    let mut dx = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 =
                            y.row(r).iter().zip(g.row(r).iter()).map(|(s, gg)| s * gg).sum();
                        for c in 0..y.cols() {
                            dx.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    accum(&mut grads, *a, dx);
                }
                Op::RowMax(a) => {
                    let x = val(*a);
                    let mut dx = Tensor::zeros(x.rows(), x.cols());
                    for r in 0..x.rows() {
                        dx.set(r, node.memo_idx[r], g.get(r, 0));
                    }
                    accum(&mut grads, *a, dx);
                }
                Op::ColMax(a) => {
                    let x = val(*a);
                    let mut dx = Tensor::zeros(x.rows(), x.cols());
                    for c in 0..x.cols() {
                        dx.set(node.memo_idx[c], c, g.get(0, c));
                    }
                    accum(&mut grads, *a, dx);
                }
                Op::ConcatCols(vars) => {
                    let vars = vars.clone();
                    let mut off = 0;
                    for v in vars {
                        let w = val(v).cols();
                        let mut dv = Tensor::zeros(g.rows(), w);
                        for r in 0..g.rows() {
                            dv.row_mut(r).copy_from_slice(&g.row(r)[off..off + w]);
                        }
                        off += w;
                        accum(&mut grads, v, dv);
                    }
                }
                Op::VStack(vars) => {
                    for (r, v) in vars.clone().into_iter().enumerate() {
                        accum(&mut grads, v, Tensor::row_vector(g.row(r).to_vec()));
                    }
                }
                Op::GatherRows(a, idx_list) => {
                    let x = val(*a);
                    let mut dx = Tensor::zeros(x.rows(), x.cols());
                    for (r, &i) in idx_list.iter().enumerate() {
                        for (c, &v) in g.row(r).iter().enumerate() {
                            dx.set(i, c, dx.get(i, c) + v);
                        }
                    }
                    accum(&mut grads, *a, dx);
                }
                Op::Im2Col(a, w) => {
                    let x = val(*a);
                    let (n, d) = x.shape();
                    let p = n - w + 1;
                    let mut dx = Tensor::zeros(n, d);
                    for j in 0..p {
                        for k in 0..*w {
                            for c in 0..d {
                                let v = g.get(k * d + c, j);
                                dx.set(j + k, c, dx.get(j + k, c) + v);
                            }
                        }
                    }
                    accum(&mut grads, *a, dx);
                }
                Op::EmbeddingGather(table, ids) => {
                    let gt = params.grad_mut(*table);
                    for (r, &i) in ids.iter().enumerate() {
                        for (c, &v) in g.row(r).iter().enumerate() {
                            gt.set(i, c, gt.get(i, c) + v);
                        }
                    }
                }
                Op::SliceRow(a, r) => {
                    let x = val(*a);
                    let mut dx = Tensor::zeros(x.rows(), x.cols());
                    dx.row_mut(*r).copy_from_slice(g.row(0));
                    accum(&mut grads, *a, dx);
                }
                Op::LayerNormRow(a, gain, bias) => {
                    let xhat = &node.memo_t[0];
                    let inv_std = &node.memo_t[1];
                    let (m, n) = xhat.shape();
                    let gvec = val(*gain).row(0).to_vec();
                    let mut dgain = Tensor::zeros(1, n);
                    let mut dbias = Tensor::zeros(1, n);
                    let mut dx = Tensor::zeros(m, n);
                    for r in 0..m {
                        let gy: Vec<f32> = (0..n).map(|c| g.get(r, c) * gvec[c]).collect();
                        let mean_gy = gy.iter().sum::<f32>() / n as f32;
                        let mean_gy_xhat =
                            (0..n).map(|c| gy[c] * xhat.get(r, c)).sum::<f32>() / n as f32;
                        for (c, &gyc) in gy.iter().enumerate() {
                            dgain.set(0, c, dgain.get(0, c) + g.get(r, c) * xhat.get(r, c));
                            dbias.set(0, c, dbias.get(0, c) + g.get(r, c));
                            let v =
                                (gyc - mean_gy - xhat.get(r, c) * mean_gy_xhat) * inv_std.get(r, 0);
                            dx.set(r, c, v);
                        }
                    }
                    accum(&mut grads, *a, dx);
                    accum(&mut grads, *gain, dgain);
                    accum(&mut grads, *bias, dbias);
                }
                Op::GradReverse(a, lambda) => accum(&mut grads, *a, g.scaled(-lambda)),
                Op::MseLoss(pred, target) => {
                    let p = val(*pred);
                    let scale = 2.0 * g.get(0, 0) / p.len() as f32;
                    let mut dp = Tensor::zeros(p.rows(), p.cols());
                    for (o, (&a, &b)) in
                        dp.data_mut().iter_mut().zip(p.data().iter().zip(target.data().iter()))
                    {
                        *o = scale * (a - b);
                    }
                    accum(&mut grads, *pred, dp);
                }
                Op::BceLogitsLoss(logits, labels) => {
                    let z = val(*logits);
                    let scale = g.get(0, 0) / z.len() as f32;
                    let mut dz = Tensor::zeros(z.rows(), z.cols());
                    for (o, (&x, &y)) in
                        dz.data_mut().iter_mut().zip(z.data().iter().zip(labels.data().iter()))
                    {
                        let s = 1.0 / (1.0 + (-x).exp());
                        *o = scale * (s - y);
                    }
                    accum(&mut grads, *logits, dz);
                }
                Op::Mean(a) => {
                    let x = val(*a);
                    let v = g.get(0, 0) / x.len() as f32;
                    accum(&mut grads, *a, Tensor::full(x.rows(), x.cols(), v));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of `d loss / d param` for every scalar in
    /// every parameter.
    fn grad_check(build: impl Fn(&mut Tape, &Params) -> Var, params: &mut Params, tol: f32) {
        // Analytic gradients.
        params.zero_grads();
        let mut tape = Tape::new();
        let loss = build(&mut tape, params);
        tape.backward(loss, params);
        let analytic: Vec<Tensor> =
            (0..params.len()).map(|i| params.grad(ParamId(i)).clone()).collect();

        let eps = 1e-3f32;
        for (pi, grads) in analytic.iter().enumerate() {
            for e in 0..params.value(ParamId(pi)).len() {
                let orig = params.value(ParamId(pi)).data()[e];
                params.value_mut(ParamId(pi)).data_mut()[e] = orig + eps;
                let mut t1 = Tape::new();
                let l1 = build(&mut t1, params);
                let f1 = t1.value(l1).get(0, 0);
                params.value_mut(ParamId(pi)).data_mut()[e] = orig - eps;
                let mut t2 = Tape::new();
                let l2 = build(&mut t2, params);
                let f2 = t2.value(l2).get(0, 0);
                params.value_mut(ParamId(pi)).data_mut()[e] = orig;
                let numeric = (f1 - f2) / (2.0 * eps);
                let got = grads.data()[e];
                assert!(
                    (numeric - got).abs() <= tol * (1.0 + numeric.abs().max(got.abs())),
                    "param {pi} elem {e}: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn grad_check_dense_relu_mse() {
        let mut params = Params::new();
        let w = params.add("w", t(3, 2, &[0.4, -0.3, 0.2, 0.7, -0.5, 0.1]));
        let b = params.add("b", t(1, 2, &[0.05, -0.02]));
        let x = t(2, 3, &[1.0, -0.5, 2.0, 0.3, 0.8, -1.2]);
        let target = t(2, 2, &[0.5, -0.5, 1.0, 0.0]);
        grad_check(
            |tape, p| {
                let xv = tape.leaf(x.clone());
                let wv = tape.param(p, w);
                let bv = tape.param(p, b);
                let h = tape.matmul(xv, wv);
                let h = tape.add_row_broadcast(h, bv);
                let h = tape.relu(h);
                tape.mse_loss(h, &target)
            },
            &mut params,
            2e-2,
        );
    }

    #[test]
    fn grad_check_sigmoid_tanh_hadamard() {
        let mut params = Params::new();
        let a = params.add("a", t(2, 2, &[0.3, -0.6, 0.9, 0.1]));
        let b = params.add("b", t(2, 2, &[-0.2, 0.5, 0.4, -0.8]));
        let target = t(2, 2, &[0.0, 0.3, 0.6, -0.1]);
        grad_check(
            |tape, p| {
                let av = tape.param(p, a);
                let bv = tape.param(p, b);
                let s = tape.sigmoid(av);
                let u = tape.tanh(bv);
                let h = tape.hadamard(s, u);
                tape.mse_loss(h, &target)
            },
            &mut params,
            2e-2,
        );
    }

    #[test]
    fn grad_check_softmax_and_mean() {
        let mut params = Params::new();
        let a = params.add("a", t(2, 3, &[0.3, -0.6, 0.9, 1.1, 0.2, -0.4]));
        let target = t(2, 3, &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        grad_check(
            |tape, p| {
                let av = tape.param(p, a);
                let s = tape.row_softmax(av);
                tape.mse_loss(s, &target)
            },
            &mut params,
            2e-2,
        );
    }

    #[test]
    fn grad_check_max_pools() {
        let mut params = Params::new();
        // Values well separated so FD perturbation doesn't flip the argmax.
        let a = params.add("a", t(3, 2, &[1.0, -2.0, 4.0, 0.5, -1.0, 3.0]));
        let target_row = t(3, 1, &[0.0, 0.0, 0.0]);
        grad_check(
            |tape, p| {
                let av = tape.param(p, a);
                let m = tape.row_max(av);
                tape.mse_loss(m, &target_row)
            },
            &mut params,
            2e-2,
        );
        let target_col = t(1, 2, &[0.0, 0.0]);
        grad_check(
            |tape, p| {
                let av = tape.param(p, a);
                let m = tape.col_max(av);
                tape.mse_loss(m, &target_col)
            },
            &mut params,
            2e-2,
        );
    }

    #[test]
    fn grad_check_im2col_conv_pipeline() {
        let mut params = Params::new();
        let emb = params.add("emb", t(4, 2, &[0.1, 0.2, -0.3, 0.4, 0.5, -0.6, 0.7, 0.8]));
        let kern = params.add("k", t(2, 4, &[0.3, -0.1, 0.2, 0.4, -0.2, 0.5, 0.1, -0.3]));
        let ids = vec![0usize, 2, 1, 3, 2];
        let target = t(2, 1, &[0.2, -0.2]);
        grad_check(
            |tape, p| {
                let e = tape.embedding_gather(p, emb, &ids); // [5,2]
                let cols = tape.im2col(e, 2); // [4,4]
                let kv = tape.param(p, kern); // [2,4]
                let fm = tape.matmul(kv, cols); // [2,4]
                let pooled = tape.row_max(fm); // [2,1]
                tape.mse_loss(pooled, &target)
            },
            &mut params,
            2e-2,
        );
    }

    #[test]
    fn grad_check_gather_vstack_concat() {
        let mut params = Params::new();
        let a = params.add("a", t(1, 2, &[0.3, -0.5]));
        let b = params.add("b", t(1, 2, &[0.8, 0.1]));
        let target = t(3, 4, &[0.0; 12]);
        grad_check(
            |tape, p| {
                let av = tape.param(p, a);
                let bv = tape.param(p, b);
                let stacked = tape.vstack(&[av, bv]); // [2,2]
                let gathered = tape.gather_rows(stacked, &[0, 1, 0]); // [3,2]
                let doubled = tape.concat_cols(&[gathered, gathered]); // [3,4]
                tape.mse_loss(doubled, &target)
            },
            &mut params,
            2e-2,
        );
    }

    #[test]
    fn grad_check_layer_norm() {
        let mut params = Params::new();
        let a = params.add("a", t(2, 3, &[0.5, -1.0, 2.0, 1.5, 0.0, -0.5]));
        let g = params.add("g", t(1, 3, &[1.0, 0.9, 1.1]));
        let b = params.add("b", t(1, 3, &[0.0, 0.1, -0.1]));
        let target = t(2, 3, &[0.0; 6]);
        grad_check(
            |tape, p| {
                let av = tape.param(p, a);
                let gv = tape.param(p, g);
                let bv = tape.param(p, b);
                let y = tape.layer_norm_row(av, gv, bv);
                tape.mse_loss(y, &target)
            },
            &mut params,
            3e-2,
        );
    }

    #[test]
    fn grad_check_bce_logits() {
        let mut params = Params::new();
        let a = params.add("a", t(3, 1, &[0.5, -1.2, 2.0]));
        let labels = t(3, 1, &[1.0, 0.0, 1.0]);
        grad_check(
            |tape, p| {
                let av = tape.param(p, a);
                tape.bce_logits_loss(av, &labels)
            },
            &mut params,
            2e-2,
        );
    }

    #[test]
    fn grad_reverse_flips_and_scales_gradient() {
        let mut params = Params::new();
        let a = params.add("a", t(1, 2, &[0.3, -0.4]));
        let target = t(1, 2, &[0.0, 0.0]);

        params.zero_grads();
        let mut tape = Tape::new();
        let av = tape.param(&params, a);
        let loss = tape.mse_loss(av, &target);
        tape.backward(loss, &mut params);
        let plain = params.grad(ParamId(0)).clone();

        params.zero_grads();
        let mut tape = Tape::new();
        let av = tape.param(&params, a);
        let rev = tape.grad_reverse(av, 0.5);
        let loss = tape.mse_loss(rev, &target);
        tape.backward(loss, &mut params);
        let reversed = params.grad(ParamId(0)).clone();

        for (p, r) in plain.data().iter().zip(reversed.data().iter()) {
            assert!((r + 0.5 * p).abs() < 1e-6, "expected -0.5x: {p} vs {r}");
        }
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut params = Params::new();
        let a = params.add("a", t(1, 1, &[2.0]));
        let target = t(1, 1, &[0.0]);
        for _ in 0..2 {
            let mut tape = Tape::new();
            let av = tape.param(&params, a);
            let loss = tape.mse_loss(av, &target);
            tape.backward(loss, &mut params);
        }
        // d/da (a^2) = 2a = 4, accumulated twice = 8.
        assert!((params.grad(ParamId(0)).get(0, 0) - 8.0).abs() < 1e-5);
        params.zero_grads();
        assert_eq!(params.grad(ParamId(0)).get(0, 0), 0.0);
    }

    #[test]
    fn embedding_grads_scatter_to_used_rows_only() {
        let mut params = Params::new();
        let emb = params.add("emb", t(3, 2, &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6]));
        let target = t(2, 2, &[0.0; 4]);
        let mut tape = Tape::new();
        let e = tape.embedding_gather(&params, emb, &[2, 2]);
        let loss = tape.mse_loss(e, &target);
        tape.backward(loss, &mut params);
        let g = params.grad(emb);
        assert_eq!(g.row(0), &[0.0, 0.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
        assert!(g.row(2).iter().all(|&v| v != 0.0));
    }
}

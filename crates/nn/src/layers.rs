//! Neural layers built on the autograd tape.
//!
//! Every layer owns [`ParamId`]s into a shared [`Params`] store and exposes
//! a `forward(&self, tape, ...) -> Var`. Layers are exactly those needed by
//! the paper's models: dense / tower-MLP (performance estimation,
//! discriminator), a multi-width Conv1d bank with global max pooling (code
//! encoder, Eq. 1), graph convolution (scheduler encoder, Eq. 2), and the
//! LSTM / Transformer encoders used as Table VII baselines.

use crate::init;
use crate::tape::{ParamId, Params, Tape, Var};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Fully connected layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight `[in, out]`.
    pub w: ParamId,
    /// Bias `[1, out]`.
    pub b: ParamId,
    /// Input width.
    pub input: usize,
    /// Output width.
    pub output: usize,
}

impl Dense {
    /// Create with He init (use before ReLU) under `name` in the store.
    pub fn new(
        params: &mut Params,
        name: &str,
        input: usize,
        output: usize,
        rng: &mut StdRng,
    ) -> Dense {
        let w = params.add(format!("{name}.w"), init::he(input, output, rng));
        let b = params.add(format!("{name}.b"), Tensor::zeros(1, output));
        Dense { w, b, input, output }
    }

    /// `x [B, in] -> [B, out]` (no activation).
    pub fn forward(&self, tape: &mut Tape, params: &Params, x: Var) -> Var {
        let w = tape.param(params, self.w);
        let b = tape.param(params, self.b);
        let h = tape.matmul(x, w);
        tape.add_row_broadcast(h, b)
    }
}

/// Tower MLP: each hidden layer halves the width (paper Section III-F),
/// ReLU activations, linear head of width `out`.
#[derive(Debug, Clone)]
pub struct TowerMlp {
    layers: Vec<Dense>,
    head: Dense,
}

impl TowerMlp {
    /// `input` → `input/2` → `input/4` → … (`depth` hidden layers, floor 8
    /// units) → `out`.
    pub fn new(
        params: &mut Params,
        name: &str,
        input: usize,
        depth: usize,
        out: usize,
        rng: &mut StdRng,
    ) -> TowerMlp {
        let mut layers = Vec::with_capacity(depth);
        let mut width = input;
        for l in 0..depth {
            let next = (width / 2).max(8);
            layers.push(Dense::new(params, &format!("{name}.h{l}"), width, next, rng));
            width = next;
        }
        let head = Dense::new(params, &format!("{name}.head"), width, out, rng);
        TowerMlp { layers, head }
    }

    /// Forward returning the head output `[B, out]`.
    pub fn forward(&self, tape: &mut Tape, params: &Params, x: Var) -> Var {
        self.forward_with_hidden(tape, params, x).0
    }

    /// Forward returning `(head output, concatenated hidden activations)`.
    ///
    /// The hidden concatenation `h_i = f¹(x) ‖ … ‖ f^L(…)` is the feature
    /// embedding the paper's Adaptive Model Update discriminates on.
    pub fn forward_with_hidden(&self, tape: &mut Tape, params: &Params, x: Var) -> (Var, Var) {
        let mut h = x;
        let mut hidden = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let z = layer.forward(tape, params, h);
            h = tape.relu(z);
            hidden.push(h);
        }
        let out = self.head.forward(tape, params, h);
        let cat = if hidden.is_empty() { h } else { tape.concat_cols(&hidden) };
        (out, cat)
    }

    /// Width of the concatenated hidden embedding.
    pub fn hidden_width(&self) -> usize {
        self.layers.iter().map(|l| l.output).sum()
    }
}

/// Multi-width 1-D convolution bank over a token-embedding matrix
/// `[N, D]`, each width followed by global max pooling; outputs the
/// concatenated feature map `[1, widths·kernels]` (paper Eq. 1 without the
/// final ReLU projection).
#[derive(Debug, Clone)]
pub struct Conv1dBank {
    kernels: Vec<(usize, ParamId, ParamId)>, // (width, weights [K, w*D], bias [1, K])
    /// Embedding dimension the bank expects.
    pub dim: usize,
    /// Kernels per width.
    pub kernels_per_width: usize,
}

impl Conv1dBank {
    /// A bank with `kernels_per_width` filters for each window width.
    pub fn new(
        params: &mut Params,
        name: &str,
        dim: usize,
        widths: &[usize],
        kernels_per_width: usize,
        rng: &mut StdRng,
    ) -> Conv1dBank {
        let kernels = widths
            .iter()
            .map(|&w| {
                let k = params
                    .add(format!("{name}.conv{w}.w"), init::he(kernels_per_width, w * dim, rng));
                let b =
                    params.add(format!("{name}.conv{w}.b"), Tensor::zeros(1, kernels_per_width));
                (w, k, b)
            })
            .collect();
        Conv1dBank { kernels, dim, kernels_per_width }
    }

    /// Total output width.
    pub fn output_width(&self) -> usize {
        self.kernels.len() * self.kernels_per_width
    }

    /// `x [N, D] -> [1, widths·K]`: conv + ReLU + global max pool per
    /// width, concatenated.
    pub fn forward(&self, tape: &mut Tape, params: &Params, x: Var) -> Var {
        let n = tape.value(x).rows();
        let mut pooled = Vec::with_capacity(self.kernels.len());
        for &(w, k, b) in &self.kernels {
            let w_eff = w.min(n);
            let cols = tape.im2col(x, w_eff); // [w*D, P]
            let kv = tape.param(params, k); // [K, w*D]
            let kv = if w_eff == w {
                kv
            } else {
                // Degenerate short input: clip kernel columns by gathering
                // the leading rows of the transposed view. In practice N >>
                // w; this branch only defends tiny test inputs.
                let clipped = Tensor::from_vec(self.kernels_per_width, w_eff * self.dim, {
                    let full = params.value(k);
                    let mut v = Vec::with_capacity(self.kernels_per_width * w_eff * self.dim);
                    for r in 0..self.kernels_per_width {
                        v.extend_from_slice(&full.row(r)[..w_eff * self.dim]);
                    }
                    v
                });
                tape.leaf(clipped)
            };
            let fm = tape.matmul(kv, cols); // [K, P]
            let fm = tape.relu(fm);
            let mx = tape.row_max(fm); // [K, 1]
            let flat = transpose_var(tape, mx); // [1, K]
            let bv = tape.param(params, b);
            pooled.push(tape.add(flat, bv));
        }
        tape.concat_cols(&pooled)
    }
}

/// One graph-convolution layer `H' = ReLU(Â H W)` with
/// `Â = D^{-1/2}(A + I)D^{-1/2}` (paper Eq. in Section III-E).
#[derive(Debug, Clone)]
pub struct GcnLayer {
    /// Weight `[in, out]`.
    pub w: ParamId,
    /// Input feature width.
    pub input: usize,
    /// Output feature width.
    pub output: usize,
}

impl GcnLayer {
    /// New layer.
    pub fn new(
        params: &mut Params,
        name: &str,
        input: usize,
        output: usize,
        rng: &mut StdRng,
    ) -> GcnLayer {
        let w = params.add(format!("{name}.w"), init::xavier(input, output, rng));
        GcnLayer { w, input, output }
    }

    /// `a_hat [n,n]` (constant), `h [n,in]` -> `[n,out]`.
    pub fn forward(&self, tape: &mut Tape, params: &Params, a_hat: Var, h: Var) -> Var {
        let w = tape.param(params, self.w);
        let ah = tape.matmul(a_hat, h);
        let z = tape.matmul(ah, w);
        tape.relu(z)
    }
}

/// Compute the normalized adjacency `Â = D^{-1/2}(A + I)D^{-1/2}` for a
/// DAG given as (node count, directed edges). Edges are symmetrized, as is
/// standard for GCNs on program graphs.
pub fn normalized_adjacency(n: usize, edges: &[(usize, usize)]) -> Tensor {
    let mut a = Tensor::zeros(n, n);
    for i in 0..n {
        a.set(i, i, 1.0);
    }
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge ({u},{v}) out of bounds for {n} nodes");
        a.set(u, v, 1.0);
        a.set(v, u, 1.0);
    }
    let mut deg = vec![0.0f32; n];
    for (i, d) in deg.iter_mut().enumerate() {
        *d = a.row(i).iter().sum::<f32>();
    }
    let mut out = Tensor::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if a.get(i, j) != 0.0 {
                out.set(i, j, a.get(i, j) / (deg[i] * deg[j]).sqrt());
            }
        }
    }
    out
}

/// LSTM encoder: runs a single-layer LSTM over `[N, D]` token embeddings
/// and returns the final hidden state `[1, H]`.
#[derive(Debug, Clone)]
pub struct Lstm {
    wx: ParamId, // [D, 4H]
    wh: ParamId, // [H, 4H]
    b: ParamId,  // [1, 4H]
    /// Hidden width.
    pub hidden: usize,
    /// Input width.
    pub input: usize,
    /// Maximum sequence length processed (longer inputs are truncated —
    /// quadratic tape growth makes full N=1000 sequences impractical, and
    /// the paper itself notes sequence models underperform here).
    pub max_steps: usize,
}

impl Lstm {
    /// New LSTM with forget-gate bias 1.
    pub fn new(
        params: &mut Params,
        name: &str,
        input: usize,
        hidden: usize,
        max_steps: usize,
        rng: &mut StdRng,
    ) -> Lstm {
        let wx = params.add(format!("{name}.wx"), init::xavier(input, 4 * hidden, rng));
        let wh = params.add(format!("{name}.wh"), init::xavier(hidden, 4 * hidden, rng));
        let mut bias = Tensor::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            bias.set(0, c, 1.0); // forget gate
        }
        let b = params.add(format!("{name}.b"), bias);
        Lstm { wx, wh, b, hidden, input, max_steps }
    }

    /// Encode `[N, D] -> [1, H]` (final hidden state).
    pub fn forward(&self, tape: &mut Tape, params: &Params, x: Var) -> Var {
        let n = tape.value(x).rows().min(self.max_steps);
        let hsz = self.hidden;
        let wx = tape.param(params, self.wx);
        let wh = tape.param(params, self.wh);
        let b = tape.param(params, self.b);
        let mut h = tape.leaf(Tensor::zeros(1, hsz));
        let mut c = tape.leaf(Tensor::zeros(1, hsz));
        for t in 0..n {
            let xt = tape.slice_row(x, t); // [1, D]
            let zx = tape.matmul(xt, wx);
            let zh = tape.matmul(h, wh);
            let z = tape.add(zx, zh);
            let z = tape.add(z, b); // [1, 4H]
                                    // Split gates i, f, g, o.
            let gates: Vec<Var> = (0..4)
                .map(|k| {
                    let cols: Vec<usize> = (k * hsz..(k + 1) * hsz).collect();
                    gather_cols(tape, z, &cols)
                })
                .collect();
            let i = tape.sigmoid(gates[0]);
            let f = tape.sigmoid(gates[1]);
            let g = tape.tanh(gates[2]);
            let o = tape.sigmoid(gates[3]);
            let fc = tape.hadamard(f, c);
            let ig = tape.hadamard(i, g);
            c = tape.add(fc, ig);
            let tc = tape.tanh(c);
            h = tape.hadamard(o, tc);
        }
        h
    }
}

/// A single pre-norm Transformer encoder block with multi-head
/// self-attention over `[N, D]`, followed by mean pooling to `[1, D]`.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    wo: ParamId,
    ff1: Dense,
    ff2: Dense,
    ln1_g: ParamId,
    ln1_b: ParamId,
    ln2_g: ParamId,
    ln2_b: ParamId,
    /// Number of attention heads.
    pub heads: usize,
    /// Model width.
    pub dim: usize,
    /// Maximum sequence length (attention is quadratic; longer inputs are
    /// truncated).
    pub max_steps: usize,
}

impl TransformerBlock {
    /// New block; `dim` must be divisible by `heads`.
    pub fn new(
        params: &mut Params,
        name: &str,
        dim: usize,
        heads: usize,
        max_steps: usize,
        rng: &mut StdRng,
    ) -> TransformerBlock {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        let wq = params.add(format!("{name}.wq"), init::xavier(dim, dim, rng));
        let wk = params.add(format!("{name}.wk"), init::xavier(dim, dim, rng));
        let wv = params.add(format!("{name}.wv"), init::xavier(dim, dim, rng));
        let wo = params.add(format!("{name}.wo"), init::xavier(dim, dim, rng));
        let ff1 = Dense::new(params, &format!("{name}.ff1"), dim, dim * 2, rng);
        let ff2 = Dense::new(params, &format!("{name}.ff2"), dim * 2, dim, rng);
        let ln1_g = params.add(format!("{name}.ln1.g"), Tensor::full(1, dim, 1.0));
        let ln1_b = params.add(format!("{name}.ln1.b"), Tensor::zeros(1, dim));
        let ln2_g = params.add(format!("{name}.ln2.g"), Tensor::full(1, dim, 1.0));
        let ln2_b = params.add(format!("{name}.ln2.b"), Tensor::zeros(1, dim));
        TransformerBlock {
            wq,
            wk,
            wv,
            wo,
            ff1,
            ff2,
            ln1_g,
            ln1_b,
            ln2_g,
            ln2_b,
            heads,
            dim,
            max_steps,
        }
    }

    /// Encode `[N, D] -> [1, D]` (attention block + mean pool).
    pub fn forward(&self, tape: &mut Tape, params: &Params, x: Var) -> Var {
        let n_full = tape.value(x).rows();
        let x = if n_full > self.max_steps {
            let idx: Vec<usize> = (0..self.max_steps).collect();
            tape.gather_rows(x, &idx)
        } else {
            x
        };

        // Pre-norm attention with residual.
        let g1 = tape.param(params, self.ln1_g);
        let b1 = tape.param(params, self.ln1_b);
        let xn = tape.layer_norm_row(x, g1, b1);
        let wq = tape.param(params, self.wq);
        let wk = tape.param(params, self.wk);
        let wv = tape.param(params, self.wv);
        let q = tape.matmul(xn, wq); // [N, D]
        let k = tape.matmul(xn, wk);
        let v = tape.matmul(xn, wv);

        let dh = self.dim / self.heads;
        let mut head_outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let cols: Vec<usize> = (h * dh..(h + 1) * dh).collect();
            let qh = gather_cols(tape, q, &cols); // [N, dh]
            let kh = gather_cols(tape, k, &cols);
            let vh = gather_cols(tape, v, &cols);
            let kt = transpose_var(tape, kh); // [dh, N]
            let scores = tape.matmul(qh, kt); // [N, N]
            let scaled = tape.scale(scores, 1.0 / (dh as f32).sqrt());
            let attn = tape.row_softmax(scaled);
            head_outs.push(tape.matmul(attn, vh)); // [N, dh]
        }
        let concat = tape.concat_cols(&head_outs); // [N, D]
        let wo = tape.param(params, self.wo);
        let att = tape.matmul(concat, wo);
        let res1 = tape.add(x, att);

        // Pre-norm feed-forward with residual.
        let g2 = tape.param(params, self.ln2_g);
        let b2 = tape.param(params, self.ln2_b);
        let rn = tape.layer_norm_row(res1, g2, b2);
        let f1 = self.ff1.forward(tape, params, rn);
        let f1 = tape.relu(f1);
        let f2 = self.ff2.forward(tape, params, f1);
        let res2 = tape.add(res1, f2);

        // Mean pool rows -> [1, D] via constant averaging matmul.
        let n = tape.value(res2).rows();
        let avg = tape.leaf(Tensor::full(1, n, 1.0 / n as f32));
        tape.matmul(avg, res2)
    }
}

/// Differentiable column gather via a constant selector matrix.
fn gather_cols(tape: &mut Tape, v: Var, cols: &[usize]) -> Var {
    let n = tape.value(v).cols();
    let mut sel = Tensor::zeros(n, cols.len());
    for (j, &c) in cols.iter().enumerate() {
        sel.set(c, j, 1.0);
    }
    let s = tape.leaf(sel);
    tape.matmul(v, s)
}

/// Differentiable transpose built from column gathers, row slices and
/// vstack (no dedicated transpose op needed on the tape).
fn transpose_var(tape: &mut Tape, v: Var) -> Var {
    let (m, n) = tape.value(v).shape();
    let mut rows = Vec::with_capacity(n);
    for c in 0..n {
        let col = gather_cols(tape, v, &[c]); // [m,1]
        let parts: Vec<Var> = (0..m).map(|r| tape.slice_row(col, r)).collect();
        rows.push(tape.concat_cols(&parts)); // [1,m]
    }
    tape.vstack(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;
    use crate::optim::Adam;
    use crate::tape::Params;

    #[test]
    fn tower_mlp_halves_widths() {
        let mut params = Params::new();
        let mlp = TowerMlp::new(&mut params, "m", 64, 3, 1, &mut rng(1));
        assert_eq!(mlp.hidden_width(), 32 + 16 + 8);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(5, 64));
        let (out, hidden) = mlp.forward_with_hidden(&mut tape, &params, x);
        assert_eq!(tape.value(out).shape(), (5, 1));
        assert_eq!(tape.value(hidden).shape(), (5, 56));
    }

    #[test]
    fn conv_bank_shapes_and_gradients_flow() {
        let mut params = Params::new();
        let bank = Conv1dBank::new(&mut params, "c", 4, &[2, 3], 5, &mut rng(2));
        assert_eq!(bank.output_width(), 10);
        let mut tape = Tape::new();
        let x = tape.leaf(init::normal(20, 4, 1.0, &mut rng(3)));
        let out = bank.forward(&mut tape, &params, x);
        assert_eq!(tape.value(out).shape(), (1, 10));
        let loss = tape.mse_loss(out, &Tensor::zeros(1, 10));
        tape.backward(loss, &mut params);
        // Conv weights received gradient.
        let any_grad =
            (0..params.len()).any(|i| params.grad(crate::tape::ParamId(i)).norm_sq() > 0.0);
        assert!(any_grad);
    }

    #[test]
    fn normalized_adjacency_is_symmetric_with_self_loops() {
        let a = normalized_adjacency(3, &[(0, 1), (1, 2)]);
        for i in 0..3 {
            assert!(a.get(i, i) > 0.0, "self loop missing at {i}");
            for j in 0..3 {
                assert!((a.get(i, j) - a.get(j, i)).abs() < 1e-6);
            }
        }
        // Row sums of D^-1/2 (A+I) D^-1/2 are <= 1 + slack.
        for i in 0..3 {
            let s: f32 = a.row(i).iter().sum();
            assert!(s <= 1.5, "row {i} sum {s}");
        }
    }

    #[test]
    fn gcn_layer_runs_on_a_dag() {
        let mut params = Params::new();
        let l1 = GcnLayer::new(&mut params, "g1", 6, 8, &mut rng(4));
        let l2 = GcnLayer::new(&mut params, "g2", 8, 8, &mut rng(5));
        let a_hat = normalized_adjacency(4, &[(0, 1), (1, 2), (1, 3)]);
        let mut tape = Tape::new();
        let a = tape.leaf(a_hat);
        let h0 = tape.leaf(init::normal(4, 6, 1.0, &mut rng(6)));
        let h1 = l1.forward(&mut tape, &params, a, h0);
        let h2 = l2.forward(&mut tape, &params, a, h1);
        let pooled = tape.col_max(h2);
        assert_eq!(tape.value(pooled).shape(), (1, 8));
    }

    #[test]
    fn lstm_final_state_shape_and_gradients() {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "l", 3, 4, 64, &mut rng(7));
        let mut tape = Tape::new();
        let x = tape.leaf(init::normal(10, 3, 1.0, &mut rng(8)));
        let h = lstm.forward(&mut tape, &params, x);
        assert_eq!(tape.value(h).shape(), (1, 4));
        let loss = tape.mse_loss(h, &Tensor::zeros(1, 4));
        tape.backward(loss, &mut params);
        assert!(params.grad(lstm.wx).norm_sq() > 0.0);
        assert!(params.grad(lstm.wh).norm_sq() > 0.0);
    }

    #[test]
    fn lstm_truncates_long_sequences() {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "l", 2, 3, 5, &mut rng(9));
        let mut tape = Tape::new();
        let x = tape.leaf(init::normal(50, 2, 1.0, &mut rng(10)));
        let h = lstm.forward(&mut tape, &params, x);
        assert_eq!(tape.value(h).shape(), (1, 3));
        // Tape stays small: ~20 nodes per step, 5 steps.
        assert!(tape.len() < 400, "tape grew to {}", tape.len());
    }

    #[test]
    fn transformer_block_pools_to_model_dim() {
        let mut params = Params::new();
        let block = TransformerBlock::new(&mut params, "t", 8, 2, 16, &mut rng(11));
        let mut tape = Tape::new();
        let x = tape.leaf(init::normal(12, 8, 1.0, &mut rng(12)));
        let out = block.forward(&mut tape, &params, x);
        assert_eq!(tape.value(out).shape(), (1, 8));
        let loss = tape.mse_loss(out, &Tensor::zeros(1, 8));
        tape.backward(loss, &mut params);
        assert!(params.grad(block.wq).norm_sq() > 0.0);
    }

    #[test]
    fn layers_can_fit_a_toy_function() {
        // End-to-end sanity: a small tower MLP learns y = x0 - 2*x1.
        let mut r = rng(13);
        let mut params = Params::new();
        let mlp = TowerMlp::new(&mut params, "m", 2, 2, 1, &mut r);
        let mut opt = Adam::new(0.01);
        let xs = init::normal(64, 2, 1.0, &mut r);
        let mut ys = Tensor::zeros(64, 1);
        for i in 0..64 {
            ys.set(i, 0, xs.get(i, 0) - 2.0 * xs.get(i, 1));
        }
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let mut tape = Tape::new();
            let x = tape.leaf(xs.clone());
            let pred = mlp.forward(&mut tape, &params, x);
            let loss = tape.mse_loss(pred, &ys);
            last = tape.value(loss).get(0, 0);
            tape.backward(loss, &mut params);
            opt.step(&mut params);
        }
        assert!(last < 0.05, "MLP failed to fit toy function: {last}");
    }
}

//! Weight initialization with seeded RNGs (all experiments are
//! reproducible bit-for-bit).

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Xavier/Glorot uniform init for a `fan_in × fan_out` weight matrix.
pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let limit = (6.0 / (rows + cols) as f64).sqrt() as f32;
    let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// He normal init (preferred before ReLU).
pub fn he(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / rows as f64).sqrt();
    let dist = Normal::new(0.0, std).expect("valid std");
    let data = (0..rows * cols).map(|_| dist.sample(rng) as f32).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Small-scale normal init (embeddings).
pub fn normal(rows: usize, cols: usize, std: f64, rng: &mut StdRng) -> Tensor {
    let dist = Normal::new(0.0, std).expect("valid std");
    let data = (0..rows * cols).map(|_| dist.sample(rng) as f32).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Deterministic RNG from a seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = xavier(4, 5, &mut rng(7));
        let b = xavier(4, 5, &mut rng(7));
        assert_eq!(a, b);
        let c = xavier(4, 5, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_respects_limit() {
        let t = xavier(10, 10, &mut rng(1));
        let limit = (6.0f64 / 20.0).sqrt() as f32;
        assert!(t.data().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn he_has_reasonable_scale() {
        let t = he(1000, 4, &mut rng(2));
        let std = (t.norm_sq() / t.len() as f32).sqrt();
        let expect = (2.0f32 / 1000.0).sqrt();
        assert!((std - expect).abs() < 0.3 * expect, "std {std} vs {expect}");
    }
}

//! Dense row-major `f32` tensors (rank ≤ 2 in practice).
//!
//! The workspace's neural models only need matrices and vectors; this type
//! keeps shape explicit and panics loudly on mismatches (shape bugs in
//! hand-rolled backprop are otherwise silent death).

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Tensor {
        Tensor { rows, cols, data: vec![v; rows * cols] }
    }

    /// Build from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "data length {} != {rows}x{cols}", data.len());
        Tensor { rows, cols, data }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Tensor {
        let n = data.len();
        Tensor::from_vec(1, n, data)
    }

    /// Assemble a batch matrix from per-row `f64` feature slices, narrowing
    /// to `f32`. Feature pipelines produce `f64` rows; stacking them here
    /// (instead of element-wise `set` at every call site) is the entry
    /// point of the batched inference path. `cols` is explicit so an empty
    /// batch still has a well-defined shape.
    pub fn from_rows_f64<R: AsRef<[f64]>>(cols: usize, rows: &[R]) -> Tensor {
        let mut out = Tensor::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            assert_eq!(row.len(), cols, "row {r} has {} cols, expected {cols}", row.len());
            for (o, &v) in out.row_mut(r).iter_mut().zip(row.iter()) {
                *o = v as f32;
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other` with an ikj loop (cache friendly for
    /// row-major operands; ample for the model sizes in this workspace).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor { rows: m, cols: n, data: out }
    }

    /// `self · otherᵀ` without materializing the transpose.
    pub fn matmul_transpose_b(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_tB shape mismatch: {}x{} · ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor { rows: m, cols: n, data: out }
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn transpose_a_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "tA_matmul shape mismatch: ({}x{})^T · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor { rows: m, cols: n, data: out }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// `self += alpha * other` (shapes must match).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| a + b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| a * b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Scale all elements.
    pub fn scaled(&self, alpha: f32) -> Tensor {
        self.map(|v| v * alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Fill with zeros in place.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Tensor::from_vec(4, 3, vec![1., 0., 2., -1., 3., 1., 2., 2., 0., 0., 1., 4.]);
        let via_t = a.matmul(&b.transposed());
        let direct = a.matmul_transpose_b(&b);
        assert_eq!(via_t, direct);

        let c = Tensor::from_vec(2, 4, vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let a2 = Tensor::from_vec(2, 3, vec![1., -2., 3., 0.5, 5., -6.]);
        let via_t2 = a2.transposed().matmul(&c);
        let direct2 = a2.transpose_a_matmul(&c);
        assert_eq!(via_t2, direct2);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_panics_on_mismatch() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_and_elementwise() {
        let mut a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![10., 20., 30.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6., 12., 18.]);
        assert_eq!(a.hadamard(&b).data(), &[60., 240., 540.]);
        assert_eq!(a.add(&b).data(), &[16., 32., 48.]);
        assert_eq!(a.scaled(2.0).data(), &[12., 24., 36.]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(2, 2, vec![1., -2., 3., -4.]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.norm_sq(), 30.0);
    }

    #[test]
    fn rows_are_contiguous() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn from_rows_f64_stacks_and_narrows() {
        let rows = [vec![1.0f64, 2.0], vec![0.25, -0.5]];
        let t = Tensor::from_rows_f64(2, &rows);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.data(), &[1.0, 2.0, 0.25, -0.5]);
        // Empty batches keep a well-defined column count.
        let empty: Vec<Vec<f64>> = Vec::new();
        assert_eq!(Tensor::from_rows_f64(3, &empty).shape(), (0, 3));
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn from_rows_f64_rejects_ragged_rows() {
        let rows = [vec![1.0f64, 2.0], vec![3.0]];
        let _ = Tensor::from_rows_f64(2, &rows);
    }
}

//! # lite-nn — a small neural-network substrate
//!
//! The paper trains CNN/GCN/MLP estimators (and LSTM / Transformer
//! baselines) in a Python deep-learning stack; this crate supplies the
//! equivalent machinery in pure Rust:
//!
//! * [`tensor::Tensor`] — dense row-major `f32` matrices,
//! * [`tape::Tape`] — define-by-run reverse-mode autodiff with an op set
//!   sized to the paper's models (including gradient reversal for
//!   adversarial fine-tuning and gather/stack ops so per-template encodings
//!   are computed once per minibatch),
//! * [`layers`] — Dense, tower MLP, Conv1d bank, GCN, LSTM, Transformer,
//! * [`optim`] — SGD and Adam on an external [`tape::Params`] store,
//! * [`init`] — seeded Xavier/He/normal initializers.
//!
//! Everything is deterministic given the caller's seeds.

pub mod init;
pub mod layers;
pub mod optim;
pub mod tape;
pub mod tensor;

pub use tape::{ParamId, Params, Tape, Var};
pub use tensor::Tensor;
